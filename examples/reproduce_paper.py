#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section
in one run, printing paper-style tables.  This is the same code path the
``benchmarks/`` suite drives; run it directly when you want the full
exhibits at a chosen scale.

Run:  python examples/reproduce_paper.py [scale]

``scale`` defaults to 0.5 (about a minute); 1.0 gives the benchmark-
default sizes.
"""

import sys
import time

from repro.bench import (
    run_beta_sweep,
    run_feature_ablation,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table1,
    run_table2,
)
from repro.bench.ablation import print_beta_sweep, print_feature_ablation
from repro.bench.figure5 import print_figure5
from repro.bench.figure6 import print_figure6
from repro.bench.figure7 import print_figure7
from repro.bench.table1 import print_table1
from repro.bench.table2 import print_table2


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    started = time.perf_counter()

    print_table1(run_table1(scale=scale))
    print()
    print_table2(run_table2(scale=scale))
    print()
    print_figure5(run_figure5(scale=scale, queries=60))
    print()
    print_figure6(run_figure6(scale=scale))
    print()
    print_figure7(run_figure7(scale=scale))
    print()
    print_feature_ablation(run_feature_ablation(scale=min(scale, 0.5)))
    print()
    print_beta_sweep(run_beta_sweep(scale=min(scale, 0.3)))

    print(f"\nfull reproduction run took {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()

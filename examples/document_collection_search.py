#!/usr/bin/env python3
"""Scenario 1 — a text-centric document collection (the XBench TCMD
setting): index hundreds of small article documents as whole units and
use FIX to find the documents matching structural twig queries, with
the Section 5 decomposition handling interior ``//`` axes.

Run:  python examples/document_collection_search.py
"""

import time

from repro import FixIndex, FixIndexConfig, FixQueryProcessor, evaluate_pruning
from repro.datasets import generate_xbench_tcmd


def main() -> None:
    bundle = generate_xbench_tcmd(scale=0.5, seed=7)
    print(f"generated {bundle.description}")
    print(
        f"  {bundle.element_count()} elements, "
        f"{bundle.size_bytes() / 1e6:.2f} MB, max depth {bundle.max_depth()}"
    )

    store = bundle.store()
    started = time.perf_counter()
    index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
    print(
        f"indexed {index.entry_count} documents in "
        f"{time.perf_counter() - started:.2f}s "
        f"({index.size_bytes() / 1024:.0f} KiB B-tree)\n"
    )

    processor = FixQueryProcessor(index)
    queries = [
        # The paper's three TCMD representative queries:
        "/article/epilog[acknoledgements]/references/a_id",
        "/article/prolog[keywords]/authors/author/contact[phone]",
        "/article[epilog]/prolog/authors/author",
        # A decomposed query: interior '//' splits into twig fragments
        # whose candidate sets intersect (Section 5).
        "/article[.//keyword][.//phone]",
        # An unanchored twig: label-free range-containment pruning.
        "//contact[phone][email]",
    ]
    print(f"{'query':58s} {'cdt':>5s} {'hits':>5s} {'sel':>7s} {'pp':>7s} {'fpr':>7s}")
    for query in queries:
        result = processor.query(query)
        metrics = evaluate_pruning(index, query, processor=processor)
        print(
            f"{query:58s} {result.candidate_count:5d} {result.result_count:5d} "
            f"{metrics.sel:7.1%} {metrics.pp:7.1%} {metrics.fpr:7.1%}"
        )

    print(
        "\nNote the paper's TCMD finding reproduced: documents in this "
        "collection vary little structurally,\nso pruning power lags far "
        "behind selectivity — a structural index can only do so much here."
    )


if __name__ == "__main__":
    main()

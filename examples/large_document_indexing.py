#!/usr/bin/env python3
"""Scenario 2 — one large structure-rich document (the XMark setting):
enumerate depth-limited subpatterns (one index entry per element,
Theorem 4), then compare FIX's two-phase evaluation against the
no-index navigational baseline and the F&B covering index.

Run:  python examples/large_document_indexing.py
"""

import time

from repro import (
    FBEvaluator,
    FBIndex,
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    NavigationalEngine,
    twig_of,
)
from repro.datasets import generate_xmark


def main() -> None:
    bundle = generate_xmark(scale=0.6, seed=11)
    document = bundle.documents[0]
    print(f"generated {bundle.description}")

    store = bundle.store()
    started = time.perf_counter()
    index = FixIndex.build(store, FixIndexConfig(depth_limit=6))
    build_seconds = time.perf_counter() - started
    stats = index.report.stats
    print(
        f"indexed {index.entry_count} subpattern entries in {build_seconds:.2f}s; "
        f"eigen-decompositions: {stats.eigen_computations} "
        f"(one per bisimulation class, not per element), "
        f"oversized fallbacks: {stats.oversized_patterns}\n"
    )

    processor = FixQueryProcessor(index)
    baseline = NavigationalEngine(store)
    fb = FBEvaluator(FBIndex(document))

    queries = [
        "//item/mailbox/mail/text/emph/keyword",
        "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
    ]
    print(f"{'query':58s} {'cdt':>5s} {'hits':>5s} {'FIX ms':>8s} {'NoK ms':>8s} {'F&B ms':>8s}")
    for query in queries:
        twig = twig_of(query)

        started = time.perf_counter()
        result = processor.query(twig)
        fix_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        nok_hits = baseline.evaluate(twig)
        nok_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        fb_hits = fb.evaluate(twig)
        fb_ms = (time.perf_counter() - started) * 1000

        assert {p.node_id for p in result.results} == set(
            p.node_id for p in nok_hits
        ) == set(fb_hits), "all three evaluators must agree"
        print(
            f"{query:58s} {result.candidate_count:5d} {result.result_count:5d} "
            f"{fix_ms:8.2f} {nok_ms:8.2f} {fb_ms:8.2f}"
        )

    print(
        f"\nF&B index for this document: {FBIndex(document).block_count()} blocks "
        f"for {document.element_count()} elements — structure-rich data "
        "compresses poorly, which is the paper's motivation for indexing "
        "features instead of materializing the whole bisimulation graph."
    )


if __name__ == "__main__":
    main()

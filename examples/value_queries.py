#!/usr/bin/env python3
"""Scenario 3 — integrated structural + value index (the Section 4.6
extension, DBLP setting): hash text values into β buckets, index them as
structure, and answer mixed structure/value queries with one index —
no "index anding" of separate structural and value indexes.

Run:  python examples/value_queries.py
"""

import time

from repro import FixIndex, FixIndexConfig, FixQueryProcessor, evaluate_pruning
from repro.datasets import generate_dblp


def main() -> None:
    bundle = generate_dblp(scale=0.4, seed=5)
    store = bundle.store()
    print(f"generated {bundle.description}\n")

    # Build both variants to show the Section 4.6 cost trade-off.
    started = time.perf_counter()
    structural = FixIndex.build(store, FixIndexConfig(depth_limit=6))
    structural_seconds = time.perf_counter() - started

    beta = 10
    started = time.perf_counter()
    value_index = FixIndex.build(
        store, FixIndexConfig(depth_limit=6, value_buckets=beta)
    )
    value_seconds = time.perf_counter() - started

    print(
        f"pure structural index: {structural_seconds:.2f}s, "
        f"{structural.size_bytes() / 1e6:.2f} MB, "
        f"{len(structural.encoder)} edge labels"
    )
    print(
        f"value index (beta={beta}):   {value_seconds:.2f}s, "
        f"{value_index.size_bytes() / 1e6:.2f} MB, "
        f"{len(value_index.encoder)} edge labels"
    )
    print(
        f"-> value support costs {value_seconds / structural_seconds:.1f}x "
        "construction time here (the paper quotes ~30x on full-size DBLP "
        "with a C++ prototype; the trade-off direction is the point)\n"
    )

    processor = FixQueryProcessor(value_index)
    queries = [
        '//proceedings[publisher = "Springer"][title]',
        '//inproceedings[year = "1998"][title]/author',
        '//book[publisher = "MIT Press"]/title',
        '//article[year = "2001"]/author',
    ]
    print(f"{'query':50s} {'cdt':>5s} {'hits':>5s} {'sel':>7s} {'pp':>7s} {'fpr':>7s}")
    for query in queries:
        result = processor.query(query)
        metrics = evaluate_pruning(value_index, query, processor=processor)
        print(
            f"{query:50s} {result.candidate_count:5d} {result.result_count:5d} "
            f"{metrics.sel:7.1%} {metrics.pp:7.1%} {metrics.fpr:7.1%}"
        )

    # The structural index cannot cover value queries at all:
    from repro import twig_of

    assert not structural.covers(twig_of(queries[0]))
    print(
        "\nthe pure structural index rejects these queries (covers() is "
        "False); the value-extended index answers them with no false "
        "negatives — candidates are hash-bucket matches, refinement checks "
        "the actual strings."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a FIX index over a small bibliography collection and
run the paper's introductory queries against it.

Run:  python examples/quickstart.py
"""

from repro import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    PrimaryXMLStore,
    evaluate_pruning,
    parse_xml,
)

# The Figure 1 bibliography, split into a few documents so the collection
# index (depth limit 0: one feature key per document) has something to
# prune.
DOCUMENTS = [
    "<bib><article><author><address/><email/></author><title/></article></bib>",
    "<bib><article><author><email/><affiliation/></author><title/></article></bib>",
    "<bib><book><author><affiliation/><phone/></author><title/></book></bib>",
    "<bib><www><title/><author><email/></author></www></bib>",
    "<bib><inproceedings><author><affiliation/><phone/></author><title/>"
    "</inproceedings></bib>",
]


def main() -> None:
    # 1. Load documents into primary storage.
    store = PrimaryXMLStore()
    for source in DOCUMENTS:
        store.add_document(parse_xml(source))

    # 2. Build the index (Algorithm 1).  depth_limit=0 treats each
    #    document as one indexable unit — the "collection of small
    #    documents" scenario.
    index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
    print(f"built {index!r}")
    print(f"  B-tree size: {index.size_bytes()} bytes")
    print(f"  edge labels encoded: {len(index.encoder)}")

    # 3. Query (Algorithm 2): pruning via eigenvalue-range containment,
    #    then navigational refinement of the candidates.
    processor = FixQueryProcessor(index)
    for query in [
        "//author[phone][email]",     # the paper's introduction query
        "//article[author]/title",
        "//book/author/affiliation",
        "//author[address]",
    ]:
        result = processor.query(query)
        metrics = evaluate_pruning(index, query, processor=processor)
        docs = sorted(p.doc_id for p in result.results)
        print(
            f"{query:32s} candidates={result.candidate_count} "
            f"results={docs} pp={metrics.pp:.0%} fpr={metrics.fpr:.0%}"
        )

    # 4. The feature key itself, for the curious: the root label plus the
    #    extreme eigenvalues of the twig pattern's anti-symmetric matrix.
    from repro import twig_of

    key = index.query_features(twig_of("//author[phone][email]"))
    print(
        f"\nfeature key of //author[phone][email]: label={key.root_label!r} "
        f"lambda=[{key.range.lmin:.4f}, {key.range.lmax:.4f}]"
    )


if __name__ == "__main__":
    main()

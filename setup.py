"""Legacy setup shim: the build box has an old setuptools without the
modern wheel-based editable-install path, so `pip install -e .` goes
through this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FIX: Feature-based Indexing Technique for XML Documents - "
        "full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)

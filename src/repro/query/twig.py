"""Twig queries (Definition 1) and their twig patterns.

A :class:`TwigQuery` is the tree form of a path expression: NameTests as
nodes, axes as edges, value-equality literals attached to the node they
constrain.  Its *twig pattern* — the bisimulation graph the feature key
is extracted from — is obtained by materializing the query tree as an
element tree (value literals becoming text children) and running it
through the same :class:`~repro.bisim.builder.BisimGraphBuilder` used on
data, which also merges structurally identical query branches exactly as
Definition 4 requires.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import UnsupportedQueryError
from repro.bisim import BisimGraph, bisim_graph_of_document
from repro.query.ast import Axis, PathExpr, Step
from repro.xmltree.model import Element


@dataclass(slots=True)
class QueryNode:
    """A node of the query tree.

    Attributes:
        label: the NameTest.
        edges: outgoing ``(axis, child)`` pairs; for a Definition 1 twig
            all axes are :data:`Axis.CHILD`.
        value: text-equality literal constraining this node, or ``None``.
    """

    label: str
    edges: list[tuple[Axis, "QueryNode"]] = field(default_factory=list)
    value: str | None = None

    def depth(self) -> int:
        """Height of the query tree rooted here (this node counts as 1).

        A value literal does not add structural depth (it constrains the
        node, it does not descend past it) — this matches how the index
        depth limit is compared in Algorithm 2.
        """
        return 1 + max((child.depth() for _, child in self.edges), default=0)

    def extended_depth(self) -> int:
        """Depth in the *value-extended* tree, where a value literal is a
        text child occupying one level.  A value-extended index truncates
        its patterns at this extended depth, so coverage checks against a
        value index must use this measure."""
        floor = 2 if self.value is not None else 1
        return max(
            floor,
            1 + max((child.extended_depth() for _, child in self.edges), default=0),
        )

    def node_count(self) -> int:
        """Number of NameTest nodes in the subtree."""
        return 1 + sum(child.node_count() for _, child in self.edges)

    def all_child_axes(self) -> bool:
        """True when every edge below (and including) this node is ``/``."""
        return all(
            axis is Axis.CHILD and child.all_child_axes()
            for axis, child in self.edges
        )

    def has_values(self) -> bool:
        """True when any node in the subtree carries a value literal."""
        return self.value is not None or any(
            child.has_values() for _, child in self.edges
        )


@dataclass(slots=True)
class TwigQuery:
    """A rooted query tree plus the leading axis of its first step."""

    root: QueryNode
    leading_axis: Axis
    #: the original surface syntax, kept for display and round-trips.
    source: str = ""

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    def is_structural_twig(self) -> bool:
        """Definition 1: only child axes below the root, no value tests."""
        return self.root.all_child_axes() and not self.root.has_values()

    def is_twig(self) -> bool:
        """Twig shape (child axes only), values allowed — what the
        Section 4.6 value-extended index accepts."""
        return self.root.all_child_axes()

    def has_values(self) -> bool:
        """True when the query carries value-equality literals."""
        return self.root.has_values()

    def depth(self) -> int:
        """Structural depth (first step at depth 1)."""
        return self.root.depth()

    @property
    def root_label(self) -> str:
        """The NameTest of the first step — the feature key's label."""
        return self.root.label

    # ------------------------------------------------------------------ #
    # Pattern extraction
    # ------------------------------------------------------------------ #

    def to_element(self) -> Element:
        """Materialize the query tree as an element tree.

        Value literals become text children, mirroring how data documents
        carry PCDATA.

        Raises:
            UnsupportedQueryError: when the query has ``//`` edges below
                the root (those must be decomposed first — Section 5).
        """
        if not self.is_twig():
            raise UnsupportedQueryError(
                "only child-axis twigs can be materialized; decompose "
                "interior '//' first"
            )
        return _materialize(self.root)

    def pattern(
        self, text_label: Callable[[str], str] | None = None
    ) -> BisimGraph:
        """The twig pattern: bisimulation graph of the query tree.

        Args:
            text_label: the index's value-hash mapping; required to be the
                *same* mapping the index was built with for value queries.
        """
        if self.has_values() and text_label is None:
            raise UnsupportedQueryError(
                "query has value predicates but no value mapping was given "
                "(is the index value-extended?)"
            )
        element = self.to_element()
        # Query trees are tiny; Document numbering via bisim builder only.
        from repro.xmltree.model import Document

        return bisim_graph_of_document(Document(element), text_label=text_label)

    def with_child_leading_axis(self) -> "TwigQuery":
        """A copy whose leading ``//`` is replaced by ``/`` — the
        Algorithm 2, line 8 rewrite applied before refinement on indexed
        subpattern candidates."""
        return TwigQuery(self.root, Axis.CHILD, source=self.source)


def _materialize(node: QueryNode) -> Element:
    element = Element(node.label)
    if node.value is not None:
        element.add_text(node.value)
    for _, child in node.edges:
        element.append(_materialize(child))
    return element


# --------------------------------------------------------------------- #
# Construction from the AST
# --------------------------------------------------------------------- #


def _node_of_steps(steps: Sequence[Step]) -> QueryNode:
    """Build the query-node chain for a step sequence, attaching
    predicates as branches."""
    head = QueryNode(steps[0].name)
    _attach_predicates(head, steps[0])
    current = head
    for step in steps[1:]:
        child = QueryNode(step.name)
        _attach_predicates(child, step)
        current.edges.append((step.axis, child))
        current = child
    return head


def _attach_predicates(node: QueryNode, step: Step) -> None:
    for predicate in step.predicates:
        branch = _node_of_steps(predicate.path.steps)
        if predicate.value is not None:
            # The literal constrains the *last* node of the predicate path.
            tail = branch
            while tail.edges:
                tail = tail.edges[-1][1]
            tail.value = predicate.value
        node.edges.append((predicate.path.steps[0].axis, branch))


def twig_of(path: PathExpr | str) -> TwigQuery:
    """Convert a path expression into its query tree.

    Accepts either a parsed :class:`PathExpr` or query text.  The result
    may still contain interior ``//`` edges; callers that need a
    Definition 1 twig should check :meth:`TwigQuery.is_structural_twig`
    or run :func:`repro.query.decompose.decompose`.
    """
    if isinstance(path, str):
        from repro.query.parser import parse_query

        source = path
        path = parse_query(path)
    else:
        source = path.to_string()
    root = _node_of_steps(path.steps)
    # The first *edge* into the root is the leading axis; edges stored on
    # the chain start from the second step, so pull the root's axis off
    # the first step directly.
    return TwigQuery(root, path.steps[0].axis, source=source)

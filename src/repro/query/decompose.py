"""Decomposition of general path expressions into twig queries (Section 5).

A path expression with interior ``//`` axes is split at every descendant
edge: each maximal fragment connected by child edges becomes one twig
query (with a ``//`` leading axis, since its anchor point floats).  The
paper's example::

    //open_auction[.//bidder[name][email]]/price
      -> //open_auction/price         (the *top* twig, containing the root)
         //bidder[name][email]

Pruning semantics (Section 5): for a collection index every twig can
prune (a candidate document must cover all of them); for a depth-limited
index only the top twig prunes, because descendant fragments can match
below the indexed unit's horizon.
"""

from __future__ import annotations

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery, twig_of
from repro.query.ast import PathExpr


def decompose(query: TwigQuery | PathExpr | str) -> list[TwigQuery]:
    """Split a query at ``//`` edges into child-axis-only twig queries.

    The first element of the result is always the *top* twig (the one
    containing the original root).  A query that is already a twig
    returns a single structurally-equal copy.
    """
    if not isinstance(query, TwigQuery):
        query = twig_of(query)
    fragments: list[TwigQuery] = []
    top_root = _split(query.root, fragments)
    top = TwigQuery(top_root, query.leading_axis, source=query.source)
    return [top] + fragments


def _split(node: QueryNode, fragments: list[TwigQuery]) -> QueryNode:
    """Copy ``node``'s child-axis-connected component; descendant edges
    spawn new fragments appended to ``fragments`` (depth-first, so nested
    fragments follow their parents)."""
    copy = QueryNode(node.label, value=node.value)
    for axis, child in node.edges:
        child_copy = _split(child, fragments)
        if axis is Axis.CHILD:
            copy.edges.append((Axis.CHILD, child_copy))
        else:
            fragments.append(
                TwigQuery(child_copy, Axis.DESCENDANT, source=f"//{child.label}...")
            )
    return copy

"""Brute-force existential match semantics (Definition 2).

This module is the *ground truth* of the whole reproduction: selectivity
and false-positive/negative accounting, the refinement step's final
answer, and every end-to-end correctness test are all defined against
these functions.  They are deliberately simple — direct recursive
implementations of the paper's definitions with memoization — rather
than fast; the optimized evaluation paths live in :mod:`repro.engine`.
"""

from __future__ import annotations

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery
from repro.xmltree.model import Document, Element

_Memo = dict[tuple[int, int], bool]


def matches_at(
    node: QueryNode,
    element: Element,
    memo: _Memo | None = None,
) -> bool:
    """Does the query subtree rooted at ``node`` match with ``node`` bound
    to ``element``?

    Per Definition 2: labels must agree; a value literal requires a
    direct text child equal to it; every child edge must be satisfiable
    by some child (``/``) or some strict descendant (``//``).
    """
    if memo is None:
        memo = {}
    return _matches(node, element, memo)


def _matches(node: QueryNode, element: Element, memo: _Memo) -> bool:
    key = (id(node), element.node_id)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _matches_uncached(node, element, memo)
    memo[key] = result
    return result


def _matches_uncached(node: QueryNode, element: Element, memo: _Memo) -> bool:
    if node.label != element.tag:
        return False
    if node.value is not None and not any(
        text.value == node.value for text in element.text_children()
    ):
        return False
    for axis, child in node.edges:
        if axis is Axis.CHILD:
            candidates = element.child_elements()
        else:
            candidates = element.descendants()
        if not any(_matches(child, candidate, memo) for candidate in candidates):
            return False
    return True


def matching_elements(twig: TwigQuery, document: Document) -> list[Element]:
    """All elements the twig's root can bind to, in document order.

    With a ``//`` leading axis the root may bind anywhere; with ``/`` only
    to the document's root element (the query root's parent is the
    document node — Definition 2's first condition).
    """
    memo: _Memo = {}
    if twig.leading_axis is Axis.CHILD:
        candidates = [document.root]
    else:
        candidates = [
            element
            for element in document.elements()
            if element.tag == twig.root.label
        ]
    return [
        element for element in candidates if _matches(twig.root, element, memo)
    ]


def query_matches_document(twig: TwigQuery, document: Document) -> bool:
    """Existential match of the whole query against a document."""
    memo: _Memo = {}
    if twig.leading_axis is Axis.CHILD:
        return _matches(twig.root, document.root, memo)
    return any(
        _matches(twig.root, element, memo)
        for element in document.elements()
        if element.tag == twig.root.label
    )


def matches_within_depth(
    twig: TwigQuery, element: Element, depth_limit: int
) -> bool:
    """Match with the twig's root bound to ``element``, seeing only the
    subtree down to ``depth_limit`` levels (the indexed unit's horizon).

    Used to define ``rst`` for depth-limited indexes: an index entry
    (element) *produces a result* when the — leading-axis-rewritten —
    query matches rooted at that element inside its depth-``k`` unit.
    With ``depth_limit <= 0`` the whole subtree is visible.
    """
    memo: _Memo = {}
    return _matches_limited(twig.root, element, 1, depth_limit, memo)


def _matches_limited(
    node: QueryNode,
    element: Element,
    level: int,
    depth_limit: int,
    memo: _Memo,
) -> bool:
    key = (id(node), element.node_id)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _matches_limited_uncached(node, element, level, depth_limit, memo)
    memo[key] = result
    return result


def _matches_limited_uncached(
    node: QueryNode,
    element: Element,
    level: int,
    depth_limit: int,
    memo: _Memo,
) -> bool:
    if node.label != element.tag:
        return False
    if node.value is not None and not any(
        text.value == node.value for text in element.text_children()
    ):
        return False
    for axis, child in node.edges:
        if axis is Axis.CHILD:
            if depth_limit > 0 and level + 1 > depth_limit:
                return False
            hit = any(
                _matches_limited(child, candidate, level + 1, depth_limit, memo)
                for candidate in element.child_elements()
            )
        else:
            hit = _any_descendant_matches(
                child, element, level, depth_limit, memo
            )
        if not hit:
            return False
    return True


def _any_descendant_matches(
    node: QueryNode,
    element: Element,
    level: int,
    depth_limit: int,
    memo: _Memo,
) -> bool:
    stack = [(child, level + 1) for child in element.child_elements()]
    while stack:
        candidate, candidate_level = stack.pop()
        if depth_limit > 0 and candidate_level > depth_limit:
            continue
        if _matches_limited(node, candidate, candidate_level, depth_limit, memo):
            return True
        stack.extend(
            (grandchild, candidate_level + 1)
            for grandchild in candidate.child_elements()
        )
    return False

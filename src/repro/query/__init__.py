"""Path expressions, twig queries, and match semantics (Section 2.1, 5).

The supported fragment is the paper's: ``/`` and ``//`` axes, NameTests,
nested branching predicates, and value-equality predicates
(``[publisher = "Springer"]``).  The grammar::

    path      := axis step (axis step)*
    axis      := '//' | '/'
    step      := name predicate*
    predicate := '[' relpath ('=' literal)? ']'
    relpath   := ('.' axis step (axis step)*) | step (axis step)*
    literal   := '"' ... '"' | "'" ... "'"

* :func:`~repro.query.parser.parse_query` — text → :class:`PathExpr`.
* :class:`~repro.query.twig.TwigQuery` — the Definition 1 object: a
  rooted tree of NameTests with child edges only (leading axis may be
  ``//``), convertible to an element tree and hence — through the shared
  bisimulation builder — to its twig pattern and feature key.
* :func:`~repro.query.decompose.decompose` — split a general path
  expression with interior ``//`` into twig queries (Section 5).
* :mod:`~repro.query.match` — brute-force existential match semantics
  (Definitions 2 and 4): the ground truth the index is measured against.
"""

from repro.query.ast import Axis, PathExpr, Predicate, Step
from repro.query.decompose import decompose
from repro.query.match import (
    matches_at,
    matching_elements,
    query_matches_document,
)
from repro.query.parser import parse_query
from repro.query.twig import QueryNode, TwigQuery, twig_of

__all__ = [
    "Axis",
    "PathExpr",
    "Predicate",
    "QueryNode",
    "Step",
    "TwigQuery",
    "decompose",
    "matches_at",
    "matching_elements",
    "parse_query",
    "query_matches_document",
    "twig_of",
]

"""Recursive-descent parser for the supported path-expression fragment.

All twenty queries published in the paper's evaluation section parse with
this grammar (there is a round-trip test enumerating them).
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError, UnsupportedQueryError
from repro.query.ast import Axis, PathExpr, Predicate, Step

_NAME_RE = re.compile(r"[A-Za-z_\u0080-\U0010FFFF][-A-Za-z0-9._\u0080-\U0010FFFF]*")
_UNSUPPORTED_KINDTESTS = {
    "node", "text", "comment", "processing-instruction", "element", "attribute",
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Character-level helpers
    # ------------------------------------------------------------------ #

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\n\r":
            self.pos += 1

    def _peek(self, token: str) -> bool:
        self._skip_ws()
        return self.text.startswith(token, self.pos)

    def _accept(self, token: str) -> bool:
        if self._peek(token):
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._accept(token):
            raise QuerySyntaxError(f"expected {token!r}", self.pos)

    def _fail(self, message: str) -> None:
        raise QuerySyntaxError(message, self.pos)

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #

    def parse(self) -> PathExpr:
        self._skip_ws()
        if not self.text.strip():
            self._fail("empty path expression")
        steps = [self._step(self._axis(required=True))]
        while self._peek("/"):
            steps.append(self._step(self._axis(required=True)))
        self._skip_ws()
        if self.pos != len(self.text):
            self._fail(f"trailing input {self.text[self.pos:]!r}")
        return PathExpr(tuple(steps))

    def _axis(self, required: bool) -> Axis:
        if self._accept("//"):
            return Axis.DESCENDANT
        if self._accept("/"):
            return Axis.CHILD
        if required:
            self._fail("expected '/' or '//'")
        return Axis.CHILD

    def _step(self, axis: Axis) -> Step:
        self._skip_ws()
        if self._peek("@"):
            raise UnsupportedQueryError("attribute axis is not supported")
        if self._peek("*"):
            raise UnsupportedQueryError("wildcard NameTest is not supported")
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            self._fail("expected a name test")
        name = match.group(0)
        self.pos = match.end()
        if self._peek("::"):
            raise UnsupportedQueryError(
                f"axis {name!r} is not supported (only '/' and '//')"
            )
        if name in _UNSUPPORTED_KINDTESTS and self._peek("("):
            raise UnsupportedQueryError(f"KindTest {name}() is not supported")
        predicates: list[Predicate] = []
        while self._peek("["):
            predicates.append(self._predicate())
        return Step(axis, name, tuple(predicates))

    def _predicate(self) -> Predicate:
        self._expect("[")
        self._skip_ws()
        # Leading "." selects the context node; ".//x" makes the first
        # predicate step a descendant step.
        if self._accept("."):
            if not self._peek("/"):
                self._fail("expected '/' or '//' after '.' in predicate")
            first_axis = self._axis(required=True)
        else:
            first_axis = Axis.CHILD
            if self._peek("/"):
                # "[/x]" — an absolute path inside a predicate is outside
                # the fragment.
                raise UnsupportedQueryError(
                    "absolute paths inside predicates are not supported"
                )
        steps = [self._step(first_axis)]
        while self._peek("/"):
            steps.append(self._step(self._axis(required=True)))
        value: str | None = None
        self._skip_ws()
        if self._accept("="):
            value = self._literal()
        elif self._peek("<") or self._peek(">") or self._peek("!"):
            raise UnsupportedQueryError(
                "only '=' value comparisons are supported"
            )
        self._expect("]")
        return Predicate(PathExpr(tuple(steps)), value)

    def _literal(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            self._fail("expected a quoted string literal")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            self._fail("unterminated string literal")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value


def parse_query(text: str) -> PathExpr:
    """Parse a path expression.

    Raises:
        QuerySyntaxError: malformed input.
        UnsupportedQueryError: valid XPath outside the supported fragment
            (other axes, wildcards, KindTests, non-equality comparisons).
    """
    return _Parser(text).parse()

"""Abstract syntax of the supported path-expression fragment."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Axis(enum.Enum):
    """The two axes the paper's fragment supports (Section 2.1)."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Predicate:
    """A branching predicate ``[relpath]`` or ``[relpath = "literal"]``.

    ``path`` is a relative path expression; its first step's axis is the
    axis written after the optional leading ``.`` (a bare ``[author]``
    parses as a child-axis step, ``[.//author]`` as descendant).
    ``value`` is the equality literal, or ``None`` for purely structural
    predicates.
    """

    path: "PathExpr"
    value: str | None = None

    def __str__(self) -> str:
        inner = self.path.to_string(leading_axis=self.path.steps[0].axis is Axis.DESCENDANT and "." or "")
        if self.value is not None:
            return f"[{inner} = \"{self.value}\"]"
        return f"[{inner}]"


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: an axis, a NameTest, and optional predicates."""

    axis: Axis
    name: str
    predicates: tuple[Predicate, ...] = field(default=())

    def __str__(self) -> str:
        return f"{self.axis}{self.name}" + "".join(str(p) for p in self.predicates)


@dataclass(frozen=True, slots=True)
class PathExpr:
    """A parsed path expression: a non-empty sequence of steps."""

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a path expression needs at least one step")

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #

    def depth(self) -> int:
        """Depth of the query tree: the first step is at depth 1 and each
        further step or predicate step adds a level."""

        def predicate_depth(predicate: Predicate) -> int:
            # A value literal adds a text-node level in the value-extended
            # tree, but depth here is the *structural* depth the paper
            # compares against the index depth limit, so literals do not
            # count.
            return predicate.path.depth()

        best = 0
        for position, step in enumerate(self.steps, start=1):
            for predicate in step.predicates:
                best = max(best, position + predicate_depth(predicate))
            best = max(best, position)
        return best

    def has_interior_descendant_axis(self) -> bool:
        """True when any axis other than the very first is ``//``
        (including inside predicates) — the Section 5 decomposition case."""
        for position, step in enumerate(self.steps):
            if position > 0 and step.axis is Axis.DESCENDANT:
                return True
            for predicate in step.predicates:
                # Inside a predicate the leading axis is "interior" too.
                inner = predicate.path
                if any(s.axis is Axis.DESCENDANT for s in inner.steps):
                    return True
                if inner.has_interior_descendant_axis():
                    return True
        return False

    def has_value_predicates(self) -> bool:
        """True when any predicate (at any nesting depth) tests a value."""
        for step in self.steps:
            for predicate in step.predicates:
                if predicate.value is not None:
                    return True
                if predicate.path.has_value_predicates():
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def to_string(self, leading_axis: str | None = None) -> str:
        """Render back to path-expression syntax.

        ``leading_axis`` overrides how the first step's axis is printed
        (used for relative predicate paths, where a child-axis first step
        prints bare and a descendant one prints ``.//``).
        """
        parts: list[str] = []
        for position, step in enumerate(self.steps):
            if position == 0 and leading_axis is not None:
                axis_text = leading_axis
            elif position == 0 and step.axis is Axis.DESCENDANT:
                axis_text = "//"
            elif position == 0:
                axis_text = "/"
            else:
                axis_text = str(step.axis)
            parts.append(f"{axis_text}{step.name}")
            for predicate in step.predicates:
                inner_leading = (
                    ".//" if predicate.path.steps[0].axis is Axis.DESCENDANT else ""
                )
                inner = predicate.path.to_string(leading_axis=inner_leading)
                if predicate.value is not None:
                    parts.append(f'[{inner} = "{predicate.value}"]')
                else:
                    parts.append(f"[{inner}]")
        return "".join(parts)

    def __str__(self) -> str:
        return self.to_string()

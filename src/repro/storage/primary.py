"""Primary XML storage (Figure 3's "Primary storage").

Documents are serialized and stored as records; a :class:`NodePointer`
addresses any element inside any stored document by ``(doc_id,
node_id)``, where ``node_id`` is the element's document-order preorder
id.  This pair is exactly the ``start_ptr`` that flows through
Algorithm 1 and is stored as the *value* of the unclustered FIX index.

Resolution parses the document on first touch and caches a bounded
number of parsed trees, so repeated refinement over candidates from the
same document stays cheap while memory remains bounded (the pattern the
paper attributes to random I/O in the unclustered case still shows up in
the pager counters, because each fresh document touch re-reads its
record pages).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterator

import struct

from repro.errors import RecordError
from repro.storage.pager import Pager
from repro.storage.records import RecordFile, RecordPointer
from repro.xmltree import Document, Element, parse_xml, serialize_fragment


@dataclass(frozen=True, slots=True, order=True)
class NodePointer:
    """Address of an element node in primary storage."""

    doc_id: int
    node_id: int

    def pack(self) -> bytes:
        """8-byte fixed encoding (used as a B-tree value)."""
        return struct.pack("<II", self.doc_id, self.node_id)

    @classmethod
    def unpack(cls, data: bytes) -> "NodePointer":
        doc_id, node_id = struct.unpack("<II", data)
        return cls(doc_id, node_id)


class PrimaryXMLStore:
    """Append-only store of whole XML documents.

    Args:
        pager: backing pager (file-based or in-memory).
        cache_documents: how many parsed documents to keep resident.
    """

    def __init__(self, pager: Pager | None = None, cache_documents: int = 64) -> None:
        self._pager = pager if pager is not None else Pager()
        self._records = RecordFile(self._pager)
        # ``None`` entries are tombstones for removed documents; ids are
        # never reused, so pointers into removed documents fail loudly
        # instead of silently resolving into an unrelated document.
        self._directory: list[RecordPointer | None] = []
        self._cache_capacity = cache_documents
        self._cache: "OrderedDict[int, Document]" = OrderedDict()

    @property
    def pager(self) -> Pager:
        """The backing pager (exposed for I/O accounting)."""
        return self._pager

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def add_document(self, document: Document) -> int:
        """Store a document; returns its ``doc_id``.

        The document's own ``doc_id`` attribute is updated to match, so
        pointers minted from its nodes resolve back here.
        """
        doc_id = len(self._directory)
        payload = serialize_fragment(document.root).encode("utf-8")
        self._directory.append(self._records.append(payload))
        document.doc_id = doc_id
        # Seed the cache with the already-parsed tree.
        self._cache_put(doc_id, document)
        return doc_id

    def add_source(self, source: str) -> int:
        """Store raw XML text (parsed lazily on first access)."""
        doc_id = len(self._directory)
        self._directory.append(self._records.append(source.encode("utf-8")))
        return doc_id

    def add_document_at(self, document: Document, doc_id: int) -> None:
        """Store a document under a caller-chosen ``doc_id``.

        Shard stores use this to keep *global* document ids: ids below
        ``doc_id`` that this store has never seen become tombstones
        (documents living in sibling shards), so every pointer minted
        anywhere in a sharded index resolves without translation.

        Raises:
            RecordError: when ``doc_id`` is already occupied.
        """
        self._claim_slot(doc_id)
        payload = serialize_fragment(document.root).encode("utf-8")
        self._directory[doc_id] = self._records.append(payload)
        document.doc_id = doc_id
        self._cache_put(doc_id, document)

    def add_source_at(self, source: str, doc_id: int) -> None:
        """Store raw XML text under a caller-chosen ``doc_id`` (the
        lazy-parse counterpart of :meth:`add_document_at`)."""
        self._claim_slot(doc_id)
        self._directory[doc_id] = self._records.append(source.encode("utf-8"))

    def _claim_slot(self, doc_id: int) -> None:
        if doc_id < 0:
            raise RecordError(f"invalid document id {doc_id}")
        if doc_id < len(self._directory) and self._directory[doc_id] is not None:
            raise RecordError(f"document id {doc_id} is already occupied")
        while len(self._directory) <= doc_id:
            self._directory.append(None)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def document_count(self) -> int:
        """Number of live (non-removed) documents."""
        return sum(1 for pointer in self._directory if pointer is not None)

    def doc_ids(self) -> Iterator[int]:
        """All live document ids, ascending."""
        return (
            doc_id
            for doc_id, pointer in enumerate(self._directory)
            if pointer is not None
        )

    def remove_document(self, doc_id: int) -> None:
        """Tombstone a document.  Its id is never reused; the record
        bytes remain on their pages (no compaction — the build-once
        workloads here never need it, and pointers into the removed
        document now fail loudly).

        Raises:
            RecordError: for unknown or already-removed ids.
        """
        if not 0 <= doc_id < len(self._directory) or self._directory[doc_id] is None:
            raise RecordError(f"no document with id {doc_id}")
        self._directory[doc_id] = None
        self._cache.pop(doc_id, None)

    def get_source(self, doc_id: int) -> str:
        """Raw serialized XML of a stored document, without parsing.

        This is what the parallel build ships to worker processes: the
        stored record bytes are already the serialized form, so handing
        them out costs one record read instead of a serialize pass over
        the parsed tree.

        Raises:
            RecordError: for unknown or removed ids.
        """
        if not 0 <= doc_id < len(self._directory):
            raise RecordError(f"no document with id {doc_id}")
        pointer = self._directory[doc_id]
        if pointer is None:
            raise RecordError(f"document {doc_id} was removed")
        return self._records.read(pointer).decode("utf-8")

    def get_document(self, doc_id: int) -> Document:
        """Fetch (and parse, if not cached) a stored document."""
        cached = self._cache.get(doc_id)
        if cached is not None:
            self._cache.move_to_end(doc_id)
            return cached
        if not 0 <= doc_id < len(self._directory):
            raise RecordError(f"no document with id {doc_id}")
        pointer = self._directory[doc_id]
        if pointer is None:
            raise RecordError(f"document {doc_id} was removed")
        payload = self._records.read(pointer)
        document = parse_xml(payload.decode("utf-8"), doc_id=doc_id)
        self._cache_put(doc_id, document)
        return document

    def record_locations(self) -> list[tuple[int, int, int]]:
        """``(doc_id, page_id, slot)`` for every live document, in
        ``doc_id`` order — everything a shard-build worker needs to
        :meth:`attach` to this store's (flushed) pages file and read the
        sources itself, instead of the coordinator shipping the bytes
        through the task pickle."""
        return [
            (doc_id, pointer.page_id, pointer.slot)
            for doc_id, pointer in enumerate(self._directory)
            if pointer is not None
        ]

    @classmethod
    def attach(
        cls,
        pages_path: str,
        page_size: int,
        records: "list[tuple[int, int, int]] | tuple[tuple[int, int, int], ...]",
        *,
        page_cache_pages: int | None = None,
        cache_documents: int = 64,
    ) -> "PrimaryXMLStore":
        """Reattach to an already-written pages file from a directory of
        :meth:`record_locations` triples (no ``primary.json`` needed —
        the spill-build counterpart of :meth:`load`, used by shard-build
        worker processes).  The caller must not write through this store
        while the owning process keeps its own pager open.

        Raises:
            PageError: unreadable or truncated pages file.
        """
        pager_options = (
            {} if page_cache_pages is None else {"cache_pages": page_cache_pages}
        )
        pager = Pager(pages_path, page_size=page_size, **pager_options)
        store = cls(pager, cache_documents=cache_documents)
        for doc_id, page_id, slot in records:
            while len(store._directory) <= doc_id:
                store._directory.append(None)
            store._directory[doc_id] = RecordPointer(page_id, slot)
        return store

    def resolve(self, pointer: NodePointer) -> Element:
        """Return the element a pointer addresses.

        Raises:
            RecordError: for unknown documents or non-element node ids.
        """
        document = self.get_document(pointer.doc_id)
        try:
            return document.element_at(pointer.node_id)
        except KeyError as exc:
            raise RecordError(
                f"document {pointer.doc_id} has no element {pointer.node_id}"
            ) from exc

    def size_bytes(self) -> int:
        """Bytes consumed by the underlying pages."""
        return self._pager.size_bytes()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, directory: str) -> None:
        """Persist the store into ``directory`` (pages + directory file)."""
        import json
        import os

        os.makedirs(directory, exist_ok=True)
        self._pager.copy_to(os.path.join(directory, "primary.pages"))
        manifest = {
            "page_size": self._pager.page_size,
            "documents": [
                [p.page_id, p.slot] if p is not None else None
                for p in self._directory
            ],
        }
        with open(
            os.path.join(directory, "primary.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle)

    @classmethod
    def load(
        cls,
        directory: str,
        cache_documents: int = 64,
        page_cache_pages: int | None = None,
    ) -> "PrimaryXMLStore":
        """Reattach to a store previously :meth:`save`\\ d.

        ``page_cache_pages`` bounds the reattached pager's buffer pool
        (default: the pager's own default capacity).

        Raises:
            RecordError: when the directory does not hold a saved store.
        """
        import json
        import os

        manifest_path = os.path.join(directory, "primary.json")
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError as exc:
            raise RecordError(f"no saved store at {directory!r}") from exc
        pager_options = (
            {} if page_cache_pages is None else {"cache_pages": page_cache_pages}
        )
        pager = Pager(
            os.path.join(directory, "primary.pages"),
            page_size=manifest["page_size"],
            **pager_options,
        )
        store = cls(pager, cache_documents=cache_documents)
        store._directory = [
            RecordPointer(entry[0], entry[1]) if entry is not None else None
            for entry in manifest["documents"]
        ]
        return store

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _cache_put(self, doc_id: int, document: Document) -> None:
        self._cache[doc_id] = document
        self._cache.move_to_end(doc_id)
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)

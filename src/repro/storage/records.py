"""Slotted-page record files with overflow chaining.

Layout of a data page::

    [u16 slot_count][u16 free_offset] [slot directory: u16 offset, u16 length]*
    ... free space ...
    [record payloads packed from the end of the page]

Records larger than a page's capacity are split across a chain of
*overflow* pages; the head segment stores a continuation page id.  A
:class:`RecordPointer` is ``(page_id, slot)`` — stable for the lifetime
of the file (records are append-only here; FIX never updates in place).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import RecordError
from repro.storage.pager import Pager

_HEADER = struct.Struct("<HH")  # slot_count, free_offset
_SLOT = struct.Struct("<HH")  # payload offset, payload length
# Head segment prefix: total length (u32) and continuation page (u32,
# 0xFFFFFFFF = none).  Payload bytes follow.
_SEGMENT = struct.Struct("<II")
_NO_PAGE = 0xFFFFFFFF


@dataclass(frozen=True, slots=True, order=True)
class RecordPointer:
    """Stable address of a stored record."""

    page_id: int
    slot: int

    def pack(self) -> bytes:
        """8-byte fixed encoding (used as a B-tree value)."""
        return struct.pack("<II", self.page_id, self.slot)

    @classmethod
    def unpack(cls, data: bytes) -> "RecordPointer":
        page_id, slot = struct.unpack("<II", data)
        return cls(page_id, slot)


class RecordFile:
    """Append-oriented record store over a :class:`Pager`.

    Multiple record files can share one pager as long as each keeps to
    its own pages, which they do by construction (pages are handed out by
    the pager's allocator).
    """

    def __init__(self, pager: Pager) -> None:
        self._pager = pager
        self._current_page: int | None = None
        self._record_count = 0

    @property
    def record_count(self) -> int:
        """Number of records appended through this handle."""
        return self._record_count

    # ------------------------------------------------------------------ #
    # Append
    # ------------------------------------------------------------------ #

    def append(self, payload: bytes) -> RecordPointer:
        """Store ``payload`` and return its pointer."""
        head, continuation = self._split(payload)
        pointer = self._append_segment(head, len(payload), continuation)
        self._record_count += 1
        return pointer

    def _split(self, payload: bytes) -> tuple[bytes, int]:
        """Carve overflow pages off the tail of an oversized payload.

        Returns the head chunk plus the id of the first overflow page
        (or ``_NO_PAGE``).  Overflow pages are raw: 4-byte next-page id
        then data.
        """
        capacity = self._head_capacity()
        if len(payload) <= capacity:
            return payload, _NO_PAGE
        head, rest = payload[:capacity], payload[capacity:]
        chunk_size = self._pager.page_size - 4
        chunks = [rest[i : i + chunk_size] for i in range(0, len(rest), chunk_size)]
        next_page = _NO_PAGE
        for chunk in reversed(chunks):
            page_id = self._pager.allocate()
            buffer = bytearray(self._pager.page_size)
            struct.pack_into("<I", buffer, 0, next_page)
            buffer[4 : 4 + len(chunk)] = chunk
            self._pager.write(page_id, buffer)
            next_page = page_id
        return head, next_page

    def _head_capacity(self) -> int:
        """Maximum head-segment payload that always fits a fresh page."""
        return (
            self._pager.page_size
            - _HEADER.size
            - _SLOT.size
            - _SEGMENT.size
        )

    def _append_segment(
        self, head: bytes, total_length: int, continuation: int
    ) -> RecordPointer:
        needed = _SLOT.size + _SEGMENT.size + len(head)
        page_id = self._current_page
        if page_id is None or self._free_space(page_id) < needed:
            page_id = self._pager.allocate()
            buffer = bytearray(self._pager.page_size)
            _HEADER.pack_into(buffer, 0, 0, self._pager.page_size)
            self._pager.write(page_id, buffer)
            self._current_page = page_id
        buffer = self._pager.read(page_id)
        slot_count, free_offset = _HEADER.unpack_from(buffer, 0)
        payload_length = _SEGMENT.size + len(head)
        start = free_offset - payload_length
        _SEGMENT.pack_into(buffer, start, total_length, continuation)
        buffer[start + _SEGMENT.size : start + payload_length] = head
        slot_offset = _HEADER.size + slot_count * _SLOT.size
        _SLOT.pack_into(buffer, slot_offset, start, payload_length)
        _HEADER.pack_into(buffer, 0, slot_count + 1, start)
        self._pager.mark_dirty(page_id)
        return RecordPointer(page_id, slot_count)

    def _free_space(self, page_id: int) -> int:
        buffer = self._pager.read(page_id)
        slot_count, free_offset = _HEADER.unpack_from(buffer, 0)
        directory_end = _HEADER.size + slot_count * _SLOT.size
        return free_offset - directory_end

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #

    def read(self, pointer: RecordPointer) -> bytes:
        """Fetch the full payload of a record.

        Raises:
            RecordError: for pointers that do not name a stored record.
        """
        try:
            buffer = self._pager.read(pointer.page_id)
        except Exception as exc:  # PageError
            raise RecordError(f"bad record pointer {pointer}: {exc}") from exc
        slot_count, _ = _HEADER.unpack_from(buffer, 0)
        if not 0 <= pointer.slot < slot_count:
            raise RecordError(
                f"page {pointer.page_id} has {slot_count} slots, "
                f"no slot {pointer.slot}"
            )
        offset, length = _SLOT.unpack_from(
            buffer, _HEADER.size + pointer.slot * _SLOT.size
        )
        total_length, continuation = _SEGMENT.unpack_from(buffer, offset)
        parts = [bytes(buffer[offset + _SEGMENT.size : offset + length])]
        got = length - _SEGMENT.size
        page_id = continuation
        while page_id != _NO_PAGE:
            overflow = self._pager.read(page_id)
            (page_id,) = struct.unpack_from("<I", overflow, 0)
            take = min(self._pager.page_size - 4, total_length - got)
            parts.append(bytes(overflow[4 : 4 + take]))
            got += take
        payload = b"".join(parts)
        if len(payload) != total_length:
            raise RecordError(
                f"record {pointer} truncated: expected {total_length} bytes, "
                f"got {len(payload)}"
            )
        return payload

"""Fixed-size page manager with an mmap-backed bounded buffer pool.

All persistent structures (record files, the B+tree) allocate and access
pages exclusively through a :class:`Pager`.  The pager counts *logical*
accesses and *physical* (cache-miss) accesses separately; the experiment
harness uses these counters to report I/O behaviour — e.g. the clustered
index's sequential advantage — independently of wall-clock noise.

A pager can be file-backed or purely in-memory (``path=None``).  The
in-memory mode still goes through the same buffer-pool accounting, so
benchmarks measuring page-touch counts behave identically; it never
evicts (there is nothing to evict *to*).

File-backed pagers are the out-of-core substrate (DESIGN.md §11):

* **Reads** that miss the pool are served from a shared read-only
  ``mmap`` of the backing file — the kernel's page cache is the second
  cache tier, and residency is bounded by the pool, not the file size.
  Pages past the mapped region (allocated but not yet written back)
  fall back to ``pread`` with zero-extension.
* **The buffer pool is bounded** at ``cache_pages`` frames with LRU
  eviction.  Evicting a dirty frame writes it back first (the map is
  ``MAP_SHARED`` over the same file, so a later miss re-reads exactly
  what was evicted).  Pinned frames (:meth:`pin`) are skipped by the
  eviction scan, which lets callers mutate a page buffer in place
  across intervening pager calls and then :meth:`mark_dirty` it.
* **Counters** — hits, misses, evictions — publish into a ``repro.obs``
  registry under ``pager.*`` (:meth:`PagerStats.publish`), so ``repro
  stats`` and ``repro trace`` can show pool residency behaviour.
"""

from __future__ import annotations

import mmap
import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import PageError

#: Default page size in bytes.  4 KiB matches the paper-era commodity
#: filesystem block size the original Berkeley DB deployment would use.
PAGE_SIZE = 4096

#: Default buffer-pool capacity in pages (1 MiB at the default page
#: size) — the value ``FixIndexConfig.page_cache_pages`` defaults to.
DEFAULT_CACHE_PAGES = 256


@dataclass
class PagerStats:
    """Access counters, all monotonically increasing.

    Attributes:
        logical_reads: every ``read`` call.
        physical_reads: reads that missed the buffer pool.
        logical_writes: every ``write`` call.
        physical_writes: dirty-page evictions plus final flush writes.
        allocations: pages ever allocated.
        evictions: frames pushed out of the bounded pool (clean or
            dirty; dirty evictions also count a physical write).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    logical_writes: int = 0
    physical_writes: int = 0
    allocations: int = 0
    evictions: int = 0

    @property
    def cache_hits(self) -> int:
        """Reads served from the pool."""
        return self.logical_reads - self.physical_reads

    @property
    def hit_rate(self) -> float:
        """Pool hit rate over all logical reads (0.0 when idle)."""
        return self.cache_hits / self.logical_reads if self.logical_reads else 0.0

    def snapshot(self) -> "PagerStats":
        """A copy frozen at the current counts (for before/after deltas)."""
        return PagerStats(
            self.logical_reads,
            self.physical_reads,
            self.logical_writes,
            self.physical_writes,
            self.allocations,
            self.evictions,
        )

    def delta(self, before: "PagerStats") -> "PagerStats":
        """Counter difference ``self - before``."""
        return PagerStats(
            self.logical_reads - before.logical_reads,
            self.physical_reads - before.physical_reads,
            self.logical_writes - before.logical_writes,
            self.physical_writes - before.physical_writes,
            self.allocations - before.allocations,
            self.evictions - before.evictions,
        )

    def add(self, other: "PagerStats") -> None:
        """Fold another pager's counters into this one (aggregation
        across the pagers of one index, or of every shard)."""
        self.logical_reads += other.logical_reads
        self.physical_reads += other.physical_reads
        self.logical_writes += other.logical_writes
        self.physical_writes += other.physical_writes
        self.allocations += other.allocations
        self.evictions += other.evictions

    @classmethod
    def combine(cls, stats: "list[PagerStats] | tuple[PagerStats, ...]") -> "PagerStats":
        """Sum of several pagers' counters."""
        total = cls()
        for item in stats:
            total.add(item)
        return total

    def publish(self, registry, prefix: str = "pager.") -> None:
        """Sync these monotonic totals into a ``repro.obs`` registry
        (idempotent delta-sync; see ``MetricsRegistry.sync_counter``).

        Aggregated totals (``combine``) stay monotone as long as the
        same pager set is summed each time, which is how the index-level
        publishers use this."""
        registry.sync_counter(prefix + "logical_reads", self.logical_reads)
        registry.sync_counter(prefix + "physical_reads", self.physical_reads)
        registry.sync_counter(prefix + "cache_hits", self.cache_hits)
        registry.sync_counter(prefix + "logical_writes", self.logical_writes)
        registry.sync_counter(prefix + "physical_writes", self.physical_writes)
        registry.sync_counter(prefix + "allocations", self.allocations)
        registry.sync_counter(prefix + "evictions", self.evictions)
        registry.gauge(prefix + "hit_rate").set(self.hit_rate)


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = field(default=False)
    pins: int = field(default=0)


class Pager:
    """Page allocator and bounded buffer pool.

    Args:
        path: backing file path, or ``None`` for a purely in-memory pager.
        page_size: bytes per page.
        cache_pages: buffer-pool capacity in pages; only meaningful for
            file-backed pagers (the in-memory pager keeps everything).
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = PAGE_SIZE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        if page_size < 64:
            raise PageError(f"page size {page_size} too small")
        if cache_pages < 1:
            raise PageError(f"need at least one cache page, got {cache_pages}")
        self.page_size = page_size
        self.stats = PagerStats()
        self._path = path
        self._cache_pages = cache_pages
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._page_count = 0
        self._closed = False
        self._map: mmap.mmap | None = None
        self._map_pages = 0
        self._map_touches = 0
        if path is None:
            self._fd: int | None = None
        else:
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            size = os.fstat(self._fd).st_size
            if size % page_size:
                raise PageError(
                    f"file size {size} is not a multiple of page size {page_size}"
                )
            self._page_count = size // page_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return self._page_count

    @property
    def in_memory(self) -> bool:
        """True when there is no backing file."""
        return self._fd is None

    @property
    def path(self) -> str | None:
        """The backing file path (``None`` for in-memory pagers).
        Build workers use it to reopen a spilled store read-only in
        another process after the coordinator flushes."""
        return self._path

    @property
    def cache_pages(self) -> int:
        """Buffer-pool capacity in pages."""
        return self._cache_pages

    @property
    def resident_pages(self) -> int:
        """Frames currently held by the buffer pool."""
        return len(self._frames)

    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its id."""
        self._check_open()
        page_id = self._page_count
        self._page_count += 1
        self.stats.allocations += 1
        self._install(page_id, bytearray(self.page_size), dirty=True)
        return page_id

    def read(self, page_id: int) -> bytearray:
        """Return the page contents (a live buffer; mutate then ``write``
        or :meth:`mark_dirty` — pin the page first when other pager calls
        can happen in between, or the frame may be evicted).

        Raises:
            PageError: for out-of-range ids.
        """
        self._check_open()
        self._check_range(page_id)
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            return frame.data
        self.stats.physical_reads += 1
        data = self._read_backing(page_id)
        self._install(page_id, data, dirty=False)
        return data

    def write(self, page_id: int, data: bytes | bytearray) -> None:
        """Replace the page contents.

        Raises:
            PageError: for out-of-range ids or wrong-sized data.
        """
        self._check_open()
        self._check_range(page_id)
        if len(data) != self.page_size:
            raise PageError(
                f"write of {len(data)} bytes to page of {self.page_size}"
            )
        self.stats.logical_writes += 1
        buffer = data if isinstance(data, bytearray) else bytearray(data)
        self._install(page_id, buffer, dirty=True)

    def mark_dirty(self, page_id: int) -> None:
        """Mark an in-pool page as modified in place (after mutating the
        buffer returned by :meth:`read`)."""
        self._check_open()
        frame = self._frames.get(page_id)
        if frame is None:
            raise PageError(f"page {page_id} not resident; read it first")
        frame.dirty = True
        self.stats.logical_writes += 1

    def pin(self, page_id: int) -> "_PinGuard":
        """Pin a resident page so eviction skips it (context manager).

        Use around read-mutate-``mark_dirty`` sequences that perform
        other pager calls in between::

            with pager.pin(page_id):
                buffer = pager.read(page_id)
                ...  # other reads/allocations may evict unpinned frames
                pager.mark_dirty(page_id)

        Raises:
            PageError: when the page is not resident (read it first) or
                out of range.
        """
        self._check_open()
        self._check_range(page_id)
        frame = self._frames.get(page_id)
        if frame is None:
            raise PageError(f"page {page_id} not resident; read it first")
        frame.pins += 1
        return _PinGuard(self, page_id)

    def _unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and frame.pins > 0:
            frame.pins -= 1

    def flush(self) -> None:
        """Write every dirty page to the backing file (no-op in memory)."""
        self._check_open()
        if self._fd is None:
            return
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self._write_backing(page_id, frame.data)
                frame.dirty = False

    def close(self) -> None:
        """Flush and release the backing file."""
        if self._closed:
            return
        self.flush()
        if self._map is not None:
            self._map.close()
            self._map = None
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._closed = True

    def size_bytes(self) -> int:
        """Total size of the paged store in bytes."""
        return self._page_count * self.page_size

    def copy_to(self, path: str) -> None:
        """Materialize every page into a file at ``path``.

        Used to persist in-memory pagers (flush dirty frames first when
        copying a file-backed pager so the copy is current).  Copying a
        file-backed pager onto its own backing file degenerates to a
        flush — the pages are already exactly where they belong.
        """
        self.flush()
        if self._path is not None:
            try:
                if os.path.exists(path) and os.path.samefile(self._path, path):
                    return
            except OSError:
                pass
        with open(path, "wb") as handle:
            for page_id in range(self._page_count):
                handle.write(bytes(self.read(page_id)))

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")

    def _check_range(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise PageError(
                f"page {page_id} out of range (have {self._page_count} pages)"
            )

    def _install(self, page_id: int, data: bytearray, dirty: bool) -> None:
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.data = data
            frame.dirty = frame.dirty or dirty
            self._frames.move_to_end(page_id)
        else:
            self._frames[page_id] = _Frame(data, dirty)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        if self._fd is None:
            return  # in-memory pager keeps everything resident
        overflow = len(self._frames) - self._cache_pages
        if overflow <= 0:
            return
        # LRU sweep from the cold end; pinned frames are skipped (they
        # rotate to the hot end so the sweep terminates).
        scanned = 0
        limit = len(self._frames)
        while overflow > 0 and scanned < limit:
            victim_id, victim = next(iter(self._frames.items()))
            scanned += 1
            if victim.pins > 0:
                self._frames.move_to_end(victim_id)
                continue
            del self._frames[victim_id]
            if victim.dirty:
                self._write_backing(victim_id, victim.data)
            self.stats.evictions += 1
            overflow -= 1

    def _read_backing(self, page_id: int) -> bytearray:
        if self._fd is None:
            # In-memory pager: a miss can only mean the frame was never
            # created, which _install prevents; treat as zero page.
            return bytearray(self.page_size)
        if page_id >= self._map_pages:
            self._remap()
        if page_id < self._map_pages:
            offset = page_id * self.page_size
            assert self._map is not None
            data = bytearray(self._map[offset : offset + self.page_size])
            self._map_touches += 1
            if self._map_touches >= 4 * self._cache_pages:
                self._advise_cold()
            return data
        # Past the mapped region even after remap: allocated but never
        # written back (or truncated by a crash) — zero-extend.
        data = os.pread(self._fd, self.page_size, page_id * self.page_size)
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return bytearray(data)

    def _remap(self) -> None:
        """(Re)map the backing file read-only to its current size."""
        assert self._fd is not None
        size = os.fstat(self._fd).st_size
        pages = size // self.page_size
        if pages <= self._map_pages:
            return
        if self._map is not None:
            self._map.close()
            self._map = None
            self._map_pages = 0
        self._map = mmap.mmap(
            self._fd, pages * self.page_size, access=mmap.ACCESS_READ
        )
        self._map_pages = pages

    def _advise_cold(self) -> None:
        """Drop the mapping's resident pages back to the OS.

        The frame cache is the buffer pool; letting the read mapping
        accumulate every touched file page would grow RSS with corpus
        size regardless of ``cache_pages``.  MADV_DONTNEED on a
        read-only file mapping discards nothing — dropped pages fault
        back in from the page cache / disk on the next miss.
        """
        self._map_touches = 0
        if self._map is None or not hasattr(mmap, "MADV_DONTNEED"):
            return
        try:
            self._map.madvise(mmap.MADV_DONTNEED)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def _write_backing(self, page_id: int, data: bytearray) -> None:
        assert self._fd is not None
        os.pwrite(self._fd, bytes(data), page_id * self.page_size)
        self.stats.physical_writes += 1


class _PinGuard:
    """Context manager returned by :meth:`Pager.pin`."""

    __slots__ = ("_pager", "_page_id")

    def __init__(self, pager: Pager, page_id: int) -> None:
        self._pager = pager
        self._page_id = page_id

    def __enter__(self) -> "_PinGuard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._pager._unpin(self._page_id)

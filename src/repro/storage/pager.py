"""Fixed-size page manager with an LRU buffer pool.

All persistent structures (record files, the B+tree) allocate and access
pages exclusively through a :class:`Pager`.  The pager counts *logical*
accesses and *physical* (cache-miss) accesses separately; the experiment
harness uses these counters to report I/O behaviour — e.g. the clustered
index's sequential advantage — independently of wall-clock noise.

A pager can be file-backed or purely in-memory (``path=None``).  The
in-memory mode still goes through the same buffer-pool accounting, so
benchmarks measuring page-touch counts behave identically.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import PageError

#: Default page size in bytes.  4 KiB matches the paper-era commodity
#: filesystem block size the original Berkeley DB deployment would use.
PAGE_SIZE = 4096


@dataclass
class PagerStats:
    """Access counters, all monotonically increasing.

    Attributes:
        logical_reads: every ``read`` call.
        physical_reads: reads that missed the buffer pool.
        logical_writes: every ``write`` call.
        physical_writes: dirty-page evictions plus final flush writes.
        allocations: pages ever allocated.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    logical_writes: int = 0
    physical_writes: int = 0
    allocations: int = 0

    def snapshot(self) -> "PagerStats":
        """A copy frozen at the current counts (for before/after deltas)."""
        return PagerStats(
            self.logical_reads,
            self.physical_reads,
            self.logical_writes,
            self.physical_writes,
            self.allocations,
        )

    def delta(self, before: "PagerStats") -> "PagerStats":
        """Counter difference ``self - before``."""
        return PagerStats(
            self.logical_reads - before.logical_reads,
            self.physical_reads - before.physical_reads,
            self.logical_writes - before.logical_writes,
            self.physical_writes - before.physical_writes,
            self.allocations - before.allocations,
        )


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = field(default=False)


class Pager:
    """Page allocator and buffer pool.

    Args:
        path: backing file path, or ``None`` for a purely in-memory pager.
        page_size: bytes per page.
        cache_pages: buffer-pool capacity in pages; only meaningful for
            file-backed pagers (the in-memory pager keeps everything).
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = PAGE_SIZE,
        cache_pages: int = 256,
    ) -> None:
        if page_size < 64:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        self.stats = PagerStats()
        self._path = path
        self._cache_pages = cache_pages
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._page_count = 0
        self._closed = False
        if path is None:
            self._fd: int | None = None
        else:
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            size = os.fstat(self._fd).st_size
            if size % page_size:
                raise PageError(
                    f"file size {size} is not a multiple of page size {page_size}"
                )
            self._page_count = size // page_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return self._page_count

    @property
    def in_memory(self) -> bool:
        """True when there is no backing file."""
        return self._fd is None

    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its id."""
        self._check_open()
        page_id = self._page_count
        self._page_count += 1
        self.stats.allocations += 1
        self._install(page_id, bytearray(self.page_size), dirty=True)
        return page_id

    def read(self, page_id: int) -> bytearray:
        """Return the page contents (a live buffer; mutate then ``write``).

        Raises:
            PageError: for out-of-range ids.
        """
        self._check_open()
        self._check_range(page_id)
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            return frame.data
        self.stats.physical_reads += 1
        data = self._read_backing(page_id)
        self._install(page_id, data, dirty=False)
        return data

    def write(self, page_id: int, data: bytes | bytearray) -> None:
        """Replace the page contents.

        Raises:
            PageError: for out-of-range ids or wrong-sized data.
        """
        self._check_open()
        self._check_range(page_id)
        if len(data) != self.page_size:
            raise PageError(
                f"write of {len(data)} bytes to page of {self.page_size}"
            )
        self.stats.logical_writes += 1
        buffer = data if isinstance(data, bytearray) else bytearray(data)
        self._install(page_id, buffer, dirty=True)

    def mark_dirty(self, page_id: int) -> None:
        """Mark an in-pool page as modified in place (after mutating the
        buffer returned by :meth:`read`)."""
        self._check_open()
        frame = self._frames.get(page_id)
        if frame is None:
            raise PageError(f"page {page_id} not resident; read it first")
        frame.dirty = True
        self.stats.logical_writes += 1

    def flush(self) -> None:
        """Write every dirty page to the backing file (no-op in memory)."""
        self._check_open()
        if self._fd is None:
            return
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self._write_backing(page_id, frame.data)
                frame.dirty = False

    def close(self) -> None:
        """Flush and release the backing file."""
        if self._closed:
            return
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._closed = True

    def size_bytes(self) -> int:
        """Total size of the paged store in bytes."""
        return self._page_count * self.page_size

    def copy_to(self, path: str) -> None:
        """Materialize every page into a file at ``path``.

        Used to persist in-memory pagers (flush dirty frames first when
        copying a file-backed pager so the copy is current).
        """
        self.flush()
        with open(path, "wb") as handle:
            for page_id in range(self._page_count):
                handle.write(bytes(self.read(page_id)))

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:
        if self._closed:
            raise PageError("pager is closed")

    def _check_range(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise PageError(
                f"page {page_id} out of range (have {self._page_count} pages)"
            )

    def _install(self, page_id: int, data: bytearray, dirty: bool) -> None:
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.data = data
            frame.dirty = frame.dirty or dirty
            self._frames.move_to_end(page_id)
        else:
            self._frames[page_id] = _Frame(data, dirty)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        if self._fd is None:
            return  # in-memory pager keeps everything resident
        while len(self._frames) > self._cache_pages:
            victim_id, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self._write_backing(victim_id, victim.data)

    def _read_backing(self, page_id: int) -> bytearray:
        if self._fd is None:
            # In-memory pager: a miss can only mean the frame was never
            # created, which _install prevents; treat as zero page.
            return bytearray(self.page_size)
        data = os.pread(self._fd, self.page_size, page_id * self.page_size)
        if len(data) < self.page_size:
            # Allocated but never flushed past EOF: zero-extend.
            data = data.ljust(self.page_size, b"\x00")
        return bytearray(data)

    def _write_backing(self, page_id: int, data: bytearray) -> None:
        assert self._fd is not None
        os.pwrite(self._fd, bytes(data), page_id * self.page_size)
        self.stats.physical_writes += 1

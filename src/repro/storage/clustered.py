"""Clustered copy storage (Figure 4's "Copy of Primary XML Data Storage
with Redundancy").

The clustered FIX index copies each indexed unit — a whole small document
or a depth-limited subtree of a large one — into this store *in feature-
key order*, so that a range of candidates for one query lands on
contiguous pages and refinement I/O is sequential.  The B-tree's values
are :class:`~repro.storage.records.RecordPointer`\\ s into this store.

The redundancy the paper warns about is real: a subtree of depth ``k``
rooted at every element means ancestors' copies contain their
descendants' copies.  ``size_bytes`` therefore reports the full
(redundant) footprint, which is what Table 1's ``|CIdx|`` column shows
ballooning relative to ``|UIdx|``.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.pager import Pager
from repro.storage.records import RecordFile, RecordPointer
from repro.xmltree import Document, Element, parse_xml, serialize_fragment


def copy_limited_depth(element: Element, depth_limit: int) -> str:
    """Serialize ``element``'s subtree truncated to ``depth_limit`` levels.

    A ``depth_limit <= 0`` means no truncation.  Text nodes within the
    kept levels are preserved (the value-extended index needs them).
    """
    if depth_limit <= 0:
        return serialize_fragment(element)
    parts: list[str] = []
    _write_limited(element, 1, depth_limit, parts)
    return "".join(parts)


def _write_limited(
    element: Element, depth: int, limit: int, parts: list[str]
) -> None:
    from repro.xmltree.serialize import escape_attribute, escape_text

    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in element.attributes.items()
    )
    children = element.children if depth < limit else []
    texts = list(element.text_children())
    if not children and not (depth >= limit and texts):
        parts.append(f"<{element.tag}{attrs}/>")
        return
    parts.append(f"<{element.tag}{attrs}>")
    if depth < limit:
        for child in element.children:
            if isinstance(child, Element):
                _write_limited(child, depth + 1, limit, parts)
            else:
                parts.append(escape_text(child.value))
    else:
        for text in texts:
            parts.append(escape_text(text.value))
    parts.append(f"</{element.tag}>")


class ClusteredStore:
    """Key-ordered copies of indexed units.

    Build-time contract: the index construction sorts its entries by
    feature key *before* calling :meth:`add_unit`, so appends arrive in
    key order and the record file's natural layout is the clustering.
    """

    def __init__(
        self,
        pager: Pager | None = None,
        cache_units: int = 256,
        preloaded_units: int = 0,
    ) -> None:
        self._pager = pager if pager is not None else Pager()
        self._records = RecordFile(self._pager)
        self._preloaded_units = preloaded_units
        self._cache_capacity = cache_units
        self._cache: "OrderedDict[RecordPointer, Document]" = OrderedDict()

    @property
    def pager(self) -> Pager:
        """The backing pager (exposed for I/O accounting)."""
        return self._pager

    @property
    def unit_count(self) -> int:
        """Number of copied units (including any loaded from disk)."""
        return self._preloaded_units + self._records.record_count

    def add_unit(self, element: Element, depth_limit: int = 0) -> RecordPointer:
        """Copy one indexed unit and return its pointer."""
        payload = copy_limited_depth(element, depth_limit).encode("utf-8")
        return self._records.append(payload)

    def get_unit_source(self, pointer: RecordPointer) -> str:
        """Raw serialized XML of a copied unit, without parsing.

        This is what parallel query refinement ships to worker
        processes — the stored record bytes are already the serialized
        form (mirrors :meth:`PrimaryXMLStore.get_source`).
        """
        return self._records.read(pointer).decode("utf-8")

    def get_unit(self, pointer: RecordPointer) -> Document:
        """Fetch (and parse, if not cached) a copied unit."""
        cached = self._cache.get(pointer)
        if cached is not None:
            self._cache.move_to_end(pointer)
            return cached
        document = parse_xml(self._records.read(pointer).decode("utf-8"))
        self._cache[pointer] = document
        self._cache.move_to_end(pointer)
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)
        return document

    def size_bytes(self) -> int:
        """Bytes consumed by the (redundant) copy pages."""
        return self._pager.size_bytes()

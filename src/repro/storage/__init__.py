"""Paged storage engine.

The paper's FIX prototype sits on Berkeley DB plus a native XML store;
here the whole stack is built from scratch:

* :class:`~repro.storage.pager.Pager` — fixed-size pages over a file (or
  in memory), with an LRU buffer pool and read/write counters.  The I/O
  counters are what the experiment harness reports as the
  implementation-independent I/O cost of clustered vs. unclustered
  access.
* :class:`~repro.storage.records.RecordFile` — slotted pages with
  overflow chaining for records larger than a page.
* :class:`~repro.storage.primary.PrimaryXMLStore` — the *primary storage*
  of Figure 3: documents serialized as records, addressed by
  :class:`~repro.storage.primary.NodePointer` (doc id + preorder id),
  which is the ``start_ptr`` flowing through Algorithm 1.
* :class:`~repro.storage.clustered.ClusteredStore` — the redundant,
  key-ordered copy of indexed units used by the clustered FIX index
  (Figure 4).
"""

from repro.storage.clustered import ClusteredStore
from repro.storage.pager import PAGE_SIZE, Pager, PagerStats
from repro.storage.primary import NodePointer, PrimaryXMLStore
from repro.storage.records import RecordFile, RecordPointer

__all__ = [
    "PAGE_SIZE",
    "ClusteredStore",
    "NodePointer",
    "Pager",
    "PagerStats",
    "PrimaryXMLStore",
    "RecordFile",
    "RecordPointer",
]

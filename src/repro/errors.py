"""Exception hierarchy for the FIX reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class XMLSyntaxError(ReproError):
    """Raised when the XML tokenizer or parser encounters malformed input.

    Attributes:
        position: byte offset into the input where the error was detected,
            or ``None`` if unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class QuerySyntaxError(ReproError):
    """Raised when a path expression cannot be parsed.

    Attributes:
        position: character offset into the expression, or ``None``.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class UnsupportedQueryError(ReproError):
    """Raised when a syntactically valid query is outside the supported
    fragment (e.g. an axis other than ``/`` and ``//``, or a KindTest)."""


class IndexCoverageError(ReproError):
    """Raised when a query is not covered by an index.

    The paper's query processor (Algorithm 2, line 1) must check that the
    index depth limit is at least the depth of the twig query; when the
    check fails the optimizer should fall back to a full scan rather than
    use the index, and this exception signals that situation.
    """


class StorageError(ReproError):
    """Base class for storage-engine failures (pager, records, stores)."""


class PageError(StorageError):
    """Raised for invalid page ids or corrupted page contents."""


class ShardError(PageError):
    """Raised when one shard of a sharded index fails during a
    scatter-gather operation.  Subclasses :class:`PageError` because the
    dominant cause is page-level damage inside a single shard; the
    message always names the failing shard so operators can repair or
    rebuild it without touching its siblings.

    Attributes:
        shard: the failing shard's number.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class RecordError(StorageError):
    """Raised for invalid record pointers or corrupted records."""


class BTreeError(ReproError):
    """Raised for internal B+tree inconsistencies (corrupt nodes, bad
    key encodings).  A user should never see this under normal operation;
    it indicates either on-disk corruption or a library bug."""


class BisimulationError(ReproError):
    """Raised when bisimulation-graph construction receives an ill-formed
    event stream (e.g. a close event with no matching open event)."""


class FeatureError(ReproError):
    """Raised when spectral feature extraction fails (e.g. a pattern whose
    matrix exceeds the configured size limit *and* fallback is disabled)."""


class PatternTooLargeError(FeatureError):
    """Raised when a depth-limited pattern unfolding exceeds a size cap.

    The paper handles over-large subpatterns (more than ~3000 edges) by
    skipping eigenvalue computation and indexing them under the artificial
    all-covering range (Section 6.1).  The index construction code catches
    this exception and applies that fallback; the exception is only
    user-visible when feature extraction is invoked directly.
    """

    def __init__(self, message: str, size: int | None = None) -> None:
        super().__init__(message)
        self.size = size

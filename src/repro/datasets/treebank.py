"""Treebank-like document: highly recursive, very deep, very selective.

The real Treebank (Penn Treebank parse trees encoded as XML) is the
paper's stress case: deeply recursive grammar structure whose F&B graph
has >300k vertices.  The generator expands a small probabilistic
phrase-structure grammar — S, NP, VP, PP and friends, plus the
``EMPTY`` wrapper elements the paper's Treebank queries start from
(``//EMPTY/S[VP]/NP``) — with recursion that regularly nests S inside
SBAR inside VP inside S, producing deep, rarely-repeating structures.
"""

from __future__ import annotations

import random

from repro.datasets.base import DatasetBundle, WordPool, scaled
from repro.xmltree import Document, Element

# Production rules: tag -> list of (child tag sequences, weight).  The
# special child "*leaf*" emits a masked-out token (real Treebank ships
# with the words elided, which is also why the paper treats it as pure
# structure).
_GRAMMAR: dict[str, list[tuple[tuple[str, ...], float]]] = {
    "S": [
        (("NP", "VP"), 0.5),
        (("NP", "VP", "PP"), 0.2),
        (("PP", "NP", "VP"), 0.1),
        (("S", "CC", "S"), 0.08),
        (("NP",), 0.07),
        (("VP",), 0.05),
    ],
    "NP": [
        (("DT", "NN"), 0.32),
        (("NP", "PP"), 0.22),
        (("NNP",), 0.14),
        (("PRP",), 0.1),
        (("DT", "JJ", "NN"), 0.12),
        (("NP", "SBAR"), 0.06),
        (("NP", "NP"), 0.04),
    ],
    "VP": [
        (("VBD", "NP"), 0.4),
        (("VBD", "NP", "PP"), 0.2),
        (("VBD", "SBAR"), 0.12),
        (("VBD",), 0.12),
        (("VBD", "PP"), 0.16),
    ],
    "PP": [
        (("IN", "NP"), 0.9),
        (("IN", "S"), 0.1),
    ],
    "SBAR": [
        (("IN", "S"), 0.6),
        (("WHNP", "S"), 0.4),
    ],
}

_TERMINALS = {"DT", "NN", "NNP", "PRP", "JJ", "VBD", "IN", "CC", "WHNP"}


def generate_treebank(scale: float = 1.0, seed: int = 42) -> DatasetBundle:
    """Generate the Treebank-like document.

    ``scale=1.0`` yields ~1,100 sentences (~20k elements) with depths
    regularly past 15 levels.
    """
    rng = random.Random(seed)
    words = WordPool(rng)
    root = Element("FILE")
    sentences = scaled(1100, scale)
    for _ in range(sentences):
        empty = root.add_element("EMPTY")
        empty.append(_expand("S", rng, words, depth=3, max_depth=16))
    document = Document(root)
    return DatasetBundle(
        name="treebank",
        documents=[document],
        depth_limit=6,
        description=(
            f"Treebank-like parse forest: {sentences} sentences, deeply "
            f"recursive (max depth {document.max_depth()})"
        ),
        seed=seed,
        scale=scale,
    )


def _expand(
    tag: str,
    rng: random.Random,
    words: WordPool,
    depth: int,
    max_depth: int,
) -> Element:
    element = Element(tag)
    if tag in _TERMINALS:
        element.add_text(words.word())
        return element
    productions = _GRAMMAR[tag]
    if depth >= max_depth:
        # Force a non-recursive expansion: pick the production whose
        # children are all terminals, if any; else emit a terminal child.
        for children, _ in productions:
            if all(child in _TERMINALS for child in children):
                for child in children:
                    element.append(_expand(child, rng, words, depth + 1, max_depth))
                return element
        element.add_element("NN").add_text(words.word())
        return element
    roll = rng.random()
    cumulative = 0.0
    chosen = productions[-1][0]
    for children, weight in productions:
        cumulative += weight
        if roll < cumulative:
            chosen = children
            break
    for child in chosen:
        element.append(_expand(child, rng, words, depth + 1, max_depth))
    return element

"""XBench TCMD-like collection: many small text-centric documents.

The real TCMD set (2,607 documents, 1-130 KB) models news-corpus
articles; its defining property for the FIX evaluation is that "the
document structures have small degree of variations, e.g., an article
element may or may not have a keywords subelement" — which is exactly
why structural pruning is weak there (Figure 5's TCMD bars).

Each generated document follows the schema the paper's TCMD queries
exercise::

    article
      prolog
        title, dateline?, authors(author+(name, contact(phone?, email?))),
        keywords?(keyword+), genre?
      body
        abstract?, section+(title?, p+)
      epilog?
        acknoledgements?          # [sic] — the paper's query spells it so
        references?(a_id+)

Optional parts flip per document, giving a handful of distinct shapes
over the whole collection.
"""

from __future__ import annotations

import random

from repro.datasets.base import DatasetBundle, WordPool, scaled
from repro.xmltree import Document, Element


def generate_xbench_tcmd(scale: float = 1.0, seed: int = 42) -> DatasetBundle:
    """Generate the TCMD-like collection.

    ``scale=1.0`` yields 260 documents (a tenth of the original count,
    with the same shape distribution).
    """
    rng = random.Random(seed)
    words = WordPool(rng)
    count = scaled(260, scale)
    documents = [
        Document(_article(rng, words), doc_id=i) for i in range(count)
    ]
    return DatasetBundle(
        name="xbench",
        documents=documents,
        depth_limit=0,
        description=(
            f"XBench TCMD-like collection: {count} small text-centric "
            "article documents with low structural variation"
        ),
        seed=seed,
        scale=scale,
    )


def _article(rng: random.Random, words: WordPool) -> Element:
    article = Element("article")
    article.append(_prolog(rng, words))
    article.append(_body(rng, words))
    if rng.random() < 0.7:
        article.append(_epilog(rng, words))
    return article


def _prolog(rng: random.Random, words: WordPool) -> Element:
    prolog = Element("prolog")
    prolog.add_element("title").add_text(words.sentence(3, 8))
    if rng.random() < 0.5:
        prolog.add_element("dateline").add_text(words.year(1996, 2004))
    authors = prolog.add_element("authors")
    for _ in range(rng.randint(1, 4)):
        author = authors.add_element("author")
        author.add_element("name").add_text(words.name())
        contact = author.add_element("contact")
        if rng.random() < 0.6:
            contact.add_element("phone").add_text(
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
            )
        if rng.random() < 0.8:
            contact.add_element("email").add_text(f"{words.word()}@example.org")
    if rng.random() < 0.55:
        keywords = prolog.add_element("keywords")
        for _ in range(rng.randint(1, 5)):
            keywords.add_element("keyword").add_text(words.word())
    if rng.random() < 0.3:
        prolog.add_element("genre").add_text(words.word())
    return prolog


def _body(rng: random.Random, words: WordPool) -> Element:
    body = Element("body")
    if rng.random() < 0.4:
        body.add_element("abstract").add_text(words.sentence(8, 20))
    for _ in range(rng.randint(1, 5)):
        section = body.add_element("section")
        if rng.random() < 0.6:
            section.add_element("title").add_text(words.sentence(2, 5))
        for _ in range(rng.randint(1, 4)):
            section.add_element("p").add_text(words.sentence(10, 30))
    return body


def _epilog(rng: random.Random, words: WordPool) -> Element:
    epilog = Element("epilog")
    if rng.random() < 0.6:
        epilog.add_element("acknoledgements").add_text(words.sentence(4, 10))
    if rng.random() < 0.7:
        references = epilog.add_element("references")
        for _ in range(rng.randint(1, 6)):
            references.add_element("a_id").add_text(str(rng.randint(1, 99999)))
    return epilog

"""Synthetic data sets (Section 6.1 substitutes).

The paper evaluates on XBench TCMD, DBLP, XMark, and Treebank.  None of
those files ship here (no network, and Treebank is licensed), so each
generator reproduces the *structural character* the paper relies on —
the properties its Section 6.1 explicitly calls out:

======== ================================================================
XBench   many small text-centric documents, small structural variation
DBLP     one large, very regular, shallow document; patterns repeat a lot
         (low per-pattern selectivity); real-looking values
XMark    structure-rich, fairly deep, very flat (bushy) — low repetition
Treebank highly recursive, very deep, highly selective structures
======== ================================================================

All generators are deterministic under a seed, scale with a single size
knob, and return parsed :class:`~repro.xmltree.model.Document` objects;
:func:`load_dataset` is the registry the benchmarks drive.
"""

from repro.datasets.base import DatasetBundle, WordPool, store_of
from repro.datasets.dblp import generate_dblp
from repro.datasets.queries import RandomQueryGenerator
from repro.datasets.treebank import generate_treebank
from repro.datasets.xbench import generate_xbench_tcmd
from repro.datasets.xmark import generate_xmark

_GENERATORS = {
    "xbench": generate_xbench_tcmd,
    "dblp": generate_dblp,
    "xmark": generate_xmark,
    "treebank": generate_treebank,
}


def dataset_names() -> list[str]:
    """The four data-set names, in the paper's Table 1 order."""
    return ["xbench", "dblp", "xmark", "treebank"]


def load_dataset(name: str, scale: float = 1.0, seed: int = 42) -> DatasetBundle:
    """Generate a data set by name.

    Args:
        name: one of :func:`dataset_names`.
        scale: size multiplier; 1.0 is the benchmark default (tens of
            thousands of elements — laptop-sized, not the paper's full
            multi-million-element originals).
        seed: RNG seed; equal seeds give identical bytes.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(_GENERATORS)}"
        ) from None
    return generator(scale=scale, seed=seed)


__all__ = [
    "DatasetBundle",
    "RandomQueryGenerator",
    "WordPool",
    "dataset_names",
    "generate_dblp",
    "generate_treebank",
    "generate_xbench_tcmd",
    "generate_xmark",
    "load_dataset",
    "store_of",
]

"""DBLP-like single large document: regular, shallow, highly repetitive.

The paper's characterization (Section 6.1): "The structure in DBLP is
very regular and the tree is shallow, so the same structure is repeated
many times, making each structural pattern less selective."  It is also
the one data set with real values, which is why Figure 7's value-index
experiments run on it.

Schema (driven by the paper's DBLP queries)::

    dblp
      (article | inproceedings | proceedings | book)*
        article:        author+, title(i?, sub?, sup?), year, number?, url?, ee?
        inproceedings:  author+, title(i?, sub?, sup?), year, booktitle, url?, ee?, pages?
        proceedings:    editor*, title(i?, sub?, sup?), booktitle?, year,
                        publisher, isbn?, url?
        book:           author+, title, year, publisher, isbn?

``title`` optionally carries ``i`` / ``sub`` / ``sup`` markup children —
the paper's hi-selectivity DBLP queries (``//inproceedings[url]/
title[sub][i]``) live exactly on those rare combinations.
"""

from __future__ import annotations

import random

from repro.datasets.base import DatasetBundle, WordPool, scaled
from repro.xmltree import Document, Element

PUBLISHERS = ["Springer", "ACM", "IEEE", "Elsevier", "Morgan Kaufmann", "MIT Press"]


def generate_dblp(scale: float = 1.0, seed: int = 42) -> DatasetBundle:
    """Generate the DBLP-like document.

    ``scale=1.0`` yields ~3,500 publication records (~25k elements — the
    real DBLP's 4M elements shrunk to laptop size with the same mix).
    """
    rng = random.Random(seed)
    words = WordPool(rng)
    dblp = Element("dblp")
    publications = scaled(3500, scale)
    makers = [
        (_article, 0.35),
        (_inproceedings, 0.40),
        (_proceedings, 0.15),
        (_book, 0.10),
    ]
    for _ in range(publications):
        roll = rng.random()
        cumulative = 0.0
        for maker, weight in makers:
            cumulative += weight
            if roll < cumulative:
                dblp.append(maker(rng, words))
                break
    document = Document(dblp)
    return DatasetBundle(
        name="dblp",
        documents=[document],
        depth_limit=6,
        description=(
            f"DBLP-like single document: {publications} publication "
            "records, regular and shallow, with real-looking values"
        ),
        seed=seed,
        scale=scale,
    )


def _title(rng: random.Random, words: WordPool, markup_rate: float) -> Element:
    title = Element("title")
    title.add_text(words.sentence(3, 9))
    # Markup children are individually uncommon and jointly rare, which
    # is what makes [sub][i]-style predicates highly selective.
    if rng.random() < markup_rate:
        title.add_element("i").add_text(words.word())
    if rng.random() < markup_rate * 0.5:
        title.add_element("sub").add_text(words.word())
    if rng.random() < markup_rate * 0.4:
        title.add_element("sup").add_text(words.word())
    return title


def _authors(parent: Element, rng: random.Random, words: WordPool) -> None:
    for _ in range(rng.randint(1, 3)):
        parent.add_element("author").add_text(words.name())


def _article(rng: random.Random, words: WordPool) -> Element:
    article = Element("article")
    _authors(article, rng, words)
    article.append(_title(rng, words, markup_rate=0.08))
    article.add_element("year").add_text(words.year())
    if rng.random() < 0.5:
        article.add_element("number").add_text(str(rng.randint(1, 12)))
    if rng.random() < 0.6:
        article.add_element("url").add_text(f"db/journals/{words.word()}")
    if rng.random() < 0.5:
        article.add_element("ee").add_text(f"https://doi.org/{rng.randint(10, 99)}")
    return article


def _inproceedings(rng: random.Random, words: WordPool) -> Element:
    paper = Element("inproceedings")
    _authors(paper, rng, words)
    paper.append(_title(rng, words, markup_rate=0.10))
    paper.add_element("year").add_text(words.year())
    paper.add_element("booktitle").add_text(words.word().upper())
    if rng.random() < 0.7:
        paper.add_element("url").add_text(f"db/conf/{words.word()}")
    if rng.random() < 0.4:
        paper.add_element("ee").add_text(f"https://doi.org/{rng.randint(10, 99)}")
    if rng.random() < 0.6:
        start = rng.randint(1, 500)
        paper.add_element("pages").add_text(f"{start}-{start + rng.randint(5, 20)}")
    return paper


def _proceedings(rng: random.Random, words: WordPool) -> Element:
    volume = Element("proceedings")
    for _ in range(rng.randint(0, 3)):
        volume.add_element("editor").add_text(words.name())
    volume.append(_title(rng, words, markup_rate=0.12))
    if rng.random() < 0.8:
        volume.add_element("booktitle").add_text(words.word().upper())
    volume.add_element("year").add_text(words.year())
    volume.add_element("publisher").add_text(rng.choice(PUBLISHERS))
    if rng.random() < 0.5:
        volume.add_element("isbn").add_text(
            f"{rng.randint(0, 9)}-{rng.randint(100, 999)}-{rng.randint(10000, 99999)}"
        )
    if rng.random() < 0.5:
        volume.add_element("url").add_text(f"db/conf/{words.word()}")
    return volume


def _book(rng: random.Random, words: WordPool) -> Element:
    book = Element("book")
    _authors(book, rng, words)
    book.append(_title(rng, words, markup_rate=0.05))
    book.add_element("year").add_text(words.year())
    book.add_element("publisher").add_text(rng.choice(PUBLISHERS))
    if rng.random() < 0.6:
        book.add_element("isbn").add_text(
            f"{rng.randint(0, 9)}-{rng.randint(100, 999)}-{rng.randint(10000, 99999)}"
        )
    return book

"""XMark-like auction-site document: structure-rich, fairly deep, bushy.

The paper's characterization: "The XMark data set is structure-rich,
fairly deep and very flat (fan-out of the bisimulation graph is large),
therefore, the structures are less repetitive" — structural pruning
thrives there (pp ≈ sel in Table 2 / Figure 5).

The generated schema follows the fragments the paper's XMark queries
touch::

    site
      regions(africa|asia|australia|europe|namerica|samerica)
        item*(location, quantity, name, payment?, shipping?,
              description(text+ | parlist), mailbox?(mail*(from, to?, date,
              text)))
      categories(category*(name, description))
      people(person*(name, emailaddress, phone?, address?(street, city,
             country), watches?(watch*)))
      open_auctions(open_auction*(initial, bidder*(date, increase),
             current, seller?, annotation(author, description, happiness?),
             quantity, type))
      closed_auctions(closed_auction*(seller, buyer, price, date,
             annotation(author, description)))

``description`` recurses through ``parlist/listitem`` (bounded depth) and
mail ``text`` carries nested inline markup (``emph``, ``bold``,
``keyword``) — the structures behind queries like
``//item[name]/mailbox/mail[to]/text[bold]/emph/bold``.
"""

from __future__ import annotations

import random

from repro.datasets.base import DatasetBundle, WordPool, scaled
from repro.xmltree import Document, Element

_REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]


def generate_xmark(scale: float = 1.0, seed: int = 42) -> DatasetBundle:
    """Generate the XMark-like document.

    ``scale=1.0`` yields roughly 20k elements (the original XMark factor
    1 has 1.67M; the shape — not the size — is what the metrics need).
    """
    rng = random.Random(seed)
    words = WordPool(rng)
    site = Element("site")

    regions = site.add_element("regions")
    items_per_region = scaled(60, scale)
    for region_name in _REGIONS:
        region = regions.add_element(region_name)
        for _ in range(rng.randint(items_per_region // 2, items_per_region)):
            region.append(_item(rng, words))

    categories = site.add_element("categories")
    for _ in range(scaled(45, scale)):
        category = categories.add_element("category")
        category.add_element("name").add_text(words.word())
        category.append(_description(rng, words))

    people = site.add_element("people")
    for _ in range(scaled(320, scale)):
        people.append(_person(rng, words))

    open_auctions = site.add_element("open_auctions")
    for _ in range(scaled(220, scale)):
        open_auctions.append(_open_auction(rng, words))

    closed_auctions = site.add_element("closed_auctions")
    for _ in range(scaled(160, scale)):
        closed_auctions.append(_closed_auction(rng, words))

    document = Document(site)
    return DatasetBundle(
        name="xmark",
        documents=[document],
        depth_limit=6,
        description=(
            "XMark-like auction document: structure-rich, deep, bushy "
            f"({document.element_count()} elements)"
        ),
        seed=seed,
        scale=scale,
    )


def _item(rng: random.Random, words: WordPool) -> Element:
    item = Element("item")
    item.add_element("location").add_text(words.word())
    item.add_element("quantity").add_text(str(rng.randint(1, 10)))
    item.add_element("name").add_text(words.sentence(1, 3))
    if rng.random() < 0.7:
        item.add_element("payment").add_text(
            rng.choice(["Creditcard", "Money order", "Cash"])
        )
    if rng.random() < 0.6:
        item.add_element("shipping").add_text(
            rng.choice(["Will ship internationally", "Buyer pays"])
        )
    item.append(_description(rng, words))
    if rng.random() < 0.75:
        mailbox = item.add_element("mailbox")
        for _ in range(rng.randint(0, 3)):
            mailbox.append(_mail(rng, words))
    return item


def _description(rng: random.Random, words: WordPool) -> Element:
    description = Element("description")
    if rng.random() < 0.45:
        description.append(_parlist(rng, words, depth=1))
    else:
        for _ in range(rng.randint(1, 2)):
            description.add_element("text").add_text(words.sentence(6, 16))
    return description


def _parlist(rng: random.Random, words: WordPool, depth: int) -> Element:
    parlist = Element("parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = parlist.add_element("listitem")
        if depth < 3 and rng.random() < 0.3:
            listitem.append(_parlist(rng, words, depth + 1))
        else:
            listitem.add_element("text").add_text(words.sentence(4, 10))
    return parlist


def _mail(rng: random.Random, words: WordPool) -> Element:
    mail = Element("mail")
    mail.add_element("from").add_text(words.name())
    if rng.random() < 0.8:
        mail.add_element("to").add_text(words.name())
    mail.add_element("date").add_text(
        f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{words.year()}"
    )
    mail.append(_rich_text(rng, words, depth=1))
    return mail


def _rich_text(rng: random.Random, words: WordPool, depth: int) -> Element:
    """A ``text`` element with nested inline markup: emph / bold /
    keyword, each optionally containing more markup (bounded depth)."""
    text = Element("text")
    text.add_text(words.sentence(3, 8))
    if depth <= 3:
        for tag, chance in (("emph", 0.5), ("bold", 0.4), ("keyword", 0.3)):
            if rng.random() < chance:
                inline = text.add_element(tag)
                inline.add_text(words.words(rng.randint(1, 3)))
                # Nested markup, e.g. text/emph/keyword or text/bold/emph/bold.
                if rng.random() < 0.45:
                    nested_tag = rng.choice(["emph", "bold", "keyword"])
                    nested = inline.add_element(nested_tag)
                    nested.add_text(words.word())
                    if depth + 2 <= 3 and rng.random() < 0.3:
                        nested.add_element(
                            rng.choice(["emph", "bold", "keyword"])
                        ).add_text(words.word())
    return text


def _person(rng: random.Random, words: WordPool) -> Element:
    person = Element("person")
    person.add_element("name").add_text(words.name())
    person.add_element("emailaddress").add_text(f"{words.word()}@example.org")
    if rng.random() < 0.5:
        person.add_element("phone").add_text(f"+{rng.randint(1, 99)} {rng.randint(100, 999)}")
    if rng.random() < 0.4:
        address = person.add_element("address")
        address.add_element("street").add_text(words.sentence(2, 3))
        address.add_element("city").add_text(words.word().capitalize())
        address.add_element("country").add_text(words.word().capitalize())
    if rng.random() < 0.3:
        watches = person.add_element("watches")
        for _ in range(rng.randint(1, 3)):
            watches.add_element("watch").add_text(str(rng.randint(1, 999)))
    return person


def _open_auction(rng: random.Random, words: WordPool) -> Element:
    auction = Element("open_auction")
    auction.add_element("initial").add_text(f"{rng.uniform(1, 200):.2f}")
    for _ in range(rng.randint(0, 4)):
        bidder = auction.add_element("bidder")
        bidder.add_element("date").add_text(f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}")
        bidder.add_element("increase").add_text(f"{rng.uniform(1, 50):.2f}")
    auction.add_element("current").add_text(f"{rng.uniform(1, 400):.2f}")
    if rng.random() < 0.7:
        auction.add_element("seller").add_text(f"person{rng.randint(0, 999)}")
    auction.append(_annotation(rng, words, with_happiness=True))
    auction.add_element("quantity").add_text(str(rng.randint(1, 5)))
    auction.add_element("type").add_text(rng.choice(["Regular", "Featured"]))
    return auction


def _closed_auction(rng: random.Random, words: WordPool) -> Element:
    auction = Element("closed_auction")
    auction.add_element("seller").add_text(f"person{rng.randint(0, 999)}")
    auction.add_element("buyer").add_text(f"person{rng.randint(0, 999)}")
    auction.add_element("price").add_text(f"{rng.uniform(1, 400):.2f}")
    auction.add_element("date").add_text(f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}")
    auction.append(_annotation(rng, words, with_happiness=False))
    return auction


def _annotation(
    rng: random.Random, words: WordPool, with_happiness: bool
) -> Element:
    annotation = Element("annotation")
    annotation.add_element("author").add_text(words.name())
    annotation.append(_description(rng, words))
    if with_happiness and rng.random() < 0.6:
        annotation.add_element("happiness").add_text(str(rng.randint(1, 10)))
    return annotation

"""Random twig-query generation (Section 6.2's 1000-query batches).

Queries are sampled *from the data*: a random element anchors a random
upward walk (giving a path that certainly occurs at least once), child
labels of on-path elements become optional branching predicates, and a
configurable fraction of queries get one label mutated so the batch also
contains misses.  The paper then drops queries of selectivity exactly 0
or 1; :meth:`RandomQueryGenerator.batch` applies the same filter using
the ground-truth matcher.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery
from repro.xmltree import Document, Element


@dataclass(frozen=True, slots=True)
class GeneratedQuery:
    """A generated query plus the generator's bookkeeping."""

    twig: TwigQuery
    text: str
    mutated: bool


class RandomQueryGenerator:
    """Draw random twig queries from a document collection.

    Args:
        documents: the data to sample from.
        seed: RNG seed.
        max_path_length: maximum main-path steps.
        max_predicates: maximum branching predicates added.
        mutation_rate: fraction of queries that get one label replaced
            with a fresh one (guaranteed misses exercise pruning).
    """

    def __init__(
        self,
        documents: list[Document],
        seed: int = 42,
        max_path_length: int = 4,
        max_predicates: int = 2,
        mutation_rate: float = 0.1,
    ) -> None:
        if not documents:
            raise ValueError("need at least one document to sample queries from")
        self._documents = documents
        self._rng = random.Random(seed)
        self._max_path_length = max(1, max_path_length)
        self._max_predicates = max(0, max_predicates)
        self._mutation_rate = mutation_rate
        # Flat element pool for uniform sampling.
        self._pool: list[Element] = [
            element
            for document in documents
            for element in document.elements()
        ]
        self._labels = sorted({element.tag for element in self._pool})

    # ------------------------------------------------------------------ #
    # Single-query generation
    # ------------------------------------------------------------------ #

    def generate(self) -> GeneratedQuery:
        """Draw one random twig query (always parseable, always a twig)."""
        anchor = self._rng.choice(self._pool)
        length = self._rng.randint(1, self._max_path_length)
        # Walk upward from the anchor to get a guaranteed-occurring path.
        path: list[Element] = [anchor]
        while len(path) < length and path[-1].parent is not None:
            path.append(path[-1].parent)
        path.reverse()  # now top-down

        root = QueryNode(path[0].tag)
        chain = [root]
        for element in path[1:]:
            node = QueryNode(element.tag)
            chain[-1].edges.append((Axis.CHILD, node))
            chain.append(node)

        # Sprinkle predicates: child labels of on-path elements.
        budget = self._rng.randint(0, self._max_predicates)
        for _ in range(budget):
            position = self._rng.randrange(len(path))
            child_labels = [c.tag for c in path[position].child_elements()]
            if not child_labels:
                continue
            label = self._rng.choice(child_labels)
            on_path = [
                child.label
                for axis, child in chain[position].edges
                if axis is Axis.CHILD
            ]
            if label in on_path:
                continue
            chain[position].edges.append((Axis.CHILD, QueryNode(label)))

        mutated = False
        if self._rng.random() < self._mutation_rate:
            mutated = self._mutate(root)

        twig = TwigQuery(root, Axis.DESCENDANT)
        text = _render(twig)
        twig.source = text
        return GeneratedQuery(twig, text, mutated)

    def _mutate(self, root: QueryNode) -> bool:
        """Replace one random node's label with a random data label."""
        nodes: list[QueryNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(child for _, child in node.edges)
        victim = self._rng.choice(nodes)
        replacement = self._rng.choice(self._labels)
        if replacement == victim.label:
            return False
        victim.label = replacement
        return True

    # ------------------------------------------------------------------ #
    # Batches with the paper's selectivity filter
    # ------------------------------------------------------------------ #

    def batch(
        self,
        count: int,
        keep: "callable | None" = None,
        max_attempts_factor: int = 20,
    ) -> list[GeneratedQuery]:
        """Generate ``count`` queries, keeping only those ``keep`` accepts.

        ``keep`` receives the :class:`GeneratedQuery` and returns a bool;
        the paper's filter (selectivity not 0 and not 1) is applied by
        the caller via this hook, since selectivity needs the index.
        """
        kept: list[GeneratedQuery] = []
        attempts = 0
        limit = count * max_attempts_factor
        while len(kept) < count and attempts < limit:
            attempts += 1
            candidate = self.generate()
            if keep is None or keep(candidate):
                kept.append(candidate)
        return kept


def _render(twig: TwigQuery) -> str:
    """Render a generated twig back to query text."""
    parts: list[str] = []

    def node_text(node: QueryNode) -> str:
        text = node.label
        branches = [child for _, child in node.edges]
        if not branches:
            return text
        # Last child continues the main path; earlier ones are predicates.
        *predicates, continuation = branches
        for predicate in predicates:
            text += f"[{node_text(predicate)}]"
        return f"{text}/{node_text(continuation)}"

    parts.append("//" if twig.leading_axis is Axis.DESCENDANT else "/")
    parts.append(node_text(twig.root))
    return "".join(parts)

"""Shared machinery for the synthetic data-set generators."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, serialize_fragment

#: A small English-ish vocabulary for text-centric content.  Real words
#: keep serialized sizes and value distributions plausible without
#: shipping any corpus.
_VOCABULARY = (
    "data index query tree graph node edge label path pattern match "
    "system database structure document element feature spectral value "
    "storage search candidate result join scan page record stream event "
    "model engine prune refine depth branch twig order key range hash "
    "cluster vector matrix theory proof bound cost time space plan"
).split()


class WordPool:
    """Deterministic word and sentence supplier."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def word(self) -> str:
        return self._rng.choice(_VOCABULARY)

    def words(self, count: int) -> str:
        return " ".join(self.word() for _ in range(count))

    def sentence(self, lo: int = 4, hi: int = 12) -> str:
        return self.words(self._rng.randint(lo, hi))

    def name(self) -> str:
        first = self.word().capitalize()
        last = self.word().capitalize()
        return f"{first} {last}"

    def year(self, lo: int = 1990, hi: int = 2005) -> str:
        return str(self._rng.randint(lo, hi))


@dataclass
class DatasetBundle:
    """A generated data set plus its summary statistics."""

    name: str
    documents: list[Document]
    #: suggested index depth limit (paper: 0 for XBench, 6 otherwise).
    depth_limit: int
    description: str = ""
    seed: int = 0
    scale: float = 1.0

    _size_bytes: int | None = field(default=None, repr=False)

    def element_count(self) -> int:
        """Total elements across all documents."""
        return sum(document.element_count() for document in self.documents)

    def size_bytes(self) -> int:
        """Serialized size of the whole data set (cached)."""
        if self._size_bytes is None:
            self._size_bytes = sum(
                len(serialize_fragment(document.root).encode("utf-8"))
                for document in self.documents
            )
        return self._size_bytes

    def max_depth(self) -> int:
        """Deepest element across all documents."""
        return max(document.max_depth() for document in self.documents)

    def store(self) -> PrimaryXMLStore:
        """Load the documents into a fresh primary store."""
        return store_of(self.documents)


def store_of(documents: list[Document]) -> PrimaryXMLStore:
    """Load ``documents`` into a fresh :class:`PrimaryXMLStore`."""
    store = PrimaryXMLStore()
    for document in documents:
        store.add_document(document)
    return store


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    """``base * scale`` rounded, floored at ``minimum``."""
    return max(minimum, round(base * scale))

"""NoK-style navigational twig evaluation.

The NoK processor the paper pairs FIX with ([32] in the paper) evaluates
a twig by navigating the document in order, matching the pattern tree
against the node being visited.  This implementation follows that shape:

* a document-order traversal proposes every element whose tag equals the
  query root's NameTest as a binding;
* each proposal is verified by navigating only the element's subtree
  (child edges step down one level, descendant edges walk the subtree),
  with per-document memoization so overlapping verifications — e.g. in
  recursive data — are not repeated;
* counters record elements visited, so benches can report work done
  independent of wall time.

The same verifier doubles as FIX's *refinement* operator: for an index
candidate the engine verifies the leading-axis-rewritten query rooted at
exactly that element (Algorithm 2, lines 7-12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery
from repro.storage.primary import NodePointer, PrimaryXMLStore
from repro.xmltree.model import Document, Element


@dataclass
class EngineStats:
    """Work counters (monotonic)."""

    elements_scanned: int = 0
    verifications: int = 0
    documents_opened: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            self.elements_scanned, self.verifications, self.documents_opened
        )

    def delta(self, before: "EngineStats") -> "EngineStats":
        return EngineStats(
            self.elements_scanned - before.elements_scanned,
            self.verifications - before.verifications,
            self.documents_opened - before.documents_opened,
        )


class NavigationalEngine:
    """Navigational twig matcher over a :class:`PrimaryXMLStore`."""

    def __init__(self, store: PrimaryXMLStore) -> None:
        self._store = store
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # Full evaluation (the no-index baseline)
    # ------------------------------------------------------------------ #

    def evaluate(self, twig: TwigQuery) -> list[NodePointer]:
        """Evaluate over every stored document; returns root bindings."""
        results: list[NodePointer] = []
        for doc_id in self._store.doc_ids():
            document = self._store.get_document(doc_id)
            self.stats.documents_opened += 1
            for element in self.evaluate_document(twig, document):
                results.append(NodePointer(doc_id, element.node_id))
        return results

    def evaluate_document(
        self, twig: TwigQuery, document: Document
    ) -> list[Element]:
        """Root bindings of ``twig`` within one document, in order."""
        memo: dict[tuple[int, int], bool] = {}
        if twig.leading_axis is Axis.CHILD:
            candidates: list[Element] = [document.root]
        else:
            candidates = []
            for element in document.elements():
                self.stats.elements_scanned += 1
                if element.tag == twig.root.label:
                    candidates.append(element)
        return [
            element
            for element in candidates
            if self._verify(twig.root, element, memo)
        ]

    # ------------------------------------------------------------------ #
    # Refinement (Algorithm 2's second phase)
    # ------------------------------------------------------------------ #

    def refine(self, twig: TwigQuery, element: Element) -> bool:
        """Does the (already leading-axis-rewritten) twig match with its
        root bound to ``element``?"""
        return self._verify(twig.root, element, {})

    def refine_pointer(self, twig: TwigQuery, pointer: NodePointer) -> bool:
        """Refinement through an unclustered-index pointer: resolve into
        primary storage, then verify."""
        element = self._store.resolve(pointer)
        self.stats.documents_opened += 1
        return self.refine(twig, element)

    def refine_group(
        self, twig: TwigQuery, document: Document, node_ids: list[int]
    ) -> list[bool]:
        """Refine several candidates of one already-loaded document.

        The verification memo is shared across the whole group (it is
        keyed by (query node, element), so overlapping subtrees — e.g.
        nested candidates in recursive data — are verified once), which
        is the point of grouping refinement by document.
        """
        memo: dict[tuple[int, int], bool] = {}
        self.stats.documents_opened += 1
        return [
            self._verify(twig.root, document.element_at(node_id), memo)
            for node_id in node_ids
        ]

    # ------------------------------------------------------------------ #
    # Verification core
    # ------------------------------------------------------------------ #

    def _verify(
        self,
        node: QueryNode,
        element: Element,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        key = (id(node), element.node_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        self.stats.verifications += 1
        result = self._verify_uncached(node, element, memo)
        memo[key] = result
        return result

    def _verify_uncached(
        self,
        node: QueryNode,
        element: Element,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if node.label != element.tag:
            return False
        if node.value is not None and not any(
            text.value == node.value for text in element.text_children()
        ):
            return False
        for axis, child in node.edges:
            if axis is Axis.CHILD:
                hit = False
                for candidate in element.child_elements():
                    self.stats.elements_scanned += 1
                    if self._verify(child, candidate, memo):
                        hit = True
                        break
            else:
                hit = self._verify_descendant(child, element, memo)
            if not hit:
                return False
        return True

    def _verify_descendant(
        self,
        node: QueryNode,
        element: Element,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        stack = list(element.child_elements())
        while stack:
            candidate = stack.pop()
            self.stats.elements_scanned += 1
            if self._verify(node, candidate, memo):
                return True
            stack.extend(candidate.child_elements())
        return False

"""Query evaluation engines.

FIX is a *pruning* index: it needs a refinement processor to validate
candidates, and it is benchmarked against full evaluators running with
no index support (Figure 6).  This package provides:

* :class:`~repro.engine.navigational.NavigationalEngine` — a NoK-style
  navigational twig matcher.  Used (a) standalone over the whole primary
  store as the no-index baseline, and (b) as the refinement operator run
  on candidates the FIX index returns.
* :class:`~repro.engine.structural_join.StructuralJoinEngine` — the
  classic region-encoding structural-join evaluator, the "join-based"
  operator family the paper cites; a second baseline and an alternative
  refinement backend.

Both engines answer the same question — which elements can the query
root bind to — so their outputs are directly comparable to the ground
truth in :mod:`repro.query.match` (and are tested against it).
"""

from repro.engine.navigational import EngineStats, NavigationalEngine
from repro.engine.structural_join import StructuralJoinEngine

__all__ = ["EngineStats", "NavigationalEngine", "StructuralJoinEngine"]

"""Region-encoding structural-join twig evaluation.

The join-based operator family ([3], [7] in the paper) evaluates twigs
over per-label element lists carrying ``(start, end, level)`` region
encodings.  This engine computes, bottom-up over the query tree, the set
of elements that can bind each query node, using sorted-list semi-joins:

* descendant edge: parent survives if some element of the child set has
  ``parent.start < child.start <= parent.end``;
* child edge: additionally ``child.level == parent.level + 1``.

Both tests run on start-sorted arrays with binary search, so a semi-join
costs ``O((|P| + |C|) log |C|)`` rather than the nested-loop product.
The engine serves as the second no-index baseline and as an alternative
refinement backend.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery
from repro.storage.primary import NodePointer, PrimaryXMLStore
from repro.xmltree.model import Document, Element


@dataclass(frozen=True, slots=True)
class _Region:
    start: int
    end: int
    level: int


class _LabelLists:
    """Per-document inverted lists: label -> start-sorted regions, plus a
    value map for text-equality predicates."""

    def __init__(self, document: Document) -> None:
        self.by_label: dict[str, list[_Region]] = {}
        self.values: dict[int, set[str]] = {}
        for element in document.elements():
            region = _Region(element.node_id, element.end, element.level)
            self.by_label.setdefault(element.tag, []).append(region)
            texts = {text.value for text in element.text_children()}
            if texts:
                self.values[element.node_id] = texts
        # Documents enumerate elements in preorder, so lists are already
        # start-sorted; assert cheaply in debug runs.
        for regions in self.by_label.values():
            assert all(
                regions[i].start < regions[i + 1].start
                for i in range(len(regions) - 1)
            )

    def regions(self, label: str) -> list[_Region]:
        return self.by_label.get(label, [])


class _SubtreeLabelLists(_LabelLists):
    """Inverted lists restricted to one element's subtree (used by the
    refinement interface, where the binding scope is a candidate unit)."""

    def __init__(self, root: Element) -> None:  # noqa: D401 - see base
        self.by_label = {}
        self.values = {}
        for element in root.iter():
            region = _Region(element.node_id, element.end, element.level)
            self.by_label.setdefault(element.tag, []).append(region)
            texts = {text.value for text in element.text_children()}
            if texts:
                self.values[element.node_id] = texts


class StructuralJoinEngine:
    """Structural-join twig matcher over a :class:`PrimaryXMLStore`."""

    def __init__(self, store: PrimaryXMLStore) -> None:
        self._store = store
        # Keyed by object identity (documents from different sources can
        # share doc_id 0, e.g. clustered copy units); the document is
        # kept in the value to anchor the id.
        self._lists_cache: dict[int, tuple[Document, _LabelLists]] = {}
        #: semi-join invocations performed (work counter for benches).
        self.joins_performed = 0

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, twig: TwigQuery) -> list[NodePointer]:
        """Evaluate over every stored document; returns root bindings."""
        results: list[NodePointer] = []
        for doc_id in self._store.doc_ids():
            document = self._store.get_document(doc_id)
            for region in self.evaluate_document(twig, document):
                results.append(NodePointer(doc_id, region.start))
        return results

    def evaluate_document(
        self, twig: TwigQuery, document: Document
    ) -> list[_Region]:
        """Root bindings of ``twig`` within one document (as regions)."""
        lists = self._lists_for(document)
        bindings = self._bindings(twig.root, lists)
        if twig.leading_axis is Axis.CHILD:
            bindings = [region for region in bindings if region.start == 0]
        return bindings

    def evaluate_elements(
        self, twig: TwigQuery, document: Document
    ) -> list[Element]:
        """Like :meth:`evaluate_document` but resolves to elements."""
        return [
            document.element_at(region.start)
            for region in self.evaluate_document(twig, document)
        ]

    # ------------------------------------------------------------------ #
    # Refinement interface (same contract as NavigationalEngine)
    # ------------------------------------------------------------------ #

    def refine(self, twig: TwigQuery, element: Element) -> bool:
        """Does the twig match with its root bound to ``element``?

        Runs the bottom-up semi-joins over inverted lists built for the
        element's *subtree* only, then checks that the subtree root is a
        root binding — the same contract as the navigational refiner,
        with join-based mechanics.
        """
        lists = _SubtreeLabelLists(element)
        bindings = self._bindings(twig.root, lists)
        return any(region.start == element.node_id for region in bindings)

    def refine_pointer(self, twig: TwigQuery, pointer: NodePointer) -> bool:
        """Refinement through an unclustered-index pointer."""
        return self.refine(twig, self._store.resolve(pointer))

    def refine_group(
        self, twig: TwigQuery, document: Document, node_ids: list[int]
    ) -> list[bool]:
        """Refine several candidates of one already-loaded document.

        One bottom-up semi-join pass over the whole document's inverted
        lists answers every candidate at once: the region-containment
        predicate already confines matches to each binding's subtree, so
        membership in the document-wide root-binding set is equivalent
        to the per-subtree :meth:`refine` result.
        """
        lists = self._lists_for(document)
        bindings = {region.start for region in self._bindings(twig.root, lists)}
        return [node_id in bindings for node_id in node_ids]

    # ------------------------------------------------------------------ #
    # Bottom-up semi-joins
    # ------------------------------------------------------------------ #

    def _bindings(self, node: QueryNode, lists: _LabelLists) -> list[_Region]:
        candidates = lists.regions(node.label)
        if node.value is not None:
            candidates = [
                region
                for region in candidates
                if node.value in lists.values.get(region.start, ())
            ]
        for axis, child in node.edges:
            if not candidates:
                break
            child_bindings = self._bindings(child, lists)
            candidates = self._semijoin(candidates, child_bindings, axis)
        return candidates

    def _semijoin(
        self,
        parents: list[_Region],
        children: list[_Region],
        axis: Axis,
    ) -> list[_Region]:
        """Parents with at least one child/descendant among ``children``."""
        self.joins_performed += 1
        if not children:
            return []
        starts = [child.start for child in children]
        survivors: list[_Region] = []
        for parent in parents:
            low = bisect_right(starts, parent.start)
            high = bisect_left(starts, parent.end, lo=low)
            # children[low:high+1] are those with start in (p.start, p.end].
            if axis is Axis.DESCENDANT:
                if low < len(children) and children[low].start <= parent.end:
                    survivors.append(parent)
                continue
            target_level = parent.level + 1
            for child in children[low : high + 1]:
                if child.start > parent.end:
                    break
                if child.level == target_level:
                    survivors.append(parent)
                    break
        return survivors

    # ------------------------------------------------------------------ #
    # List cache
    # ------------------------------------------------------------------ #

    def _lists_for(self, document: Document) -> _LabelLists:
        cached = self._lists_cache.get(id(document))
        if cached is not None and cached[0] is document:
            return cached[1]
        if len(self._lists_cache) >= 128:
            self._lists_cache.clear()
        lists = _LabelLists(document)
        self._lists_cache[id(document)] = (document, lists)
        return lists

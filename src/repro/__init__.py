"""FIX: Feature-based Indexing Technique for XML Documents — a complete
reproduction of Zhang, Özsu, Ilyas & Aboulnaga (UWaterloo TR CS-2006-07).

Quickstart::

    from repro import (
        FixIndex, FixIndexConfig, FixQueryProcessor, PrimaryXMLStore,
        parse_xml,
    )

    store = PrimaryXMLStore()
    store.add_document(parse_xml("<bib><article><author/></article></bib>"))
    index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
    processor = FixQueryProcessor(index)
    result = processor.query("//article[author]")
    print(result.results)        # pointers to matching units
    print(result.candidate_count)

See ``examples/`` for runnable end-to-end scenarios, ``DESIGN.md`` for the
system inventory, and ``EXPERIMENTS.md`` for the paper-vs-measured record.
"""

from repro.core import (
    FeatureHistogram,
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    FixQueryResult,
    PlanCache,
    PruningMetrics,
    QueryMetricsLog,
    QueryPlan,
    ValueHasher,
    evaluate_pruning,
)
from repro.core.optimizer import AccessPath, CostModel, QueryOptimizer
from repro.core.persistence import load_index, save_index
from repro.obs import MetricsRegistry, Obs, ObsConfig, Tracer
from repro.spatial import SpatialFeatureIndex
from repro.engine import NavigationalEngine, StructuralJoinEngine
from repro.errors import ReproError
from repro.fb import FBEvaluator, FBIndex
from repro.query import (
    TwigQuery,
    decompose,
    matching_elements,
    parse_query,
    query_matches_document,
    twig_of,
)
from repro.spectral import EdgeLabelEncoder, FeatureKey, FeatureRange
from repro.storage import NodePointer, PrimaryXMLStore
from repro.xmltree import Document, Element, Text, parse_xml, serialize


def select(document: Document, query: "TwigQuery | str") -> list[Element]:
    """Evaluate a path expression against one in-memory document.

    A convenience wrapper over the ground-truth matcher for scripts and
    tests that just want answers without building an index::

        from repro import parse_xml, select

        doc = parse_xml("<bib><article><author/></article></bib>")
        for element in select(doc, "//article[author]"):
            print(element.tag, element.node_id)

    For repeated queries over large data, build a :class:`FixIndex` and
    use :class:`FixQueryProcessor` instead.
    """
    twig = query if isinstance(query, TwigQuery) else twig_of(query)
    return matching_elements(twig, document)

__version__ = "1.0.0"

__all__ = [
    "AccessPath",
    "CostModel",
    "Document",
    "QueryOptimizer",
    "SpatialFeatureIndex",
    "EdgeLabelEncoder",
    "Element",
    "FBEvaluator",
    "FBIndex",
    "FeatureHistogram",
    "FeatureKey",
    "FeatureRange",
    "FixIndex",
    "FixIndexConfig",
    "FixQueryProcessor",
    "FixQueryResult",
    "MetricsRegistry",
    "NavigationalEngine",
    "NodePointer",
    "Obs",
    "ObsConfig",
    "Tracer",
    "PlanCache",
    "PrimaryXMLStore",
    "PruningMetrics",
    "QueryMetricsLog",
    "QueryPlan",
    "ReproError",
    "StructuralJoinEngine",
    "Text",
    "TwigQuery",
    "ValueHasher",
    "decompose",
    "matching_elements",
    "query_matches_document",
    "evaluate_pruning",
    "load_index",
    "save_index",
    "select",
    "parse_query",
    "parse_xml",
    "serialize",
    "twig_of",
]

"""Single-pass bisimulation-graph construction (Algorithm 1, CONSTRUCT-ENTRIES).

The builder consumes an event stream and maintains:

* ``PathStack`` — one frame per currently-open element, holding the label,
  the set of child vertex ids accumulated so far, and the element's
  storage pointer (exactly the ``(sig, start_ptr)`` pairs of the paper);
* a signature map ``sig -> vertex`` so that structurally identical
  subtrees collapse into one vertex (``sig`` is the label plus the
  *set* of child vertices — Definition 3's downward bisimilarity).

On every close event the builder resolves the completed element's
signature to a vertex (creating one if needed) and reports the
``(vertex, start_ptr)`` pair to its caller.  FIX index construction with
a positive depth limit hangs GEN-SUBPATTERN off exactly this per-element
callback (one B-tree entry per element — Theorem 4), while depth-limit-0
construction only uses the final root vertex.

Text events are ignored unless a ``text_label`` mapping is supplied, in
which case each text node becomes a leaf child vertex labeled by the
mapped value — this is the Section 4.6 value extension, where the map is
a hash into a small domain.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import BisimulationError
from repro.bisim.graph import BisimGraph, BisimVertex
from repro.xmltree.events import CloseEvent, Event, OpenEvent, TextEvent
from repro.xmltree.model import Document, Element
from repro.xmltree.events import tree_events

Signature = tuple[str, frozenset[int]]


class _Frame:
    """A PathStack frame for one open element."""

    __slots__ = ("label", "child_vids", "start_ptr")

    def __init__(self, label: str, start_ptr: int) -> None:
        self.label = label
        self.child_vids: set[int] = set()
        self.start_ptr = start_ptr


class BisimGraphBuilder:
    """Incremental bisimulation-graph builder over an event stream.

    Args:
        record_extents: when ``True``, each vertex records the preorder
            ids of the XML nodes in its extent (useful for evaluation and
            tests; off by default to keep construction lean).
        text_label: optional mapping from a text value to a synthetic
            label; when given, text nodes participate in the structure as
            leaf children (the value extension of Section 4.6).

    The builder may be fed several complete documents in sequence
    (a *forest*); in that case the final graph's root is a synthetic
    vertex labeled ``#forest`` whose children are the document roots.
    This is how the collection-as-one-unit tests exercise it; FIX itself
    builds one graph per document.
    """

    FOREST_LABEL = "#forest"

    def __init__(
        self,
        record_extents: bool = False,
        text_label: Callable[[str], str] | None = None,
    ) -> None:
        self._record_extents = record_extents
        self._text_label = text_label
        self._sig_map: dict[Signature, BisimVertex] = {}
        self._vertices: list[BisimVertex] = []
        self._stack: list[_Frame] = []
        self._root_vids: set[int] = set()
        self._roots: list[BisimVertex] = []

    # ------------------------------------------------------------------ #
    # Event consumption
    # ------------------------------------------------------------------ #

    def feed(self, event: Event) -> tuple[BisimVertex, int] | None:
        """Consume one event.

        Returns the ``(vertex, start_ptr)`` pair when the event closes an
        element, else ``None``.
        """
        if isinstance(event, OpenEvent):
            self._stack.append(_Frame(event.label, event.start_ptr))
            return None
        if isinstance(event, TextEvent):
            if self._text_label is None:
                return None
            if not self._stack:
                raise BisimulationError("text event outside any element")
            vertex = self._intern(self._text_label(event.value), frozenset())
            self._note_extent(vertex, event.start_ptr)
            self._stack[-1].child_vids.add(vertex.vid)
            return None
        if isinstance(event, CloseEvent):
            if not self._stack:
                raise BisimulationError(
                    f"close event {event.label!r} with no open element"
                )
            frame = self._stack.pop()
            if frame.label != event.label:
                raise BisimulationError(
                    f"close event {event.label!r} does not match open "
                    f"element {frame.label!r}"
                )
            vertex = self._intern(frame.label, frozenset(frame.child_vids))
            self._note_extent(vertex, frame.start_ptr)
            if self._stack:
                self._stack[-1].child_vids.add(vertex.vid)
            else:
                if vertex.vid not in self._root_vids:
                    self._root_vids.add(vertex.vid)
                    self._roots.append(vertex)
            return vertex, frame.start_ptr
        raise TypeError(f"unknown event type: {event!r}")  # pragma: no cover

    def feed_all(self, events: Iterable[Event]) -> "BisimGraphBuilder":
        """Consume every event and return ``self`` (results discarded)."""
        for event in events:
            self.feed(event)
        return self

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #

    def finish(self) -> BisimGraph:
        """Return the completed graph.

        Raises :class:`BisimulationError` if elements remain open or no
        element was ever closed.
        """
        if self._stack:
            raise BisimulationError(
                f"event stream ended with {len(self._stack)} unclosed element(s)"
            )
        if not self._roots:
            raise BisimulationError("event stream contained no elements")
        if len(self._roots) == 1:
            root = self._roots[0]
        else:
            # Forest: tie the distinct document-root classes under one
            # synthetic vertex so the result is a single rooted DAG.
            root = self._intern(
                self.FOREST_LABEL, frozenset(v.vid for v in self._roots)
            )
        return BisimGraph(root, self._vertices)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _intern(self, label: str, child_vids: frozenset[int]) -> BisimVertex:
        """Return the vertex for ``(label, child_vids)``, creating it if new."""
        sig: Signature = (label, child_vids)
        vertex = self._sig_map.get(sig)
        if vertex is None:
            children = tuple(
                sorted((self._vertices[vid] for vid in child_vids), key=lambda v: v.vid)
            )
            vertex = BisimVertex(len(self._vertices), label, children)
            self._vertices.append(vertex)
            self._sig_map[sig] = vertex
        return vertex

    def _note_extent(self, vertex: BisimVertex, start_ptr: int) -> None:
        vertex.extent_size += 1
        if self._record_extents:
            if vertex.extent is None:
                vertex.extent = []
            vertex.extent.append(start_ptr)


def bisim_graph_of_events(
    events: Iterable[Event],
    record_extents: bool = False,
    text_label: Callable[[str], str] | None = None,
) -> BisimGraph:
    """Build the bisimulation graph of a complete event stream."""
    builder = BisimGraphBuilder(record_extents=record_extents, text_label=text_label)
    return builder.feed_all(events).finish()


def bisim_graph_of_document(
    document: Document | Element,
    record_extents: bool = False,
    text_label: Callable[[str], str] | None = None,
) -> BisimGraph:
    """Build the bisimulation graph of a document or subtree.

    Text nodes are only walked when ``text_label`` is provided, since the
    pure structural graph ignores them anyway.
    """
    root = document.root if isinstance(document, Document) else document
    events = tree_events(root, include_text=text_label is not None)
    return bisim_graph_of_events(
        events, record_extents=record_extents, text_label=text_label
    )

"""BISIM-TRAVELER (Section 4.4): depth-limited unfolding of a vertex.

``GEN-SUBPATTERN`` cannot simply take the sub-DAG below a vertex, because
cutting a bisimulation graph at depth ``L`` re-introduces structural
repetition: the truncated unfolding "is no longer a bisimulation graph"
(the paper's bib example: the depth-2 subgraph at ``bib`` repeats
``article``).  The traveler therefore *replays* the unfolding as an open/
close event stream, which a fresh :class:`BisimGraphBuilder` re-minimizes
into a proper bisimulation graph of the depth-``L`` pattern.

Unfolding a DAG can explode exponentially, so the traveler takes a cap on
the number of open events and raises :class:`PatternTooLargeError` when it
is exceeded — the index construction catches this and falls back to the
paper's artificial all-covering feature range.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import PatternTooLargeError
from repro.bisim.builder import BisimGraphBuilder
from repro.bisim.graph import BisimGraph, BisimVertex
from repro.xmltree.events import CloseEvent, Event, OpenEvent


def traveler_events(
    vertex: BisimVertex,
    depth_limit: int,
    max_opens: int | None = None,
) -> Iterator[Event]:
    """Yield the event stream of ``vertex``'s unfolding down to ``depth_limit``.

    The root of the unfolding is at depth 1, so a ``depth_limit`` of ``k``
    produces a ``k``-pattern.  A ``depth_limit <= 0`` means *unlimited*
    (unfold the full height of the vertex — used when the whole pattern
    should be indexed).

    Children are visited in vid order, making the stream — and therefore
    the re-minimized graph and its features — deterministic.

    Args:
        vertex: unfolding root.
        depth_limit: maximum pattern depth, or ``<= 0`` for unlimited.
        max_opens: optional cap on emitted open events.

    Raises:
        PatternTooLargeError: when ``max_opens`` is exceeded.
    """
    if depth_limit <= 0:
        depth_limit = vertex.height
    opens = 0
    # Iterative DFS.  Stack holds (vertex, depth) to open, or a close marker.
    stack: list[tuple[BisimVertex, int] | str] = [(vertex, 1)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            yield CloseEvent(item)
            continue
        node, depth = item
        opens += 1
        if max_opens is not None and opens > max_opens:
            raise PatternTooLargeError(
                f"depth-{depth_limit} unfolding of vertex {node.vid} exceeds "
                f"{max_opens} nodes",
                size=opens,
            )
        yield OpenEvent(node.label, -1)
        stack.append(node.label)
        if depth < depth_limit:
            for child in reversed(node.children):
                stack.append((child, depth + 1))


def depth_limited_graph(
    vertex: BisimVertex,
    depth_limit: int,
    max_opens: int | None = None,
) -> BisimGraph:
    """Re-minimized bisimulation graph of the depth-limited unfolding.

    This is the composition GEN-SUBPATTERN uses: traveler → builder.

    Raises:
        PatternTooLargeError: when the unfolding exceeds ``max_opens``.
    """
    builder = BisimGraphBuilder()
    return builder.feed_all(
        traveler_events(vertex, depth_limit, max_opens=max_opens)
    ).finish()

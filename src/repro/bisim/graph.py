"""Bisimulation graph data structures.

The graph is built bottom-up (children always exist before their parents),
so derived quantities — the *height* of each vertex and hence the depth of
the whole graph — are computed incrementally at vertex-creation time for
free.  Vertices are immutable once created; the builder owns mutation.
"""

from __future__ import annotations

from collections.abc import Iterator


class BisimVertex:
    """One equivalence class of XML nodes.

    Attributes:
        vid: dense integer id, assigned in creation (bottom-up) order.
            Because construction is bottom-up, ``vid`` order is a reverse
            topological order: every child has a smaller vid than each of
            its parents.
        label: element tag shared by all nodes in the class.
        children: deduplicated child vertices, sorted by vid for
            determinism.
        height: height of the unfolding rooted here; a leaf has height 1.
        extent_size: how many XML nodes map to this class.
        extent: preorder ids of those nodes, if the builder was asked to
            record them (``record_extents=True``); otherwise ``None``.
        eigs: memoized spectral feature range for this vertex under the
            owning index's depth limit (Algorithm 1 sets this once per
            vertex so eigen-decomposition happens once per equivalence
            class, not once per element).
    """

    __slots__ = ("vid", "label", "children", "height", "extent_size", "extent", "eigs")

    def __init__(self, vid: int, label: str, children: tuple["BisimVertex", ...]) -> None:
        self.vid = vid
        self.label = label
        self.children = children
        self.height = 1 + max((c.height for c in children), default=0)
        self.extent_size = 0
        self.extent: list[int] | None = None
        self.eigs = None  # set lazily by the FIX index construction

    def out_degree(self) -> int:
        """Number of distinct child classes."""
        return len(self.children)

    def is_leaf(self) -> bool:
        """True when this class has no children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BisimVertex(vid={self.vid}, label={self.label!r}, "
            f"children={len(self.children)}, height={self.height})"
        )


class BisimGraph:
    """A minimal downward-bisimulation DAG of a tree (or forest unit).

    Attributes:
        root: the vertex every tree root maps to.
        vertices: all vertices, indexed by vid (creation order, which is a
            reverse topological order of the DAG).
    """

    __slots__ = ("root", "vertices")

    def __init__(self, root: BisimVertex, vertices: list[BisimVertex]) -> None:
        self.root = root
        self.vertices = vertices

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #

    def vertex_count(self) -> int:
        """Number of equivalence classes."""
        return len(self.vertices)

    def edge_count(self) -> int:
        """Number of distinct (parent-class, child-class) edges."""
        return sum(len(v.children) for v in self.vertices)

    def depth(self) -> int:
        """Depth of the graph = height of the root vertex.

        This is ``G.dep`` in Algorithm 1: the depth limit that covers the
        entire structure.
        """
        return self.root.height

    def labels(self) -> set[str]:
        """The set of labels appearing in the graph."""
        return {v.label for v in self.vertices}

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def iter_reachable(self) -> Iterator[BisimVertex]:
        """Vertices reachable from the root (the whole graph when built
        from a single document, but a depth-limited view may not use all)."""
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            vertex = stack.pop()
            if vertex.vid in seen:
                continue
            seen.add(vertex.vid)
            yield vertex
            stack.extend(vertex.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BisimGraph(vertices={self.vertex_count()}, "
            f"edges={self.edge_count()}, depth={self.depth()})"
        )

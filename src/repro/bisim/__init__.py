"""Bisimulation graphs (Section 2.2 and Algorithm 1 of the paper).

A *bisimulation graph* of an XML tree is the minimal labeled DAG in which
two tree nodes are merged exactly when they have the same label and the
same *set* of (merged) children — downward bisimilarity in the sense of
Henzinger et al.  It preserves everything needed for **existential** twig
matching (Theorem 2) while being far smaller than the tree, which is what
makes eigenvalue extraction affordable.

Contents:

* :class:`~repro.bisim.graph.BisimVertex` / ``BisimGraph`` — the DAG.
* :class:`~repro.bisim.builder.BisimGraphBuilder` — the single-pass,
  stack-of-signatures construction of CONSTRUCT-ENTRIES (Algorithm 1);
  also exposes the per-element ``(vertex, start_ptr)`` stream that drives
  subpattern enumeration.
* :func:`~repro.bisim.traveler.traveler_events` — the BISIM-TRAVELER of
  Section 4.4: replays a vertex's depth-limited unfolding as an event
  stream so it can be re-minimized by a fresh builder.
* :mod:`~repro.bisim.dag` — small DAG utilities (edges, topological
  order, canonical keys for isomorphism testing).
"""

from repro.bisim.builder import BisimGraphBuilder, bisim_graph_of_document, bisim_graph_of_events
from repro.bisim.dag import (
    canonical_key,
    depth_signature,
    graphs_isomorphic,
    edge_count,
    edges,
    reachable_vertices,
    topological_order,
    vertex_signature,
)
from repro.bisim.graph import BisimGraph, BisimVertex
from repro.bisim.traveler import depth_limited_graph, traveler_events

__all__ = [
    "BisimGraph",
    "BisimGraphBuilder",
    "BisimVertex",
    "bisim_graph_of_document",
    "bisim_graph_of_events",
    "canonical_key",
    "depth_limited_graph",
    "depth_signature",
    "edge_count",
    "edges",
    "graphs_isomorphic",
    "reachable_vertices",
    "topological_order",
    "traveler_events",
    "vertex_signature",
]

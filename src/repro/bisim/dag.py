"""Small DAG utilities over bisimulation graphs.

These helpers are shared by the spectral-matrix builder (which needs the
edge list in a deterministic order), the F&B baseline, and the test suite
(canonical keys give a cheap isomorphism test for minimal graphs).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.bisim.graph import BisimGraph, BisimVertex


def edges(graph: BisimGraph) -> Iterator[tuple[BisimVertex, BisimVertex]]:
    """Yield every (parent, child) vertex pair reachable from the root.

    Order is deterministic: parents in reachability (DFS from root, vid
    tie-broken) order, children in vid order.
    """
    for parent in topological_order(graph):
        for child in parent.children:
            yield parent, child


def edge_count(graph: BisimGraph) -> int:
    """Number of edges reachable from the root."""
    return sum(1 for _ in edges(graph))


def reachable_vertices(root: BisimVertex) -> list[BisimVertex]:
    """All vertices reachable from ``root``, in discovery (DFS) order."""
    seen: set[int] = set()
    order: list[BisimVertex] = []
    stack = [root]
    while stack:
        vertex = stack.pop()
        if vertex.vid in seen:
            continue
        seen.add(vertex.vid)
        order.append(vertex)
        # Reverse so lower-vid children are discovered first.
        stack.extend(reversed(vertex.children))
    return order


def topological_order(graph: BisimGraph) -> list[BisimVertex]:
    """Reachable vertices in a parent-before-child order.

    Builder vids are assigned bottom-up, so descending vid order over the
    reachable set is a valid topological order of the DAG.
    """
    return sorted(reachable_vertices(graph.root), key=lambda v: -v.vid)


def canonical_key(vertex: BisimVertex, _memo: dict[int, object] | None = None) -> object:
    """A hashable key identical for (and only for) bisimilar vertices.

    Defined recursively as ``(label, frozenset of child keys)``.  For
    *minimal* graphs (anything a :class:`BisimGraphBuilder` produces) two
    graphs are isomorphic exactly when their roots' canonical keys are
    equal, which gives the test suite a decidable graph-equality check.
    """
    memo: dict[int, object] = {} if _memo is None else _memo
    # Iterative post-order to avoid recursion limits on deep graphs.
    stack: list[tuple[BisimVertex, bool]] = [(vertex, False)]
    while stack:
        node, ready = stack.pop()
        if node.vid in memo:
            continue
        if ready:
            memo[node.vid] = (node.label, frozenset(memo[c.vid] for c in node.children))
            continue
        stack.append((node, True))
        for child in node.children:
            if child.vid not in memo:
                stack.append((child, False))
    return memo[vertex.vid]


def graphs_isomorphic(left: BisimGraph, right: BisimGraph) -> bool:
    """Isomorphism test for two *minimal* bisimulation graphs."""
    return canonical_key(left.root) == canonical_key(right.root)

"""Small DAG utilities over bisimulation graphs.

These helpers are shared by the spectral-matrix builder (which needs the
edge list in a deterministic order), the F&B baseline, and the test suite
(canonical keys give a cheap isomorphism test for minimal graphs).
"""

from __future__ import annotations

from collections.abc import Iterator
from hashlib import blake2b

from repro.bisim.graph import BisimGraph, BisimVertex

#: Digest width of a structural vertex signature, in bytes.
SIGNATURE_BYTES = 16


def edges(graph: BisimGraph) -> Iterator[tuple[BisimVertex, BisimVertex]]:
    """Yield every (parent, child) vertex pair reachable from the root.

    Order is deterministic: parents in reachability (DFS from root, vid
    tie-broken) order, children in vid order.
    """
    for parent in topological_order(graph):
        for child in parent.children:
            yield parent, child


def edge_count(graph: BisimGraph) -> int:
    """Number of edges reachable from the root."""
    return sum(1 for _ in edges(graph))


def reachable_vertices(root: BisimVertex) -> list[BisimVertex]:
    """All vertices reachable from ``root``, in discovery (DFS) order."""
    seen: set[int] = set()
    order: list[BisimVertex] = []
    stack = [root]
    while stack:
        vertex = stack.pop()
        if vertex.vid in seen:
            continue
        seen.add(vertex.vid)
        order.append(vertex)
        # Reverse so lower-vid children are discovered first.
        stack.extend(reversed(vertex.children))
    return order


def topological_order(graph: BisimGraph) -> list[BisimVertex]:
    """Reachable vertices in a parent-before-child order.

    Builder vids are assigned bottom-up, so descending vid order over the
    reachable set is a valid topological order of the DAG.
    """
    return sorted(reachable_vertices(graph.root), key=lambda v: -v.vid)


def canonical_key(vertex: BisimVertex, _memo: dict[int, object] | None = None) -> object:
    """A hashable key identical for (and only for) bisimilar vertices.

    Defined recursively as ``(label, frozenset of child keys)``.  For
    *minimal* graphs (anything a :class:`BisimGraphBuilder` produces) two
    graphs are isomorphic exactly when their roots' canonical keys are
    equal, which gives the test suite a decidable graph-equality check.
    """
    memo: dict[int, object] = {} if _memo is None else _memo
    # Iterative post-order to avoid recursion limits on deep graphs.
    stack: list[tuple[BisimVertex, bool]] = [(vertex, False)]
    while stack:
        node, ready = stack.pop()
        if node.vid in memo:
            continue
        if ready:
            memo[node.vid] = (node.label, frozenset(memo[c.vid] for c in node.children))
            continue
        stack.append((node, True))
        for child in node.children:
            if child.vid not in memo:
                stack.append((child, False))
    return memo[vertex.vid]


def graphs_isomorphic(left: BisimGraph, right: BisimGraph) -> bool:
    """Isomorphism test for two *minimal* bisimulation graphs."""
    return canonical_key(left.root) == canonical_key(right.root)


def vertex_signature(
    vertex: BisimVertex, _memo: dict[int, bytes] | None = None
) -> bytes:
    """A compact (16-byte) digest form of :func:`canonical_key`.

    Defined bottom-up as ``blake2b(label · 0x00 · sorted child
    signatures)``: a function of the vertex's label and the *set* of
    child signatures only, so it is invariant under vertex ids,
    discovery order, and the document the structure came from.  For
    minimal graphs, equal signatures mean bisimilar structures (up to
    blake2b collisions — negligible at 128 bits), which makes the digest
    usable both as a content address (the spectral feature cache) and as
    a canonical sort key (the matrix builder's vertex order).

    Pass a shared ``_memo`` (vid → digest) to amortize over many
    vertices of one graph.
    """
    memo: dict[int, bytes] = {} if _memo is None else _memo
    stack: list[tuple[BisimVertex, bool]] = [(vertex, False)]
    while stack:
        node, ready = stack.pop()
        if node.vid in memo:
            continue
        if ready:
            digest = blake2b(digest_size=SIGNATURE_BYTES)
            digest.update(node.label.encode("utf-8"))
            digest.update(b"\x00")
            for child_sig in sorted(memo[child.vid] for child in node.children):
                digest.update(child_sig)
            memo[node.vid] = digest.digest()
            continue
        stack.append((node, True))
        for child in node.children:
            if child.vid not in memo:
                stack.append((child, False))
    return memo[vertex.vid]


def depth_signature(
    vertex: BisimVertex,
    depth_limit: int,
    _memo: dict[tuple[int, int], bytes] | None = None,
) -> bytes:
    """Signature of ``vertex``'s depth-limited pattern, without unfolding.

    Equal, by construction, to ``vertex_signature`` of the root of
    ``depth_limited_graph(vertex, depth_limit)`` — but computed directly
    on the source DAG in O(vertices × depth) hash steps, where actually
    unfolding can explode exponentially.  This is what lets a feature
    -cache *hit* skip both the BISIM-TRAVELER replay and the
    eigen-decomposition.

    The equivalence holds because re-minimizing the truncated unfolding
    merges children exactly when their depth-``d-1`` views coincide;
    here that merge is the deduplication of equal child digests (a
    ``set``), which ``vertex_signature`` never needs on an already
    -minimal graph but truncation can reintroduce.  The root of the
    unfolding sits at depth 1, matching
    :func:`~repro.bisim.traveler.traveler_events`.

    Pass a shared ``_memo`` ((vid, depth) → digest) to amortize across
    the vertices of one document's graph.
    """
    if depth_limit <= 0:
        return vertex_signature(vertex)
    memo: dict[tuple[int, int], bytes] = {} if _memo is None else _memo
    stack: list[tuple[BisimVertex, int, bool]] = [(vertex, depth_limit, False)]
    while stack:
        node, depth, ready = stack.pop()
        state = (node.vid, depth)
        if state in memo:
            continue
        if ready:
            digest = blake2b(digest_size=SIGNATURE_BYTES)
            digest.update(node.label.encode("utf-8"))
            digest.update(b"\x00")
            if depth > 1:
                child_sigs = {memo[(c.vid, depth - 1)] for c in node.children}
                for child_sig in sorted(child_sigs):
                    digest.update(child_sig)
            memo[state] = digest.digest()
            continue
        stack.append((node, depth, True))
        if depth > 1:
            for child in node.children:
                if (child.vid, depth - 1) not in memo:
                    stack.append((child, depth - 1, False))
    return memo[(vertex.vid, depth_limit)]

"""``repro top`` — a live terminal dashboard over a trace/metrics
artifact (DESIGN.md §13).

The dashboard *tails* a JSONL trace file (the artifact ``--trace``
writes and the daemon will stream): new events are ingested
incrementally from the last read offset, query spans feed a
:class:`~repro.obs.window.RollingWindow` keyed on their recorded wall
timestamps, and metrics snapshots merge into one registry — so the
frame shows both rolling tail latency ("last 60 s p99") and lifetime
aggregates (cache hit rates, shard balance) side by side.

Rendering is plain ANSI (stdlib only): the interactive loop repaints
with a home+clear escape; ``--once`` renders a single frame with no
escape codes — the CI-able mode, and the snapshot-file mode for saved
traces (time is then pinned to the newest event in the file, so a
historical trace renders its own "last 60 s" faithfully).
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque

from repro.obs.registry import MetricsRegistry
from repro.obs.window import RollingWindow

__all__ = ["TraceTail", "TopDashboard", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


class TraceTail:
    """Incremental JSONL reader: each :meth:`poll` parses only the
    bytes appended since the last one.  A partial trailing line (a
    writer mid-append) is left in the file for the next poll; malformed
    complete lines are counted and skipped, never raised."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.skipped = 0

    def poll(self) -> list[dict]:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self.offset:  # truncated/rotated: start over
            self.offset = 0
        if size == self.offset:
            return []
        events: list[dict] = []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        # Only consume whole lines; the remainder stays for next poll.
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        self.offset += end + 1
        for raw in chunk[: end + 1].splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                events.append(json.loads(raw))
            except json.JSONDecodeError:
                self.skipped += 1
        return events


class TopDashboard:
    """State + renderer behind ``repro top``."""

    def __init__(
        self,
        path: str,
        window_seconds: float = 60.0,
        slow_capacity: int = 8,
    ) -> None:
        self.tail = TraceTail(path)
        self.window = RollingWindow(width=window_seconds, buckets=12)
        self.registry = MetricsRegistry()
        self.slow_ring: deque = deque(maxlen=slow_capacity)
        self.total_queries = 0
        self.total_events = 0
        self.latest_ts = 0.0
        #: per-run latest sketch states (flushes supersede within a run,
        #: runs merge — same convention as ``summarize_trace``).
        self._run_sketches: dict[tuple[str, str], dict] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def poll(self) -> int:
        """Ingest newly appended events; returns how many arrived."""
        events = self.tail.poll()
        for event in events:
            self._ingest(event)
        self.total_events += len(events)
        return len(events)

    def _ingest(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "span":
            start = float(event.get("start", 0.0))
            duration = float(event.get("dur", 0.0))
            self.latest_ts = max(self.latest_ts, start + duration)
            name = event.get("name")
            if name == "query":
                self.total_queries += 1
                self.window.inc("queries", now=start)
                self.window.observe("query.seconds", duration, now=start)
                if event.get("error"):
                    self.window.inc("errors", now=start)
            elif name in ("query.plan", "query.prune", "query.refine"):
                self.window.observe(f"{name}.seconds", duration, now=start)
        elif kind == "metrics":
            snapshot = dict(event.get("snapshot", {}))
            sketches = snapshot.pop("sketches", {})
            run = str(event.get("run"))
            for sketch_name, state in sketches.items():
                self._run_sketches[(run, sketch_name)] = state
            self.registry.merge_snapshot(snapshot)
        elif kind == "slow_query":
            self.slow_ring.append(event)
            self.latest_ts = max(self.latest_ts, float(event.get("ts", 0.0)))

    def lifetime_sketches(self) -> MetricsRegistry:
        """A registry holding the merged (deduplicated per run) sketch
        states alongside the merged counters/gauges."""
        merged = MetricsRegistry()
        merged.merge_snapshot(self.registry.snapshot())
        for (run, name) in sorted(self._run_sketches):
            merged.sketch(
                name, k=int(self._run_sketches[(run, name)]["k"])
            ).merge(self._run_sketches[(run, name)])
        return merged

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    @staticmethod
    def _ms(seconds: float) -> str:
        if seconds != seconds:  # NaN
            return "    --"
        return f"{seconds * 1e3:6.2f}"

    def render(self, color: bool = False, now: float | None = None) -> str:
        """One dashboard frame.  ``now`` defaults to the newest event
        timestamp, so saved traces render their own era's window."""
        bold = _BOLD if color else ""
        dim = _DIM if color else ""
        reset = _RESET if color else ""
        now = self.latest_ts if now is None else now
        window = self.window
        lines: list[str] = []
        lines.append(
            f"{bold}repro top{reset} — {self.tail.path}  "
            f"({self.total_events} events"
            + (f", {self.tail.skipped} skipped" if self.tail.skipped else "")
            + ")"
        )
        qps = window.rate("queries", now=now)
        errors = window.count("errors", now=now)
        lines.append(
            f"{bold}window {window.width:.0f}s{reset}: "
            f"{qps:8.2f} qps   {window.count('queries', now=now):.0f} queries"
            f"   {errors:.0f} errors   ({self.total_queries} lifetime)"
        )
        header = (
            f"  {'series':<22s} {'p50 ms':>8s} {'p95 ms':>8s} "
            f"{'p99 ms':>8s} {'max ms':>8s} {'n':>6s}"
        )
        lines.append(dim + header + reset)
        for series in ("query.seconds", "query.plan.seconds",
                       "query.prune.seconds", "query.refine.seconds"):
            sketch = window.merged_sketch(series, now=now)
            if not sketch.count:
                continue
            p50, p95, p99 = sketch.quantiles((0.5, 0.95, 0.99))
            lines.append(
                f"  {series:<22s} {self._ms(p50):>8s} {self._ms(p95):>8s} "
                f"{self._ms(p99):>8s} {self._ms(sketch.max):>8s} "
                f"{sketch.count:>6d}"
            )
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        cache_bits: list[str] = []
        for label, hit_name, miss_name in (
            ("plan", "query.plan_cache.hits", "query.plan_cache.misses"),
            ("spectral", "build.cache.hits", "build.cache.misses"),
        ):
            hits = counters.get(hit_name, 0.0)
            total = hits + counters.get(miss_name, 0.0)
            if total:
                cache_bits.append(f"{label} {hits / total:.1%}")
        pager_reads = counters.get("pager.logical_reads", 0.0)
        if pager_reads:
            cache_bits.append(
                f"pager {counters.get('pager.cache_hits', 0.0) / pager_reads:.1%}"
            )
        if cache_bits:
            lines.append(f"{bold}caches{reset}: " + "   ".join(cache_bits))
        rss = gauges.get("process.rss_bytes")
        cpu = gauges.get("process.cpu_seconds")
        if rss or cpu:
            bits = []
            if rss:
                bits.append(f"rss {rss / 1e6:.1f} MB")
            if cpu:
                bits.append(f"cpu {cpu:.1f}s")
            pins = gauges.get("epoch.readers_pinned")
            if pins is not None:
                bits.append(f"pins {pins:.0f}")
            lines.append(f"{bold}process{reset}: " + "   ".join(bits))
        epoch_bits = []
        for label, name in (("pins", "epoch.pins"),
                            ("mutations", "epoch.mutations"),
                            ("scoped", "epoch.invalidations.scoped"),
                            ("full", "epoch.invalidations.full")):
            value = counters.get(name)
            if value:
                epoch_bits.append(f"{label} {value:.0f}")
        if "epoch.current" in gauges:
            epoch_bits.append(f"epoch {gauges['epoch.current']:.0f}")
        if epoch_bits:
            lines.append(f"{bold}epochs{reset}: " + "   ".join(epoch_bits))
        shard_entries = sorted(
            (name, value)
            for name, value in gauges.items()
            if name.startswith("shards.") and name.endswith(".entries")
        )
        if shard_entries:
            values = [value for _, value in shard_entries]
            bar_max = max(values) or 1.0
            mean = sum(values) / len(values)
            skew = (max(values) / mean) if mean else 0.0
            empty = gauges.get(
                "shards.empty", sum(1 for v in values if not v)
            )
            lines.append(
                f"{bold}shards{reset}: skew {skew:.2f}, {empty:.0f} empty"
            )
            for name, value in shard_entries:
                shard_id = name.split(".")[1]
                bar = "#" * max(1, int(24 * value / bar_max)) if value else ""
                lines.append(
                    f"  shard {shard_id:>3s} {value:>10.0f} {dim}{bar}{reset}"
                )
        if self.slow_ring:
            lines.append(f"{bold}slow queries{reset} (newest last):")
            for entry in self.slow_ring:
                lines.append(
                    f"  {entry.get('seconds', 0.0) * 1e3:8.2f}ms "
                    f"plan {entry.get('plan_s', 0.0) * 1e3:6.2f} "
                    f"prune {entry.get('prune_s', 0.0) * 1e3:6.2f} "
                    f"refine {entry.get('refine_s', 0.0) * 1e3:6.2f}  "
                    f"{entry.get('source', '?')}"
                )
        return "\n".join(lines)


def run_top(
    path: str,
    once: bool = False,
    interval: float = 1.0,
    window_seconds: float = 60.0,
    out=None,
    iterations: int | None = None,
) -> int:
    """Drive the dashboard: one plain frame for ``--once``, otherwise
    an ANSI repaint loop until interrupted (``iterations`` bounds the
    loop for tests)."""
    out = out if out is not None else sys.stdout
    dashboard = TopDashboard(path, window_seconds=window_seconds)
    # A downstream reader hanging up (e.g. `repro top --once | grep -q`)
    # is a normal way for this command to end, not an error.
    if once:
        dashboard.poll()
        try:
            print(dashboard.render(color=False), file=out)
        except BrokenPipeError:
            pass
        return 0
    try:
        ticks = 0
        while iterations is None or ticks < iterations:
            dashboard.poll()
            frame = dashboard.render(color=True, now=time.time())
            print(_CLEAR + frame, file=out, flush=True)
            ticks += 1
            time.sleep(interval)
    except (KeyboardInterrupt, BrokenPipeError):
        pass
    return 0

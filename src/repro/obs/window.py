"""Time-windowed rolling aggregation (DESIGN.md §13).

The registry's instruments are *lifetime* accumulators; a serving
daemon needs "p99 over the last 60 seconds".  :class:`RollingWindow`
provides that as a ring of fixed-duration epochs, each holding its own
:class:`~repro.obs.sketch.QuantileSketch` per observed series plus a
counter map — an observation lands in the bucket its timestamp falls
into, and reads merge only the buckets still inside the window.

Determinism: the clock is an injection point (``clock=`` callable, or
an explicit ``now=`` per call), so tests — and file-driven consumers
like ``repro top --once`` replaying historical trace timestamps — drive
time themselves.  Bucket expiry is purely arithmetic on the bucket
epoch number; no background thread sweeps anything.
"""

from __future__ import annotations

import time

from repro.obs.sketch import QuantileSketch

__all__ = ["RollingWindow"]


class _Bucket:
    """One ring slot: the bucket-epoch it currently holds, its
    per-series sketches, and its per-series counters."""

    __slots__ = ("epoch", "sketches", "counters")

    def __init__(self) -> None:
        self.epoch = -1
        self.sketches: dict[str, QuantileSketch] = {}
        self.counters: dict[str, float] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.sketches.clear()
        self.counters.clear()


class RollingWindow:
    """Last-``width``-seconds aggregation over named series.

    Args:
        width: window span in seconds (default 60).
        buckets: ring granularity; expiry resolution is
            ``width / buckets`` seconds (default 12 -> 5 s).
        k: sketch capacity per bucket series (small — per-bucket
            streams are short; merged reads re-combine them).
        clock: monotonic time source; injectable for tests and for
            replaying recorded timestamps.
    """

    def __init__(
        self,
        width: float = 60.0,
        buckets: int = 12,
        k: int = 256,
        clock=time.monotonic,
    ) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        self.width = float(width)
        self.span = self.width / buckets
        self.k = k
        self.clock = clock
        self._ring = [_Bucket() for _ in range(buckets)]

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def _bucket_at(self, now: float | None) -> _Bucket:
        now = self.clock() if now is None else now
        epoch = int(now // self.span)
        bucket = self._ring[epoch % len(self._ring)]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def observe(self, name: str, value: float, now: float | None = None) -> None:
        """Record one sample of series ``name`` at time ``now``."""
        bucket = self._bucket_at(now)
        sketch = bucket.sketches.get(name)
        if sketch is None:
            sketch = bucket.sketches[name] = QuantileSketch(name, k=self.k)
        sketch.observe(value)

    def inc(self, name: str, amount: float = 1.0, now: float | None = None) -> None:
        """Bump a windowed counter series."""
        bucket = self._bucket_at(now)
        bucket.counters[name] = bucket.counters.get(name, 0.0) + amount

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def _live(self, now: float | None) -> list[_Bucket]:
        """Buckets still inside the window at ``now``, oldest first —
        the deterministic merge order."""
        now = self.clock() if now is None else now
        newest = int(now // self.span)
        oldest = newest - len(self._ring) + 1
        live = [
            bucket
            for bucket in self._ring
            if oldest <= bucket.epoch <= newest
        ]
        live.sort(key=lambda bucket: bucket.epoch)
        return live

    def merged_sketch(self, name: str, now: float | None = None) -> QuantileSketch:
        """One sketch covering series ``name`` across the live window
        (merged oldest-bucket-first; empty sketch when nothing lives)."""
        merged = QuantileSketch(name, k=self.k)
        for bucket in self._live(now):
            sketch = bucket.sketches.get(name)
            if sketch is not None:
                merged.merge(sketch)
        return merged

    def quantile(self, name: str, q: float, now: float | None = None) -> float:
        """Windowed quantile of series ``name`` (NaN when empty)."""
        return self.merged_sketch(name, now).quantile(q)

    def count(self, name: str, now: float | None = None) -> float:
        """Windowed total of counter series ``name`` (sketch series
        fall back to their observation count)."""
        total = 0.0
        for bucket in self._live(now):
            if name in bucket.counters:
                total += bucket.counters[name]
            elif name in bucket.sketches:
                total += bucket.sketches[name].count
        return total

    def rate(self, name: str, now: float | None = None) -> float:
        """Windowed events-per-second of series ``name``."""
        return self.count(name, now) / self.width

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-friendly window summary: per-series count/rate plus
        p50/p90/p95/p99 for sketch-backed series."""
        now = self.clock() if now is None else now
        live = self._live(now)
        names: set[str] = set()
        for bucket in live:
            names.update(bucket.sketches)
            names.update(bucket.counters)
        series: dict[str, dict] = {}
        for name in sorted(names):
            entry: dict = {
                "count": self.count(name, now),
                "rate": self.rate(name, now),
            }
            merged = self.merged_sketch(name, now)
            if merged.count:
                p50, p90, p95, p99 = merged.quantiles((0.5, 0.9, 0.95, 0.99))
                entry.update(
                    p50=p50, p90=p90, p95=p95, p99=p99,
                    min=merged.min, max=merged.max,
                    mean=merged.sum / merged.count,
                )
            series[name] = entry
        return {"width_seconds": self.width, "series": series}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RollingWindow(width={self.width}s, "
            f"buckets={len(self._ring)}, span={self.span}s)"
        )

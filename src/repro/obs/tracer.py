"""Hierarchical spans with a JSONL serialization (DESIGN.md §10).

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("build.eigen.batch", matrices=42) as span:
        ...
        span.set(buckets=3)

Spans nest through a per-tracer stack: the span open when another opens
becomes its parent, exceptions included (``__exit__`` always closes the
span, tagging it with the exception type before re-raising).  Closed
spans become plain event dicts, dumped one-per-line by
:meth:`Tracer.write_jsonl`.

**Disabled fast path.**  A disabled tracer returns :data:`NOOP_SPAN` — a
single cached module-level singleton whose ``__enter__``/``__exit__``/
``set`` are no-ops — so an instrumentation point in a hot loop costs one
attribute check and two trivially inlined calls.  The overhead budget
(<2 % of build time with observability off) is enforced by
``benchmarks/bench_obs_overhead.py``.

**Cross-process merging.**  Worker processes run their own tracers and
ship their event lists back with their results; the coordinator calls
:meth:`Tracer.absorb` on them *in chunk order* — the same deterministic
order the staged entries and refinement verdicts are concatenated in —
remapping span ids into the coordinator's id space and re-parenting the
workers' root spans under the coordinator's enclosing span.  Tracing
therefore never perturbs the build's byte-identity or the query
pipeline's pointer-ordered results: it only observes them.

Event schema (one JSON object per line)::

    {"type": "span", "run": "<process-run tag>", "id": 7, "parent": 3,
     "proc": "worker-1", "name": "build.doc", "start": <unix seconds>,
     "dur": <seconds>, "attrs": {...}, "error": "ValueError"?}
    {"type": "metrics", "run": ..., "proc": ..., "snapshot": {...}}
"""

from __future__ import annotations

import json
import os
import sys
import time

__all__ = [
    "NOOP_SPAN", "Span", "Tracer", "read_trace", "scan_trace", "write_trace",
]


class _NoopSpan:
    """The do-nothing span a disabled tracer hands out (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


#: The cached no-op singleton: every disabled-mode ``span()`` call
#: returns this exact object, allocating nothing.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed, hierarchical operation."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "_wall", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int,
        parent_id: int | None, attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._wall = 0.0
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self.span_id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        # The span is closed even when the body raised; a crashed child
        # must not orphan its siblings, so the stack is popped back to
        # (and including) this span.
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        event = {
            "type": "span",
            "run": self._tracer.run,
            "id": self.span_id,
            "parent": self.parent_id,
            "proc": self._tracer.proc,
            "name": self.name,
            "start": self._wall,
            "dur": duration,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        self._tracer.events.append(event)
        return False


class Tracer:
    """Span factory + event buffer for one process (or worker)."""

    def __init__(self, enabled: bool = True, proc: str = "main") -> None:
        self.enabled = enabled
        self.proc = proc
        #: distinguishes flushes from different processes/invocations in
        #: one shared JSONL file (span ids are only unique per run).
        self.run = f"{os.getpid():x}-{time.monotonic_ns():x}"
        self.events: list[dict] = []
        self._stack: list[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(self, name, span_id, parent, attrs)

    @property
    def current_id(self) -> int | None:
        """The innermost open span's id (``None`` at top level)."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------ #
    # Worker-trace merging
    # ------------------------------------------------------------------ #

    def absorb(self, events: list[dict], parent_id: int | None = None) -> None:
        """Merge other tracers' closed events into this one.

        ``events`` may be the concatenation of several workers' streams:
        every worker numbers its spans from 1, so the remap is keyed by
        ``(run, id)`` — the ``run`` tag is unique per tracer — and each
        worker's ids stay distinct in the merged trace.  New ids are
        assigned in event order (absorbing worker traces in chunk order
        is therefore deterministic); each incoming trace's top-level
        spans are re-parented under ``parent_id``.  ``proc`` tags are
        kept, so the merged trace still says which worker did what.
        """
        if not events:
            return
        base = self._next_id
        remap: dict[tuple[str | None, int], int] = {}
        for event in events:
            if event.get("type") == "span":
                key = (event.get("run"), event["id"])
                if key not in remap:
                    remap[key] = base + len(remap)
        self._next_id = base + len(remap)
        for event in events:
            event = dict(event)
            if event.get("type") == "span":
                run = event.get("run")
                event["id"] = remap[(run, event["id"])]
                old_parent = event.get("parent")
                event["parent"] = (
                    remap.get((run, old_parent), parent_id)
                    if old_parent is not None
                    else parent_id
                )
                event["run"] = self.run
            self.events.append(event)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Dump the buffered events to ``path``; returns the line count."""
        return write_trace(self.events, path, append=append)

    def clear(self) -> None:
        self.events.clear()


def write_trace(events: list[dict], path: str, append: bool = False) -> int:
    """Write ``events`` as JSONL (one compact object per line)."""
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
    return len(events)


def scan_trace(
    path: str, strict: bool = False, warn: bool = True
) -> tuple[list[dict], int]:
    """Load a JSONL trace, tolerating damage: ``(events, skipped)``.

    Trace files get truncated (a process killed mid-append), rotated
    under a reader, or corrupted mid-line (two writers without
    ``append`` discipline).  None of that should take down ``repro
    trace`` over the surviving records, so malformed lines are
    *skipped* — counted, and warned about once per file on stderr —
    unless ``strict=True``, which restores the raising behaviour for
    callers that treat any damage as fatal.  Blank lines are always
    skipped silently; an empty file is an empty trace, not an error.
    """
    events: list[dict] = []
    skipped = 0
    first_bad: str | None = None
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: not a JSON object"
                    ) from exc
                skipped += 1
                if first_bad is None:
                    first_bad = f"{path}:{lineno}"
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: not a JSON object"
                    )
                skipped += 1
                if first_bad is None:
                    first_bad = f"{path}:{lineno}"
                continue
            events.append(record)
    if skipped and warn:
        print(
            f"warning: skipped {skipped} malformed trace record(s) "
            f"(first at {first_bad})",
            file=sys.stderr,
        )
    return events, skipped


def read_trace(path: str, strict: bool = False) -> list[dict]:
    """Load a JSONL trace written by :func:`write_trace`.

    Malformed or truncated lines are skipped with a stderr warning (see
    :func:`scan_trace` for the full policy and the skip count);
    ``strict=True`` raises ``ValueError`` with the line number instead.
    """
    return scan_trace(path, strict=strict)[0]

"""Process resource gauges on a low-overhead ticker (DESIGN.md §13).

The query pipeline publishes what *it* did; this module publishes what
the process around it looks like while doing it — RSS, CPU seconds,
buffer-pool residency and hit rate, epoch pins and writer queue depth —
the gauges ``repro top`` and the future daemon's dashboards watch.

Sampling is pull-based and cheap (a ``/proc/self`` read plus a handful
of gauge sets); :meth:`ResourceSampler.sample_once` is the unit of
work, and :meth:`start` runs it on a daemon-thread ticker whose
interval bounds the overhead (default one sample per 5 s — far below
the 2 % telemetry budget).  Everything is stdlib; platforms without
``/proc`` fall back to ``resource.getrusage``.
"""

from __future__ import annotations

import os
import threading

__all__ = ["ResourceSampler", "rss_bytes", "cpu_seconds"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> float:
    """Resident set size in bytes (``/proc/self/statm`` when present,
    ``getrusage`` maxrss otherwise, 0.0 when neither exists)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            return float(int(handle.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; Linux is the
        # deployment target, so KiB it is.
        return float(usage.ru_maxrss * 1024)
    except Exception:  # pragma: no cover - exotic platforms
        return 0.0


def cpu_seconds() -> float:
    """Cumulative user+system CPU time of this process."""
    times = os.times()
    return float(times.user + times.system)


class ResourceSampler:
    """Periodic sampler publishing process/resource gauges.

    Args:
        registry: the :class:`~repro.obs.registry.MetricsRegistry` the
            gauges land in.
        index: optional index whose pager/epoch state is sampled too
            (``pager_stats()`` and ``epochs`` are read when present).
        interval: ticker period in seconds when started.
        slow_log: optional :class:`~repro.obs.slowlog.SlowQueryLog`
            whose capture counters get published alongside.
    """

    def __init__(
        self,
        registry,
        index=None,
        interval: float = 5.0,
        slow_log=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.index = index
        self.interval = interval
        self.slow_log = slow_log
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self) -> None:
        """Take one sample (the deterministic unit CI and tests call)."""
        registry = self.registry
        registry.gauge("process.rss_bytes").set(rss_bytes())
        registry.gauge("process.cpu_seconds").set(cpu_seconds())
        index = self.index
        if index is not None:
            pager_stats = getattr(index, "pager_stats", None)
            if callable(pager_stats):
                pager_stats().publish(registry)
            epochs = getattr(index, "epochs", None)
            if epochs is not None:
                epochs.publish(registry)
                registry.gauge("epoch.readers_pinned").set(
                    epochs.pinned_readers
                )
                registry.gauge("epoch.writers_waiting").set(
                    epochs.writers_waiting
                )
        if self.slow_log is not None:
            self.slow_log.publish(registry)
        self.samples += 1
        registry.sync_counter("resources.samples", self.samples)

    # ------------------------------------------------------------------ #
    # Ticker
    # ------------------------------------------------------------------ #

    def start(self) -> "ResourceSampler":
        """Run :meth:`sample_once` every ``interval`` seconds on a
        daemon thread (idempotent; returns self for chaining)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.interval):
                self.sample_once()

        self._thread = threading.Thread(
            target=_loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the ticker (taking one last sample by default, so short
        runs still publish their gauges)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None
        if final_sample:
            self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

"""Mergeable streaming quantile sketch (DESIGN.md §13).

The fixed-bucket :class:`~repro.obs.registry.Histogram` answers "how
many observations fell under each static bound", which is useless for
tail latency: p99 of a workload whose latencies straddle one bucket is
unrecoverable.  This module provides the serving-grade instrument — a
**compacting quantile sketch** in the Munro–Paterson / KLL family that
estimates any quantile of the observed stream with bounded rank error
in fixed memory, and **merges** across worker registries and trace
flushes.

Design constraints (inherited from the rest of ``repro.obs``):

* **Zero dependencies, JSON-friendly state.**  The sketch serializes to
  a plain dict (:meth:`QuantileSketch.as_dict`) that registry snapshots
  and flushed traces carry verbatim.
* **Deterministic.**  No randomness anywhere: compaction alternates a
  per-level parity bit instead of flipping coins, so the sketch state
  is a pure function of the observation sequence.  Two runs that
  observe the same values in the same order serialize byte-identically.
* **Replay-exact merge below the compaction threshold.**  Merging a
  sketch whose state is still an uncompacted level-0 log is *exactly*
  equivalent to observing its values in their arrival order.  The
  multi-worker absorb path (PR 1/7) concatenates per-worker streams in
  chunk order — the same contiguous-chunk order a serial run would have
  produced — so as long as each worker's per-sketch stream stays under
  ``k`` observations, the merged coordinator sketch is byte-identical
  to the serial one, for any worker count.  Beyond ``k`` the merge is
  still deterministic in merge order (and the error bound still holds);
  only exact byte equality with the serial ordering is forfeited.

Error model
-----------

Values live in levels; an item at level ``h`` carries weight ``2**h``.
New observations append to level 0 in arrival order.  When a level
reaches ``k`` items it is sorted and *compacted*: every other item
(starting at an alternating parity offset) is promoted to the next
level with doubled weight, the rest are discarded (an odd trailing item
stays at its level).  One compaction at level ``h`` can shift the
estimated rank of any query point by at most ``2**h`` — the sketch
accumulates that worst case in ``_error_weight``, so

    ``rank_error_bound() = _error_weight / count``

is a *sound, per-instance* bound on the rank error of every reported
quantile: for ``q`` the returned value's true rank is within
``count * rank_error_bound()`` of ``q * count``.  For ``n <= k`` the
sketch is lossless and the bound is exactly 0.  With the default
``k = 512`` the analytic envelope is ``~2*log2(n/k)/k`` — under 1% at
one million observations — and the alternating parity makes observed
error far smaller (``benchmarks/bench_obs_overhead.py`` records the
measured maximum).  ``min``/``max``/``count``/``sum`` are tracked
exactly, so p0/p100 and means are never approximated.
"""

from __future__ import annotations

import math

__all__ = ["DEFAULT_SKETCH_K", "QuantileSketch"]

#: Default per-level capacity.  Lossless (zero rank error) up to this
#: many observations; ~57 KB ceiling per sketch at a million.
DEFAULT_SKETCH_K = 512


class QuantileSketch:
    """Deterministic compacting quantile sketch (KLL-style levels with
    alternating-parity compaction; see the module docstring)."""

    __slots__ = (
        "name", "k", "count", "sum", "min", "max",
        "_levels", "_parities", "_error_weight",
    )

    def __init__(self, name: str, k: int = DEFAULT_SKETCH_K) -> None:
        if k < 8:
            raise ValueError(f"sketch capacity k must be >= 8, got {k}")
        self.name = name
        self.k = k
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: _levels[0] is the arrival-order log; _levels[h >= 1] are kept
        #: sorted (weight 2**h per item).
        self._levels: list[list[float]] = [[]]
        #: per-level compaction parity bits (alternate, deterministic).
        self._parities: list[int] = [0]
        #: accumulated worst-case rank displacement, in weight units.
        self._error_weight = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._ingest(value)

    def _ingest(self, value: float) -> None:
        level0 = self._levels[0]
        level0.append(value)
        if len(level0) >= self.k:
            self._compact(0)

    def _compact(self, h: int) -> None:
        """Promote half of level ``h`` to level ``h + 1`` (sorted,
        alternating parity, deterministic)."""
        buf = sorted(self._levels[h])
        retained: list[float] = []
        if len(buf) % 2:
            retained.append(buf.pop())  # odd tail stays at this level
        parity = self._parities[h]
        self._parities[h] ^= 1
        promoted = buf[parity::2]
        self._levels[h] = retained
        self._error_weight += 1 << h
        if h + 1 == len(self._levels):
            self._levels.append([])
            self._parities.append(0)
        nxt = self._levels[h + 1]
        nxt.extend(promoted)
        nxt.sort()
        if len(nxt) >= self.k:
            self._compact(h + 1)

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #

    def merge(self, other: "QuantileSketch | dict") -> None:
        """Fold another sketch (or its :meth:`as_dict` state) into this
        one.

        The incoming level-0 log is *replayed in arrival order*, so
        merging uncompacted sketches in stream order reproduces the
        serial state exactly; compacted levels fold level-wise (sorted,
        then re-compacted as capacity demands), which preserves the
        error bound: the merged bound is the sum of both inputs' bounds
        plus whatever new compactions the fold itself performs.
        """
        state = other.as_dict() if isinstance(other, QuantileSketch) else other
        if state.get("count", 0) == 0:
            return
        if int(state["k"]) != self.k:
            raise ValueError(
                f"cannot merge sketch {self.name!r} with k={self.k} "
                f"and incoming k={state['k']}"
            )
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        self._error_weight += int(state.get("error_weight", 0))
        levels = state["levels"]
        for value in levels[0]:
            self._ingest(float(value))
        for h in range(1, len(levels)):
            if not levels[h]:
                continue
            while h >= len(self._levels):
                self._levels.append([])
                self._parities.append(0)
            mine = self._levels[h]
            mine.extend(float(v) for v in levels[h])
            mine.sort()
            if len(mine) >= self.k:
                self._compact(h)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def _weighted_items(self) -> list[tuple[float, int]]:
        items: list[tuple[float, int]] = []
        for h, level in enumerate(self._levels):
            weight = 1 << h
            items.extend((value, weight) for value in level)
        items.sort(key=lambda pair: pair[0])
        return items

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``) of the stream.

        ``q = 0`` and ``q = 1`` return the exact tracked extremes; NaN
        on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        items = self._weighted_items()
        for value, weight in items:
            cumulative += weight
            if cumulative >= target:
                return value
        return items[-1][0]  # pragma: no cover - float-rounding guard

    def quantiles(self, qs) -> list[float]:
        """Batch :meth:`quantile` (one sort, many probes)."""
        qs = list(qs)
        if self.count == 0:
            return [math.nan] * len(qs)
        items = self._weighted_items()
        out: list[float] = []
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
            if q == 0.0:
                out.append(self.min)
                continue
            if q == 1.0:
                out.append(self.max)
                continue
            target = q * self.count
            cumulative = 0
            result = items[-1][0]
            for value, weight in items:
                cumulative += weight
                if cumulative >= target:
                    result = value
                    break
            out.append(result)
        return out

    def rank_error_bound(self) -> float:
        """Sound per-instance bound on the rank error of any reported
        quantile, as a fraction of ``count`` (0.0 while lossless)."""
        if self.count == 0:
            return 0.0
        return self._error_weight / self.count

    @property
    def compacted(self) -> bool:
        """True once any lossy compaction has happened."""
        return self._error_weight > 0

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """Canonical JSON-friendly state (deterministic byte-for-byte
        for a deterministic observation sequence)."""
        return {
            "k": self.k,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "levels": [list(level) for level in self._levels],
            "parities": list(self._parities),
            "error_weight": self._error_weight,
        }

    @classmethod
    def from_dict(cls, name: str, state: dict) -> "QuantileSketch":
        """Rehydrate a sketch exactly (state, not replay)."""
        sketch = cls(name, k=int(state["k"]))
        sketch.count = int(state["count"])
        sketch.sum = float(state["sum"])
        if sketch.count:
            sketch.min = float(state["min"])
            sketch.max = float(state["max"])
        sketch._levels = [[float(v) for v in level] for level in state["levels"]]
        sketch._parities = [int(p) for p in state["parities"]]
        sketch._error_weight = int(state.get("error_weight", 0))
        if not sketch._levels:
            sketch._levels = [[]]
            sketch._parities = [0]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch({self.name}, n={self.count}, "
            f"eps<={self.rank_error_bound():.4f})"
        )

"""Trace aggregation: turn a JSONL trace into the per-phase /
per-query breakdown the ``repro trace`` subcommand prints.

The input is the artifact ``Obs.flush`` writes — span events plus one
``metrics`` snapshot per flush.  Aggregation merges every snapshot into
one registry (build and query invocations append to the same file), and
walks the spans to reconstruct each query's plan/prune/refine split.

The phase totals reported here are *the same counters*
``BuildReport.timings`` reads (``build.phase_seconds.*``), which is what
makes the round-trip guarantee cheap to state: a trace of a build
reproduces Table 1's phase breakdown exactly, not within sampling error.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import scan_trace

__all__ = ["TraceSummary", "summarize_trace", "summarize_trace_file",
           "format_trace_report", "format_slow_queries"]

#: build.phase_seconds.<phase> counter prefix (written by PhaseTimings).
PHASE_PREFIX = "build.phase_seconds."
#: build.eigen.batch_size.<n> counter prefix (batch-size histogram).
BATCH_SIZE_PREFIX = "build.eigen.batch_size."

#: Table 1's phase order; phases outside this list sort after, by name.
_PHASE_ORDER = ("parse", "encode", "bisim", "unfold", "matrix", "eigen", "insert")


class TraceSummary:
    """Aggregated view of one trace file."""

    def __init__(self) -> None:
        #: merged metrics across every flush in the file.
        self.registry = MetricsRegistry()
        #: span name -> {"count", "total_s", "max_s"}.
        self.span_stats: dict[str, dict] = {}
        #: one dict per ``query`` root span (see ``_finish_query``).
        self.queries: list[dict] = []
        #: span events whose parent id never appears (diagnostic).
        self.orphan_spans = 0
        #: malformed trace lines skipped by the lenient reader.
        self.skipped_records = 0
        #: slow-query exemplar events (``{"type": "slow_query", ...}``)
        #: embedded in the trace, newest last.
        self.slow_queries: list[dict] = []

    # -- derived views ------------------------------------------------- #

    @property
    def counters(self) -> dict[str, float]:
        return self.registry.snapshot()["counters"]

    def phase_seconds(self) -> dict[str, float]:
        """Table 1's per-phase build breakdown, from the merged metrics."""
        phases = {
            name[len(PHASE_PREFIX):]: value
            for name, value in self.counters.items()
            if name.startswith(PHASE_PREFIX)
        }
        rank = {phase: i for i, phase in enumerate(_PHASE_ORDER)}
        return {
            phase: phases[phase]
            for phase in sorted(
                phases, key=lambda p: (rank.get(p, len(rank)), p)
            )
        }

    def batch_size_histogram(self) -> dict[int, int]:
        """Eigen batch size -> number of stacked solves."""
        return {
            int(name[len(BATCH_SIZE_PREFIX):]): int(value)
            for name, value in self.counters.items()
            if name.startswith(BATCH_SIZE_PREFIX)
        }

    def cache_rates(self) -> dict[str, float]:
        """Hit rates of the spectral feature cache and the plan cache."""
        counters = self.counters
        rates: dict[str, float] = {}
        for cache, hits_name, misses_name in (
            ("spectral_cache", "build.cache.hits", "build.cache.misses"),
            ("plan_cache", "query.plan_cache.hits", "query.plan_cache.misses"),
        ):
            hits = counters.get(hits_name, 0.0)
            misses = counters.get(misses_name, 0.0)
            total = hits + misses
            rates[f"{cache}_hits"] = hits
            rates[f"{cache}_misses"] = misses
            rates[f"{cache}_hit_rate"] = hits / total if total else 0.0
        return rates

    def slowest_queries(self, top: int = 10) -> list[dict]:
        return sorted(self.queries, key=lambda q: -q["total_s"])[:top]

    def epoch_counters(self) -> dict[str, float]:
        """The ``epoch.*`` mutation-path counters (PR 8), when present:
        pins, mutations, scoped vs full invalidations — plus the
        current epoch gauge."""
        counters = {
            name: value
            for name, value in self.counters.items()
            if name.startswith("epoch.")
        }
        gauges = self.registry.snapshot()["gauges"]
        if "epoch.current" in gauges:
            counters["epoch.current"] = gauges["epoch.current"]
        return counters

    def latency_quantiles(self) -> dict[str, dict]:
        """Per-series quantiles from the merged ``query.*``/``build.*``
        /``mutation.*`` sketches (empty when the trace predates them)."""
        out: dict[str, dict] = {}
        for name in sorted(self.registry.sketch_names()):
            sketch = self.registry.sketch(name)
            if not sketch.count:
                continue
            p50, p95, p99 = sketch.quantiles((0.5, 0.95, 0.99))
            out[name] = {
                "count": sketch.count,
                "p50": p50,
                "p95": p95,
                "p99": p99,
                "max": sketch.max,
                "rank_error_bound": sketch.rank_error_bound(),
            }
        return out

    def as_dict(self, top: int = 10) -> dict:
        """JSON-friendly dump (what ``repro trace --json`` emits)."""
        return {
            "phases": self.phase_seconds(),
            "cache": self.cache_rates(),
            "eigen_batch_sizes": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram().items())
            },
            "spans": self.span_stats,
            "queries": len(self.queries),
            "slowest_queries": self.slowest_queries(top),
            "latency_quantiles": self.latency_quantiles(),
            "epochs": self.epoch_counters(),
            "slow_query_exemplars": len(self.slow_queries),
            "orphan_spans": self.orphan_spans,
            "skipped_records": self.skipped_records,
            "counters": self.counters,
        }


def summarize_trace(events: list[dict]) -> TraceSummary:
    """Aggregate raw trace events into a :class:`TraceSummary`."""
    summary = TraceSummary()
    # Spans reference parents by (run, id); queries own their phase
    # children, so index the query spans first.
    span_events = [e for e in events if e.get("type") == "span"]
    known_ids = {(e.get("run"), e["id"]) for e in span_events}
    query_spans: dict[tuple, dict] = {}
    for event in span_events:
        stats = summary.span_stats.setdefault(
            event["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += event["dur"]
        stats["max_s"] = max(stats["max_s"], event["dur"])
        parent = event.get("parent")
        if parent is not None and (event.get("run"), parent) not in known_ids:
            summary.orphan_spans += 1
        if event["name"] == "query":
            attrs = event.get("attrs", {})
            query_spans[(event.get("run"), event["id"])] = {
                "source": attrs.get("source", "<twig>"),
                "total_s": event["dur"],
                "plan_s": 0.0,
                "prune_s": 0.0,
                "refine_s": 0.0,
                "candidates": attrs.get("candidates", 0),
                "results": attrs.get("results", 0),
                "plan_cached": attrs.get("plan_cached", False),
                "backend": attrs.get("backend", ""),
                "error": event.get("error"),
            }
    for event in span_events:
        parent = (event.get("run"), event.get("parent"))
        query = query_spans.get(parent)
        if query is None:
            continue
        if event["name"] == "query.plan":
            query["plan_s"] += event["dur"]
        elif event["name"] == "query.prune":
            query["prune_s"] += event["dur"]
        elif event["name"] == "query.refine":
            query["refine_s"] += event["dur"]
    summary.queries = list(query_spans.values())
    # Metrics merging: counters/gauges/histograms are flushed as deltas,
    # so every snapshot folds in.  Sketches cannot be delta-encoded (the
    # state is lossy), so each flush carries the *full* state and only
    # the LAST state per (run, name) counts — then runs merge, in
    # first-appearance order of the run tag (deterministic: the file
    # order is the flush order).
    run_order: list[str] = []
    last_sketches: dict[tuple[str, str], dict] = {}
    for event in events:
        if event.get("type") == "metrics":
            snapshot = dict(event.get("snapshot", {}))
            sketches = snapshot.pop("sketches", {})
            run = str(event.get("run"))
            if run not in run_order:
                run_order.append(run)
            for name, state in sketches.items():
                last_sketches[(run, name)] = state
            summary.registry.merge_snapshot(snapshot)
        elif event.get("type") == "slow_query":
            summary.slow_queries.append(event)
    for run in run_order:
        for (state_run, name) in sorted(last_sketches):
            if state_run == run:
                state = last_sketches[(state_run, name)]
                summary.registry.sketch(name, k=int(state["k"])).merge(state)
    return summary


def summarize_trace_file(path: str, strict: bool = False) -> TraceSummary:
    events, skipped = scan_trace(path, strict=strict)
    summary = summarize_trace(events)
    summary.skipped_records = skipped
    summary.registry.sync_counter("trace.skipped_records", skipped)
    return summary


def format_trace_report(summary: TraceSummary, top: int = 10) -> str:
    """The human-readable breakdown ``repro trace`` prints."""
    lines: list[str] = []
    phases = summary.phase_seconds()
    if phases:
        total = sum(phases.values())
        lines.append("build phases (aggregate CPU-seconds):")
        for phase, seconds in phases.items():
            share = seconds / total if total else 0.0
            lines.append(f"  {phase:8s} {seconds:10.4f}s  {share:6.1%}")
        lines.append(f"  {'total':8s} {total:10.4f}s")
    batches = summary.batch_size_histogram()
    if batches:
        histogram = " ".join(
            f"{size}x{count}" for size, count in sorted(batches.items())
        )
        lines.append(f"eigen batch sizes (matrices x stacked solves): {histogram}")
    cache = summary.cache_rates()
    lines.append(
        "caches: spectral "
        f"{cache['spectral_cache_hits']:.0f}/"
        f"{cache['spectral_cache_hits'] + cache['spectral_cache_misses']:.0f} "
        f"hits ({cache['spectral_cache_hit_rate']:.1%}), plan "
        f"{cache['plan_cache_hits']:.0f}/"
        f"{cache['plan_cache_hits'] + cache['plan_cache_misses']:.0f} "
        f"hits ({cache['plan_cache_hit_rate']:.1%})"
    )
    if summary.queries:
        lines.append(
            f"queries: {len(summary.queries)} traced; "
            f"top {min(top, len(summary.queries))} slowest:"
        )
        lines.append(
            f"  {'total':>9s} {'plan':>9s} {'prune':>9s} {'refine':>9s} "
            f"{'cdt':>6s} {'rst':>6s}  source"
        )
        for query in summary.slowest_queries(top):
            cached = "+" if query["plan_cached"] else " "
            lines.append(
                f"  {query['total_s'] * 1e3:8.2f}ms {query['plan_s'] * 1e3:7.2f}ms{cached} "
                f"{query['prune_s'] * 1e3:7.2f}ms {query['refine_s'] * 1e3:7.2f}ms "
                f"{query['candidates']:6d} {query['results']:6d}  {query['source']}"
            )
    quantiles = {
        # The table renders milliseconds; non-time sketches (e.g. the
        # per-doc entry-count distribution) stay in the JSON dump only.
        name: stats
        for name, stats in summary.latency_quantiles().items()
        if name.endswith("seconds")
    }
    if quantiles:
        lines.append("latency quantiles (from merged sketches):")
        lines.append(
            f"  {'series':<24s} {'p50 ms':>9s} {'p95 ms':>9s} "
            f"{'p99 ms':>9s} {'max ms':>9s} {'n':>7s}  err"
        )
        for name, stats in quantiles.items():
            lines.append(
                f"  {name:<24s} {stats['p50'] * 1e3:9.3f} "
                f"{stats['p95'] * 1e3:9.3f} {stats['p99'] * 1e3:9.3f} "
                f"{stats['max'] * 1e3:9.3f} {stats['count']:7d}  "
                f"±{stats['rank_error_bound']:.4f}"
            )
    epochs = summary.epoch_counters()
    if epochs:
        parts = [
            f"{name[len('epoch.'):]} {value:.0f}"
            for name, value in sorted(epochs.items())
        ]
        lines.append("epochs: " + ", ".join(parts))
    if summary.slow_queries:
        lines.append(
            f"slow-query exemplars: {len(summary.slow_queries)} captured "
            "(repro trace --slow for details)"
        )
    if summary.span_stats:
        lines.append("spans:")
        for name, stats in sorted(summary.span_stats.items()):
            lines.append(
                f"  {name:24s} x{stats['count']:<6d} "
                f"total {stats['total_s']:.4f}s  max {stats['max_s']:.4f}s"
            )
    if summary.orphan_spans:
        lines.append(f"warning: {summary.orphan_spans} orphan span(s) in trace")
    if summary.skipped_records:
        lines.append(
            f"warning: {summary.skipped_records} malformed record(s) skipped"
        )
    return "\n".join(lines)


def format_slow_queries(summary: TraceSummary, top: int = 10) -> str:
    """The ``repro trace --slow`` view: captured exemplars with their
    phase split, epoch pin, and span-subtree size."""
    if not summary.slow_queries:
        return "no slow-query exemplars captured"
    lines = [f"slow-query exemplars ({len(summary.slow_queries)} captured):"]
    ordered = sorted(
        summary.slow_queries, key=lambda e: -e.get("seconds", 0.0)
    )[:top]
    for entry in ordered:
        epoch = entry.get("epoch") or {}
        epoch_bit = (
            f"epoch {epoch.get('epoch')}" if "epoch" in epoch else
            f"epochs {epoch.get('vector')}" if "vector" in epoch else "epoch ?"
        )
        threshold = entry.get("threshold_s")
        lines.append(
            f"  {entry.get('seconds', 0.0) * 1e3:8.2f}ms "
            f"(plan {entry.get('plan_s', 0.0) * 1e3:.2f} / "
            f"prune {entry.get('prune_s', 0.0) * 1e3:.2f} / "
            f"refine {entry.get('refine_s', 0.0) * 1e3:.2f}) "
            f"cdt {entry.get('candidates', 0)} rst {entry.get('results', 0)} "
            f"{entry.get('backend', '?')}  {entry.get('source', '<twig>')}"
        )
        lines.append(
            f"      {epoch_bit}, {len(entry.get('spans', []))} span(s), "
            + (
                f"threshold {threshold * 1e3:.2f}ms"
                if threshold is not None else "fixed capture"
            )
        )
    return "\n".join(lines)

"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single source of truth for the repo's operational
numbers (DESIGN.md §10).  The older instrumentation islands —
:class:`~repro.core.construction.PhaseTimings`,
:class:`~repro.core.index.BuildReport`,
:class:`~repro.core.metrics.QueryMetricsLog` — are *views* over a
registry: they read and write named instruments here instead of keeping
parallel sums, so one snapshot answers "where did the build spend its
time", "what is the spectral-cache hit rate", and "how many candidates
did each pruning backend produce" at once.

Design constraints:

* **Zero dependencies** — plain Python objects, JSON-friendly
  snapshots.
* **Cheap writes** — an instrument is fetched once
  (:meth:`MetricsRegistry.counter` get-or-creates) and then updated by
  attribute arithmetic; no locks (CPython attribute updates are
  GIL-atomic enough for the single-writer-per-process usage here, and
  cross-process aggregation goes through :meth:`merge_snapshot`).
* **Mergeable** — worker processes ship :meth:`snapshot` dicts back to
  the coordinator, which folds them in deterministically (counters and
  histogram buckets add; gauges take the last write).

Metric names are dotted paths (``build.phase_seconds.eigen``,
``query.plan_cache.hits``); the conventional names used across the
pipelines are collected in DESIGN.md §10.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.obs.sketch import DEFAULT_SKETCH_K, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "DEFAULT_LATENCY_BOUNDS",
]

#: Fixed bucket upper bounds (seconds) for latency histograms — a
#: log-ish ladder from 0.1 ms to 10 s; everything above the last bound
#: lands in the implicit +inf bucket.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically growing number (int or float adds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (sizes, rates, configuration)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets are derivable
    from the per-bucket counts in the snapshot)."""

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        #: one count per bound, plus the trailing +inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` (``n`` times, for bulk sync)."""
        self.counts[bisect_right(self.bounds, value)] += n
        self.count += n
        self.sum += value * n

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """Named instruments, get-or-create semantics.

    A process typically has one registry per :class:`~repro.obs.Obs`
    context (one per index, plus private ones inside standalone views);
    instruments are identified by name within their registry.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sketches: dict[str, QuantileSketch] = {}

    # ------------------------------------------------------------------ #
    # Instruments
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, requested {tuple(bounds)}"
            )
        return instrument

    def sketch(self, name: str, k: int = DEFAULT_SKETCH_K) -> QuantileSketch:
        """Get-or-create a mergeable quantile sketch (DESIGN.md §13).

        Unlike :meth:`histogram`, a sketch derives *any* quantile with a
        bounded rank error — the instrument the serving layer's p50/p99
        reporting reads.  Capacity conflicts raise, like histogram
        bound conflicts, because two capacities cannot merge.
        """
        instrument = self._sketches.get(name)
        if instrument is None:
            instrument = self._sketches[name] = QuantileSketch(name, k=k)
        elif instrument.k != k:
            raise ValueError(
                f"sketch {name!r} already registered with k={instrument.k}, "
                f"requested k={k}"
            )
        return instrument

    def sketch_names(self) -> list[str]:
        """The registered sketch names, sorted."""
        return sorted(self._sketches)

    def sync_counter(self, name: str, value: float) -> None:
        """Catch counter ``name`` up to an externally accumulated total.

        Used by views that keep their own running sums (e.g.
        :class:`~repro.core.construction.ConstructionStats`) and publish
        them at phase boundaries: the counter is bumped by the delta, so
        repeated publishes of a growing total are idempotent.  The delta
        is clamped at zero — counters are monotonic, so a source total
        that was externally reset (``reset_stats()``) can never drive
        the registry backwards; publishes then no-op until the total
        re-passes the value already recorded.
        """
        instrument = self.counter(name)
        if value > instrument.value:
            instrument.inc(value - instrument.value)

    # ------------------------------------------------------------------ #
    # Snapshots and merging
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
            "sketches": {
                name: s.as_dict() for name, s in sorted(self._sketches.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins, the conventional gauge merge); sketches
        merge (replay-exact for uncompacted inputs — see
        :class:`~repro.obs.sketch.QuantileSketch`).  Merge the incoming
        snapshots in a deterministic order (chunk order for worker
        absorbs, shard order for sharded aggregation) and the merged
        sketch state is deterministic too.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, dump in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name, tuple(dump["bounds"]))
            for i, count in enumerate(dump["counts"]):
                instrument.counts[i] += count
            instrument.count += dump["count"]
            instrument.sum += dump["sum"]
        for name, dump in snapshot.get("sketches", {}).items():
            self.sketch(name, k=int(dump["k"])).merge(dump)

    def merge_sketch_states(self, sketches: dict) -> None:
        """Fold a bare ``{name: sketch state}`` mapping (the worker
        absorb payload) into this registry's sketches."""
        for name, dump in sketches.items():
            self.sketch(name, k=int(dump["k"])).merge(dump)

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges)
            + len(self._histograms) + len(self._sketches)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms, "
            f"{len(self._sketches)} sketches)"
        )

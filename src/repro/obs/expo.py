"""Metrics exposition: render a registry snapshot as Prometheus text
or structured JSON (DESIGN.md §13).

Both renderers consume the plain-dict form
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` produces — which
is also what flushed traces carry — so the same code path serves a live
registry (the future daemon's ``/metrics`` endpoint), a saved trace
(``repro metrics trace.jsonl``), and a freshly opened index
(``repro metrics INDEX_DIR``).

Prometheus mapping:

* counters  -> ``# TYPE <name> counter`` samples (dots become
  underscores; Prometheus names cannot carry ``.``),
* gauges    -> ``gauge`` samples,
* histograms-> the conventional cumulative ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` triplet,
* sketches  -> ``summary``-style ``{quantile="..."}`` samples derived
  from the sketch (p50/p90/p95/p99 by default) plus ``_sum`` /
  ``_count`` — the exposition every scrape-side dashboard understands.
"""

from __future__ import annotations

import json
import re

__all__ = [
    "DEFAULT_QUANTILES",
    "render_prometheus",
    "render_json",
    "snapshot_from_trace",
]

#: quantiles exported for every sketch.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    flat = _NAME_RE.sub("_", name)
    return f"{namespace}_{flat}" if namespace else flat


def _fmt(value: float) -> str:
    """Prometheus sample formatting (repr keeps full float precision;
    integers shed their trailing ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sketch_quantiles(dump: dict, qs) -> list[tuple[float, float]]:
    """Probe a serialized sketch state without rehydrating the class
    registry-side (the renderer works on plain snapshot dicts)."""
    from repro.obs.sketch import QuantileSketch

    sketch = QuantileSketch.from_dict("expo", dump)
    return list(zip(qs, sketch.quantiles(qs)))


def render_prometheus(
    snapshot: dict,
    namespace: str = "repro",
    quantiles=DEFAULT_QUANTILES,
) -> str:
    """The Prometheus text exposition format (version 0.0.4) of one
    registry snapshot."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, dump in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(dump["bounds"], dump["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        cumulative += dump["counts"][len(dump["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(dump['sum'])}")
        lines.append(f"{metric}_count {dump['count']}")
    for name, dump in sorted(snapshot.get("sketches", {}).items()):
        metric = _prom_name(name, namespace)
        lines.append(f"# TYPE {metric} summary")
        if dump.get("count"):
            for q, value in _sketch_quantiles(dump, quantiles):
                lines.append(
                    f'{metric}{{quantile="{_fmt(q)}"}} {_fmt(value)}'
                )
        lines.append(f"{metric}_sum {_fmt(dump.get('sum', 0.0))}")
        lines.append(f"{metric}_count {dump.get('count', 0)}")
    return "\n".join(lines) + "\n"


def render_json(
    snapshot: dict,
    quantiles=DEFAULT_QUANTILES,
    indent: int | None = 2,
) -> str:
    """Structured JSON exposition: counters/gauges pass through,
    histograms keep their buckets, sketches are *derived* — quantiles,
    mean, extremes, and the rank-error bound — rather than raw levels,
    because consumers of this format want numbers, not sketch state."""
    from repro.obs.sketch import QuantileSketch

    sketches: dict[str, dict] = {}
    for name, dump in sorted(snapshot.get("sketches", {}).items()):
        sketch = QuantileSketch.from_dict(name, dump)
        derived: dict = {
            "count": sketch.count,
            "sum": sketch.sum,
            "rank_error_bound": sketch.rank_error_bound(),
        }
        if sketch.count:
            derived.update(
                min=sketch.min,
                max=sketch.max,
                mean=sketch.sum / sketch.count,
                quantiles={
                    _fmt(q): value
                    for q, value in zip(quantiles, sketch.quantiles(quantiles))
                },
            )
        sketches[name] = derived
    payload = {
        "counters": dict(sorted(snapshot.get("counters", {}).items())),
        "gauges": dict(sorted(snapshot.get("gauges", {}).items())),
        "histograms": dict(sorted(snapshot.get("histograms", {}).items())),
        "sketches": sketches,
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def snapshot_from_trace(path: str) -> dict:
    """The merged registry snapshot of a JSONL trace artifact — the
    snapshot-file mode of ``repro metrics``."""
    from repro.obs.report import summarize_trace_file

    return summarize_trace_file(path).registry.snapshot()

"""repro.obs — unified tracing + metrics for the build and query
pipelines (DESIGN.md §10).

One :class:`Obs` context bundles the two observability substrates:

* a :class:`~repro.obs.tracer.Tracer` producing hierarchical spans that
  serialize to a JSONL trace file and merge deterministically across
  the parallel worker pools, and
* a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges,
  and fixed-bucket histograms that the legacy instrumentation views
  (``PhaseTimings``, ``BuildReport``, ``QueryMetricsLog``) are now
  backed by.

Every :class:`~repro.core.index.FixIndex` owns an ``Obs`` (configured
via ``FixIndexConfig.obs``); processors default to their index's.  The
registry is always live — it is the bookkeeping substrate, and writing
a counter is about as cheap as the ``+=`` it replaced — while span
*tracing* is off unless requested, with a cached no-op span singleton
keeping disabled-mode overhead under the 2 % budget measured by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.resources import ResourceSampler
from repro.obs.sketch import DEFAULT_SKETCH_K, QuantileSketch
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    read_trace,
    scan_trace,
    write_trace,
)
from repro.obs.window import RollingWindow

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SKETCH_K",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Obs",
    "ObsConfig",
    "QuantileSketch",
    "ResourceSampler",
    "RollingWindow",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "read_trace",
    "scan_trace",
    "write_trace",
]


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Observability settings carried by ``FixIndexConfig.obs``.

    Attributes:
        trace: capture spans (build and query) for JSONL export.  The
            metrics registry is live regardless — only span capture has
            a cost worth gating.
        trace_path: default path ``Obs.flush()`` writes to when the
            caller gives none (the CLI's ``--trace PATH``).
    """

    trace: bool = False
    trace_path: str | None = None


class Obs:
    """A tracer + registry pair scoped to one index (or one worker)."""

    def __init__(
        self,
        trace: bool = False,
        proc: str = "main",
        trace_path: str | None = None,
    ) -> None:
        self.tracer = Tracer(enabled=trace, proc=proc)
        self.registry = MetricsRegistry()
        self.trace_path = trace_path
        #: registry state at the last flush, so repeated flushes emit
        #: deltas and a merged trace never double-counts a counter.
        self._flushed_snapshot: dict | None = None

    @classmethod
    def from_config(cls, config: "ObsConfig | None", proc: str = "main") -> "Obs":
        if config is None:
            return cls(trace=False, proc=proc)
        return cls(trace=config.trace, proc=proc, trace_path=config.trace_path)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def span(self, name: str, **attrs):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)

    def flush(self, path: str | None = None, append: bool = False) -> int:
        """Write buffered spans plus a metrics snapshot to JSONL.

        Returns the number of lines written (0 when tracing is off or
        no path is known).  The buffer is cleared after a successful
        write, and the metrics snapshot only carries the *delta* since
        the previous flush (the registry keeps accumulating), so
        interleaved ``build --trace`` / ``query --trace`` invocations —
        or several flushes from one process — can append into one
        artifact without ``repro trace`` double-counting anything.
        """
        path = path or self.trace_path
        if path is None or not self.tracer.enabled:
            return 0
        snapshot = self.registry.snapshot()
        delta = (
            snapshot
            if self._flushed_snapshot is None
            else _snapshot_delta(self._flushed_snapshot, snapshot)
        )
        events = list(self.tracer.events)
        events.append(
            {
                "type": "metrics",
                "run": self.tracer.run,
                "proc": self.tracer.proc,
                "snapshot": delta,
            }
        )
        written = write_trace(events, path, append=append)
        self.tracer.clear()
        self._flushed_snapshot = snapshot
        return written


def _snapshot_delta(prev: dict, cur: dict) -> dict:
    """What changed between two registry snapshots of one process.

    Counters and histograms diff (so ``merge_snapshot`` over a sequence
    of flushed deltas reconstructs the final totals exactly); gauges are
    point-in-time values and pass through unchanged — merge is
    last-write-wins for them anyway.  Sketches cannot be diffed (the
    state is lossy), so each flush carries the *full* sketch state and
    trace summarization keeps only the last state per (run, name)
    before merging across runs — same net effect as the counter deltas.
    """
    prev_counters = prev.get("counters", {})
    prev_histograms = prev.get("histograms", {})
    counters = {
        name: value - prev_counters.get(name, 0.0)
        for name, value in cur["counters"].items()
    }
    histograms: dict[str, dict] = {}
    for name, dump in cur["histograms"].items():
        before = prev_histograms.get(name)
        if before is None or before["bounds"] != dump["bounds"]:
            histograms[name] = dump
            continue
        histograms[name] = {
            "bounds": dump["bounds"],
            "counts": [
                now - then for now, then in zip(dump["counts"], before["counts"])
            ],
            "count": dump["count"] - before["count"],
            "sum": dump["sum"] - before["sum"],
        }
    return {
        "counters": counters,
        "gauges": dict(cur["gauges"]),
        "histograms": histograms,
        "sketches": dict(cur.get("sketches", {})),
    }

"""Slow-query exemplar capture (DESIGN.md §13).

Aggregates tell you p99 moved; an *exemplar* tells you why.  The
:class:`SlowQueryLog` is a bounded ring of full-fidelity records for
queries whose total latency crossed a threshold: the per-phase split,
the span subtree the tracer captured for exactly that query, and the
epoch (vector) the query pinned — enough to reproduce the plan against
the same snapshot.

Thresholding is tail-based: a fixed ``threshold`` (seconds) when
configured, otherwise *quantile-derived* — the log reads the
``query.seconds`` sketch of the registry it is attached to and captures
anything beyond its ``quantile`` (default p99), once at least
``min_count`` queries have been observed (before that, nothing is
"slow" in a way worth an exemplar).

Persistence is a bounded JSONL ring: records append to ``path``; when
the file grows past ``2 * capacity`` records it is compacted back to
the newest ``capacity`` (so the artifact's size is bounded no matter
how long the process serves).  Each line is a self-contained
``{"type": "slow_query", ...}`` object — the same shape embedded in
trace artifacts — so ``repro trace --slow`` reads either file.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Tail-based bounded exemplar ring for slow queries.

    Args:
        path: JSONL ring file (``None`` keeps the ring in memory only).
        capacity: maximum retained exemplars (ring semantics).
        threshold: fixed slow threshold in seconds; ``None`` derives it
            from the registry sketch per :attr:`quantile`.
        quantile: the tail cut when deriving (default 0.99).
        min_count: observations the sketch must hold before a derived
            threshold activates.
        registry: the :class:`~repro.obs.registry.MetricsRegistry`
            whose ``query.seconds`` sketch drives derivation (the
            processor attaches its own when left ``None``).
    """

    def __init__(
        self,
        path: str | None = None,
        capacity: int = 64,
        threshold: float | None = None,
        quantile: float = 0.99,
        min_count: int = 50,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"need a positive capacity, got {capacity}")
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.path = path
        self.capacity = capacity
        self.threshold = threshold
        self.quantile = quantile
        self.min_count = min_count
        self.registry = registry
        self.entries: deque = deque(maxlen=capacity)
        #: queries considered / captured (exported via ``publish``).
        self.considered = 0
        self.captured = 0
        self._file_records = self._existing_records()

    def _existing_records(self) -> int:
        if not self.path or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, encoding="utf-8") as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    # ------------------------------------------------------------------ #
    # Thresholding
    # ------------------------------------------------------------------ #

    def current_threshold(self) -> float | None:
        """The active slow threshold in seconds, or ``None`` while a
        derived threshold has not activated yet."""
        if self.threshold is not None:
            return self.threshold
        if self.registry is None:
            return None
        sketch = self.registry.sketch("query.seconds")
        if sketch.count < self.min_count:
            return None
        return sketch.quantile(self.quantile)

    def is_slow(self, seconds: float) -> bool:
        """Whether a query of ``seconds`` total latency should be
        captured (counts the consideration either way)."""
        self.considered += 1
        threshold = self.current_threshold()
        return threshold is not None and seconds > threshold

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #

    def record(
        self,
        result,
        source: str,
        spans: list[dict] | None = None,
        epoch: dict | None = None,
    ) -> dict:
        """Capture one slow query exemplar from a ``FixQueryResult``-
        shaped object; returns the record appended to the ring."""
        entry = {
            "type": "slow_query",
            "ts": time.time(),
            "source": source,
            "seconds": result.plan_seconds + result.prune_seconds
            + result.refine_seconds,
            "plan_s": result.plan_seconds,
            "prune_s": result.prune_seconds,
            "refine_s": result.refine_seconds,
            "plan_cached": result.plan_cached,
            "candidates": result.candidate_count,
            "results": result.result_count,
            "documents_fetched": result.documents_fetched,
            "backend": result.backend,
            "workers": result.workers,
            "pushdown": getattr(result, "pushdown", False),
            "threshold_s": self.current_threshold(),
            "epoch": epoch or {},
            "spans": spans or [],
        }
        self.entries.append(entry)
        self.captured += 1
        self._persist(entry)
        return entry

    def _persist(self, entry: dict) -> None:
        if not self.path:
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._file_records += 1
        if self._file_records > 2 * self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the ring file down to its newest ``capacity``
        records (bounded artifact size)."""
        assert self.path is not None
        kept: deque = deque(maxlen=self.capacity)
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    kept.append(line)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in kept:
                handle.write(line + "\n")
        os.replace(tmp, self.path)
        self._file_records = len(kept)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def publish(self, registry, prefix: str = "slowlog.") -> None:
        """Delta-sync capture counters into a registry."""
        registry.sync_counter(prefix + "considered", self.considered)
        registry.sync_counter(prefix + "captured", self.captured)
        threshold = self.current_threshold()
        if threshold is not None:
            registry.gauge(prefix + "threshold_seconds").set(threshold)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlowQueryLog({self.captured}/{self.considered} captured, "
            f"ring={len(self.entries)}/{self.capacity})"
        )

"""A B+tree over pager pages.

Design notes:

* **Byte keys.** Keys and values are opaque byte strings; ordering is
  memcmp.  Composite-key encodings live in :mod:`repro.btree.keys`.
* **Duplicates.** Equal keys may appear many times (FIX inserts one entry
  per element, and many elements share a feature key on regular data).
  Inserts route equal keys right; scans route left, so a range scan
  starting at ``k`` always finds the first of ``k``'s duplicates even
  when a split straddled them.
* **Buffering.** Nodes are kept as parsed Python objects in a node table
  and serialized to their pages on :meth:`flush` (or when persisting).
  The tree counts node visits (``stats.node_visits``) as the
  implementation-independent I/O proxy used by the benchmarks; after a
  flush, every node occupies exactly one page, so ``size_bytes`` is a
  faithful on-disk footprint.
* **Split policy.** A node splits when its serialized form no longer fits
  a page; the split is by entry count, which is near-byte-balanced
  because FIX keys are similar lengths.
* **Deletes** are lazy (no rebalancing): the workloads here are
  build-once/query-many, exactly the paper's setting, but delete support
  keeps the structure honest as a general index.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import BTreeError
from repro.btree.node import (
    NO_LEAF,
    InternalNode,
    LeafNode,
    deserialize_node,
)
from repro.storage.pager import Pager


@dataclass
class BTreeStats:
    """Operation counters (monotonic)."""

    node_visits: int = 0
    leaf_scans: int = 0
    splits: int = 0
    inserts: int = 0
    deletes: int = 0
    node_evictions: int = 0

    def snapshot(self) -> "BTreeStats":
        return BTreeStats(
            self.node_visits,
            self.leaf_scans,
            self.splits,
            self.inserts,
            self.deletes,
            self.node_evictions,
        )

    def delta(self, before: "BTreeStats") -> "BTreeStats":
        return BTreeStats(
            self.node_visits - before.node_visits,
            self.leaf_scans - before.leaf_scans,
            self.splits - before.splits,
            self.inserts - before.inserts,
            self.deletes - before.deletes,
            self.node_evictions - before.node_evictions,
        )

    def add(self, other: "BTreeStats") -> None:
        """Fold another tree's counters into this one (cross-shard sums)."""
        self.node_visits += other.node_visits
        self.leaf_scans += other.leaf_scans
        self.splits += other.splits
        self.inserts += other.inserts
        self.deletes += other.deletes
        self.node_evictions += other.node_evictions

    @classmethod
    def combine(cls, stats: "list[BTreeStats] | tuple[BTreeStats, ...]") -> "BTreeStats":
        """Sum of several trees' counters."""
        total = cls()
        for item in stats:
            total.add(item)
        return total

    def publish(self, registry, prefix: str = "btree.") -> None:
        """Sync these monotonic totals into a ``repro.obs`` registry
        (idempotent delta-sync; see ``MetricsRegistry.sync_counter``)."""
        registry.sync_counter(prefix + "node_visits", self.node_visits)
        registry.sync_counter(prefix + "leaf_scans", self.leaf_scans)
        registry.sync_counter(prefix + "splits", self.splits)
        registry.sync_counter(prefix + "inserts", self.inserts)
        registry.sync_counter(prefix + "deletes", self.deletes)
        registry.sync_counter(prefix + "node_evictions", self.node_evictions)


@dataclass
class _Slot:
    node: LeafNode | InternalNode
    dirty: bool = field(default=True)


class BPlusTree:
    """B+tree with duplicate keys over a :class:`Pager`.

    Args:
        pager: backing pager (in-memory by default).
        node_cache: maximum parsed nodes kept resident, or ``None`` for
            an unbounded table (the historical behavior — right for
            in-memory trees, where evicting would only add re-parse
            work).  With a bound, cold nodes are LRU-evicted: dirty
            ones are serialized to their page first, so with a
            file-backed pager the tree operates out of core.
    """

    def __init__(
        self, pager: Pager | None = None, node_cache: int | None = None
    ) -> None:
        if node_cache is not None and node_cache < 1:
            raise BTreeError(f"node_cache must be >= 1, got {node_cache}")
        self._pager = pager if pager is not None else Pager()
        self.stats = BTreeStats()
        self._nodes: "OrderedDict[int, _Slot]" = OrderedDict()
        self._node_cache = node_cache
        # Mutating operations hold parsed node objects as locals across
        # nested node-table calls; eviction is deferred while > 0 so a
        # held node cannot be serialized mid-mutation (its slot must
        # also stay resident for ``_dirty``).
        self._hold = 0
        self._entry_count = 0
        root = LeafNode()
        self._root_page = self._adopt(root)
        # Largest key+value pair we accept: a quarter page, so a split of
        # any overfull node always produces two fitting halves.
        self._max_pair = self._pager.page_size // 4

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def pager(self) -> Pager:
        """Backing pager (exposed for size/I/O accounting)."""
        return self._pager

    @property
    def root_page(self) -> int:
        """Current root page id (changes when the root splits)."""
        return self._root_page

    def __len__(self) -> int:
        return self._entry_count

    def height(self) -> int:
        """Levels from root to leaf (a lone leaf root has height 1)."""
        levels = 1
        node = self._node(self._root_page, count=False)
        while isinstance(node, InternalNode):
            levels += 1
            node = self._node(node.children[0], count=False)
        return levels

    def node_count(self) -> int:
        """Number of *resident* (parsed) nodes.  Equals the page count
        for a freshly built tree; a reopened tree faults nodes in
        lazily, so use :meth:`size_bytes` for the on-disk footprint."""
        return len(self._nodes)

    def size_bytes(self) -> int:
        """On-disk footprint: every allocated page (one per node)."""
        return self._pager.size_bytes()

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert one ``(key, value)`` entry; duplicates accumulate."""
        if len(key) + len(value) > self._max_pair:
            raise BTreeError(
                f"entry of {len(key) + len(value)} bytes exceeds the "
                f"{self._max_pair}-byte pair limit"
            )
        self.stats.inserts += 1
        self._hold += 1
        try:
            split = self._insert_into(self._root_page, key, value)
            if split is not None:
                separator, right_page = split
                new_root = InternalNode([separator], [self._root_page, right_page])
                self._root_page = self._adopt(new_root)
        finally:
            self._hold -= 1
        self._evict_nodes()
        self._entry_count += 1

    def _insert_into(
        self, page_id: int, key: bytes, value: bytes
    ) -> tuple[bytes, int] | None:
        """Recursive insert; returns ``(separator, new_right_page)`` when
        the target node split, else ``None``."""
        node = self._node(page_id)
        if isinstance(node, LeafNode):
            position = bisect_right(node.keys, key)
            node.keys.insert(position, key)
            node.values.insert(position, value)
            self._dirty(page_id)
            if node.serialized_size() > self._pager.page_size:
                return self._split_leaf(page_id, node)
            return None
        child_index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right_page = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right_page)
        self._dirty(page_id)
        if node.serialized_size() > self._pager.page_size:
            return self._split_internal(page_id, node)
        return None

    def _split_leaf(self, page_id: int, node: LeafNode) -> tuple[bytes, int]:
        self.stats.splits += 1
        middle = len(node.keys) // 2
        right = LeafNode(node.keys[middle:], node.values[middle:], node.next_leaf)
        right_page = self._adopt(right)
        del node.keys[middle:]
        del node.values[middle:]
        node.next_leaf = right_page
        self._dirty(page_id)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int, node: InternalNode) -> tuple[bytes, int]:
        self.stats.splits += 1
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = InternalNode(node.keys[middle + 1 :], node.children[middle + 1 :])
        right_page = self._adopt(right)
        del node.keys[middle:]
        del node.children[middle + 1 :]
        self._dirty(page_id)
        return separator, right_page

    # ------------------------------------------------------------------ #
    # Bulk load
    # ------------------------------------------------------------------ #

    @classmethod
    def bulk_load(
        cls,
        pairs: list[tuple[bytes, bytes]],
        pager: Pager | None = None,
        fill_factor: float = 0.9,
        node_cache: int | None = None,
    ) -> "BPlusTree":
        """Build a tree bottom-up from **key-sorted** pairs.

        Leaves are packed to ``fill_factor`` of a page and chained, then
        internal levels are packed the same way — the standard sorted
        bulk load, used by the clustered index construction (whose
        entries are already sorted for the copy store).

        A leaf is installed into the node table only once its
        ``next_leaf`` link is final (the successor's page is allocated
        the moment a leaf closes), so a bounded ``node_cache`` may
        evict it immediately — page allocation order, and therefore the
        on-disk layout, is identical to the unbounded build.

        Raises:
            BTreeError: when ``pairs`` is not sorted by key.
        """
        tree = cls(pager, node_cache=node_cache)
        if not pairs:
            return tree
        for i in range(len(pairs) - 1):
            if pairs[i][0] > pairs[i + 1][0]:
                raise BTreeError("bulk_load requires key-sorted input")
        budget = int(tree._pager.page_size * fill_factor)

        # Pack leaves left to right.  ``full`` defers closing an
        # overfull leaf until the next pair proves a successor exists,
        # so the tail leaf keeps ``next_leaf = NO_LEAF`` without ever
        # allocating a page for an empty successor.
        level: list[tuple[int, bytes]] = []  # (page_id, first key) per node
        current = LeafNode()
        current_page = tree._pager.allocate()
        full = False
        for key, value in pairs:
            if len(key) + len(value) > tree._max_pair:
                raise BTreeError(
                    f"entry of {len(key) + len(value)} bytes exceeds the "
                    f"{tree._max_pair}-byte pair limit"
                )
            if full:
                next_page = tree._pager.allocate()
                current.next_leaf = next_page
                level.append((current_page, current.keys[0]))
                tree._install(current_page, current)
                current = LeafNode()
                current_page = next_page
                full = False
            current.keys.append(key)
            current.values.append(value)
            if current.serialized_size() > budget:
                full = True
        level.append((current_page, current.keys[0]))
        tree._install(current_page, current)

        # Reuse the root page allocated by __init__ for the final root.
        spare_root_page = tree._root_page

        # Build internal levels.
        while len(level) > 1:
            parents: list[tuple[int, bytes]] = []
            index = 0
            while index < len(level):
                node = InternalNode([], [level[index][0]])
                first_key = level[index][1]
                index += 1
                while index < len(level):
                    node.keys.append(level[index][1])
                    node.children.append(level[index][0])
                    if node.serialized_size() > budget:
                        node.keys.pop()
                        node.children.pop()
                        break
                    index += 1
                parents.append((tree._adopt(node), first_key))
            level = parents
        final_page, _ = level[0]
        # Swap the built root into the pre-allocated root page so open()
        # semantics stay simple (root never moves after a bulk load).
        # With a bounded node table, the final node may already have
        # been evicted to its page; fault it back for the move.
        slot = tree._nodes.pop(final_page, None)
        if slot is not None:
            root_node = slot.node
        else:
            root_node = deserialize_node(tree._pager.read(final_page))
        tree._install(spare_root_page, root_node)
        tree._root_page = spare_root_page
        tree._entry_count = len(pairs)
        return tree

    # ------------------------------------------------------------------ #
    # Lookup and scans
    # ------------------------------------------------------------------ #

    def search(self, key: bytes) -> list[bytes]:
        """All values stored under exactly ``key``."""
        return [value for _, value in self.scan(start=key, end=key + b"\x00")]

    def scan(
        self,
        start: bytes | None = None,
        end: bytes | None = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with ``start <= key < end`` in order.

        ``None`` bounds are open.  This walks the linked leaf chain, so a
        scan's node visits are its leaf touches plus one root-to-leaf
        descent.
        """
        page_id = self._leaf_for(start)
        position = None
        while page_id != NO_LEAF:
            node = self._node(page_id)
            if not isinstance(node, LeafNode):  # pragma: no cover - defensive
                raise BTreeError(f"page {page_id} in leaf chain is not a leaf")
            self.stats.leaf_scans += 1
            if position is None:
                position = 0 if start is None else bisect_left(node.keys, start)
            while position < len(node.keys):
                key = node.keys[position]
                if end is not None and key >= end:
                    return
                yield key, node.values[position]
                position += 1
            page_id = node.next_leaf
            position = 0

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Every entry in key order."""
        return self.scan()

    def _leaf_for(self, key: bytes | None) -> int:
        """Descend to the leaf that may contain the first key >= ``key``."""
        page_id = self._root_page
        node = self._node(page_id)
        while isinstance(node, InternalNode):
            if key is None:
                page_id = node.children[0]
            else:
                # bisect_left: when key equals a separator, go left — a
                # split may have left equal keys in the left sibling.
                page_id = node.children[bisect_left(node.keys, key)]
            node = self._node(page_id)
        return page_id

    # ------------------------------------------------------------------ #
    # Delete
    # ------------------------------------------------------------------ #

    def delete(self, key: bytes, value: bytes | None = None) -> bool:
        """Remove one entry with ``key`` (and ``value``, when given).

        Lazy deletion: nodes may underflow; structure is untouched.
        Returns ``True`` when an entry was removed.
        """
        self._hold += 1
        try:
            return self._delete_held(key, value)
        finally:
            self._hold -= 1
            self._evict_nodes()

    def _delete_held(self, key: bytes, value: bytes | None) -> bool:
        page_id = self._leaf_for(key)
        while page_id != NO_LEAF:
            node = self._node(page_id)
            assert isinstance(node, LeafNode)
            position = bisect_left(node.keys, key)
            while position < len(node.keys) and node.keys[position] == key:
                if value is None or node.values[position] == value:
                    del node.keys[position]
                    del node.values[position]
                    self._dirty(page_id)
                    self._entry_count -= 1
                    self.stats.deletes += 1
                    return True
                position += 1
            if position < len(node.keys):
                return False  # passed all duplicates of `key`
            page_id = node.next_leaf
        return False

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Serialize every dirty node to its page and flush the pager."""
        for page_id, slot in self._nodes.items():
            if slot.dirty:
                self._pager.write(page_id, slot.node.serialize(self._pager.page_size))
                slot.dirty = False
        self._pager.flush()

    @classmethod
    def open(
        cls,
        pager: Pager,
        root_page: int,
        entry_count: int,
        node_cache: int | None = None,
    ) -> "BPlusTree":
        """Reattach to a tree previously :meth:`flush`\\ ed to ``pager``."""
        if node_cache is not None and node_cache < 1:
            raise BTreeError(f"node_cache must be >= 1, got {node_cache}")
        tree = cls.__new__(cls)
        tree._pager = pager
        tree.stats = BTreeStats()
        tree._nodes = OrderedDict()
        tree._node_cache = node_cache
        tree._hold = 0
        tree._root_page = root_page
        tree._entry_count = entry_count
        tree._max_pair = pager.page_size // 4
        return tree

    # ------------------------------------------------------------------ #
    # Node table
    # ------------------------------------------------------------------ #

    def _adopt(self, node: LeafNode | InternalNode) -> int:
        page_id = self._pager.allocate()
        self._install(page_id, node)
        return page_id

    def _install(self, page_id: int, node: LeafNode | InternalNode) -> None:
        self._nodes[page_id] = _Slot(node, dirty=True)
        self._nodes.move_to_end(page_id)
        self._evict_nodes()

    def _node(self, page_id: int, count: bool = True) -> LeafNode | InternalNode:
        if count:
            self.stats.node_visits += 1
        slot = self._nodes.get(page_id)
        if slot is None:
            node = deserialize_node(self._pager.read(page_id))
            slot = _Slot(node, dirty=False)
            self._nodes[page_id] = slot
            self._evict_nodes()
        else:
            self._nodes.move_to_end(page_id)
        return slot.node

    def _dirty(self, page_id: int) -> None:
        self._nodes[page_id].dirty = True

    def _evict_nodes(self) -> None:
        """Trim the node table to ``node_cache`` entries, coldest first.
        Deferred while a mutating operation holds node objects."""
        if self._node_cache is None or self._hold:
            return
        while len(self._nodes) > self._node_cache:
            page_id, slot = self._nodes.popitem(last=False)
            if slot.dirty:
                self._pager.write(
                    page_id, slot.node.serialize(self._pager.page_size)
                )
            self.stats.node_evictions += 1

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`BTreeError` on
        violation.  Used by tests and available for debugging."""
        # 1. Keys globally sorted along the leaf chain and count matches.
        previous: bytes | None = None
        seen = 0
        page_id = self._leftmost_leaf()
        while page_id != NO_LEAF:
            node = self._node(page_id, count=False)
            assert isinstance(node, LeafNode)
            for key in node.keys:
                if previous is not None and key < previous:
                    raise BTreeError("leaf chain keys out of order")
                previous = key
                seen += 1
            page_id = node.next_leaf
        if seen != self._entry_count:
            raise BTreeError(
                f"entry count {self._entry_count} != {seen} entries in leaves"
            )
        # 2. Separator bounds hold on every internal node.
        self._check_subtree(self._root_page, None, None)

    def _leftmost_leaf(self) -> int:
        page_id = self._root_page
        node = self._node(page_id, count=False)
        while isinstance(node, InternalNode):
            page_id = node.children[0]
            node = self._node(page_id, count=False)
        return page_id

    def _check_subtree(
        self, page_id: int, low: bytes | None, high: bytes | None
    ) -> None:
        node = self._node(page_id, count=False)
        if isinstance(node, LeafNode):
            for key in node.keys:
                if low is not None and key < low:
                    raise BTreeError("leaf key below subtree lower bound")
                if high is not None and key > high:
                    raise BTreeError("leaf key above subtree upper bound")
            return
        keys = node.keys
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise BTreeError("internal node keys out of order")
        for i, child in enumerate(node.children):
            child_low = low if i == 0 else keys[i - 1]
            child_high = high if i == len(keys) else keys[i]
            self._check_subtree(child, child_low, child_high)

"""A page-backed B+tree (the Berkeley DB stand-in).

* :mod:`~repro.btree.keys` — order-preserving byte encodings for the
  composite FIX key ``(root label, λ_max, λ_min)``; byte-wise comparison
  of encoded keys equals lexicographic comparison of the tuples.
* :mod:`~repro.btree.node` — leaf / internal node layouts and their page
  (de)serialization.
* :class:`~repro.btree.tree.BPlusTree` — insert, point lookup, ordered
  range scans over linked leaves, duplicates allowed, lazy delete.
  Nodes live in a parsed-node cache and are serialized to pager pages on
  flush, so page counts and I/O counters reflect a real disk layout.
"""

from repro.btree.keys import (
    decode_feature_key,
    encode_feature_key,
    encode_float,
    decode_float,
    label_upper_bound,
)
from repro.btree.tree import BPlusTree

__all__ = [
    "BPlusTree",
    "decode_feature_key",
    "decode_float",
    "encode_feature_key",
    "encode_float",
    "label_upper_bound",
]

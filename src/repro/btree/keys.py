"""Order-preserving key encodings.

The FIX B-tree key is the tuple ``(root label, λ_max, λ_min)``
(Section 3.4; λ_max is the primary sort component after the label, which
is also what the paper recommends building the optimizer histogram on).
Keys are stored as bytes; the encodings here guarantee that byte-wise
(memcmp) order equals the intended tuple order, so the tree never needs
to decode keys to compare them.

* Labels: UTF-8 bytes, terminated by ``0x00``.  The terminator sorts
  below every continuation byte, so a label is never "between" the keys
  of one of its extensions (``ab`` vs ``abc``).
* Floats: the classic sign-flip trick — for non-negatives set the sign
  bit, for negatives invert all 64 bits.  Total order over ``-inf`` …
  ``+inf`` is preserved, which the all-covering fallback range relies on.
"""

from __future__ import annotations

import struct

from repro.errors import BTreeError

_SIGN_BIT = 1 << 63
_MASK64 = (1 << 64) - 1


def encode_float(value: float) -> bytes:
    """8-byte encoding of a float whose byte order matches numeric order."""
    (bits,) = struct.unpack(">Q", struct.pack(">d", value))
    if bits & _SIGN_BIT:
        bits = ~bits & _MASK64
    else:
        bits |= _SIGN_BIT
    return struct.pack(">Q", bits)


def decode_float(data: bytes) -> float:
    """Inverse of :func:`encode_float`."""
    (bits,) = struct.unpack(">Q", data)
    if bits & _SIGN_BIT:
        bits &= ~_SIGN_BIT & _MASK64
    else:
        bits = ~bits & _MASK64
    (value,) = struct.unpack(">d", struct.pack(">Q", bits))
    return value


def encode_label(label: str) -> bytes:
    """NUL-terminated label bytes.

    Raises:
        BTreeError: if the label contains a NUL (cannot be terminated).
    """
    raw = label.encode("utf-8")
    if b"\x00" in raw:
        raise BTreeError(f"label {label!r} contains NUL and cannot be encoded")
    return raw + b"\x00"


def encode_feature_key(label: str, lmax: float, lmin: float) -> bytes:
    """Composite key ``label || λ_max || λ_min``, order-preserving."""
    return encode_label(label) + encode_float(lmax) + encode_float(lmin)


def decode_feature_key(data: bytes) -> tuple[str, float, float]:
    """Inverse of :func:`encode_feature_key`."""
    terminator = data.find(b"\x00")
    if terminator < 0 or len(data) != terminator + 17:
        raise BTreeError(f"malformed feature key of {len(data)} bytes")
    label = data[:terminator].decode("utf-8")
    lmax = decode_float(data[terminator + 1 : terminator + 9])
    lmin = decode_float(data[terminator + 9 : terminator + 17])
    return label, lmax, lmin


def label_upper_bound(label: str) -> bytes:
    """Exclusive upper bound for all keys carrying ``label``.

    ``0x01`` sorts above the ``0x00`` terminator and below the first byte
    of any non-empty label continuation, so this bound splits exactly
    after the last key of ``label``.
    """
    return label.encode("utf-8") + b"\x01"

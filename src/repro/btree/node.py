"""B+tree node layouts and page (de)serialization.

Leaf page::

    [u8 type=1][u16 n][u32 next_leaf][(u16 klen, u16 vlen)*n][keys+values packed]

Internal page::

    [u8 type=2][u16 n][u32 children]*(n+1) [(u16 klen)*n][keys packed]

An internal node with ``n`` separator keys has ``n + 1`` children;
child ``i`` holds keys ``< keys[i]`` (strictly, with duplicates of a
separator going right — see tree.py's routing rule).
"""

from __future__ import annotations

import struct

from repro.errors import BTreeError

LEAF_TYPE = 1
INTERNAL_TYPE = 2
NO_LEAF = 0xFFFFFFFF

_LEAF_HEADER = struct.Struct("<BHI")  # type, n, next_leaf
_LEAF_ENTRY = struct.Struct("<HH")  # key length, value length
_INTERNAL_HEADER = struct.Struct("<BH")  # type, n
_CHILD = struct.Struct("<I")
_KLEN = struct.Struct("<H")


class LeafNode:
    """A leaf holding sorted ``(key, value)`` byte pairs; duplicates allowed."""

    __slots__ = ("keys", "values", "next_leaf")

    def __init__(
        self,
        keys: list[bytes] | None = None,
        values: list[bytes] | None = None,
        next_leaf: int = NO_LEAF,
    ) -> None:
        self.keys = keys if keys is not None else []
        self.values = values if values is not None else []
        self.next_leaf = next_leaf

    def serialized_size(self) -> int:
        """Bytes this node occupies when serialized."""
        payload = sum(len(k) + len(v) for k, v in zip(self.keys, self.values))
        return _LEAF_HEADER.size + _LEAF_ENTRY.size * len(self.keys) + payload

    def serialize(self, page_size: int) -> bytearray:
        size = self.serialized_size()
        if size > page_size:
            raise BTreeError(f"leaf of {size} bytes exceeds page size {page_size}")
        buffer = bytearray(page_size)
        _LEAF_HEADER.pack_into(buffer, 0, LEAF_TYPE, len(self.keys), self.next_leaf)
        offset = _LEAF_HEADER.size
        for key, value in zip(self.keys, self.values):
            _LEAF_ENTRY.pack_into(buffer, offset, len(key), len(value))
            offset += _LEAF_ENTRY.size
        for key, value in zip(self.keys, self.values):
            buffer[offset : offset + len(key)] = key
            offset += len(key)
            buffer[offset : offset + len(value)] = value
            offset += len(value)
        return buffer

    @classmethod
    def deserialize(cls, buffer: bytes | bytearray) -> "LeafNode":
        node_type, count, next_leaf = _LEAF_HEADER.unpack_from(buffer, 0)
        if node_type != LEAF_TYPE:
            raise BTreeError(f"expected leaf page, found type {node_type}")
        lengths = []
        offset = _LEAF_HEADER.size
        for _ in range(count):
            lengths.append(_LEAF_ENTRY.unpack_from(buffer, offset))
            offset += _LEAF_ENTRY.size
        keys: list[bytes] = []
        values: list[bytes] = []
        for klen, vlen in lengths:
            keys.append(bytes(buffer[offset : offset + klen]))
            offset += klen
            values.append(bytes(buffer[offset : offset + vlen]))
            offset += vlen
        return cls(keys, values, next_leaf)


class InternalNode:
    """An internal node with ``len(keys) + 1`` children."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list[bytes], children: list[int]) -> None:
        if len(children) != len(keys) + 1:
            raise BTreeError(
                f"internal node with {len(keys)} keys needs "
                f"{len(keys) + 1} children, got {len(children)}"
            )
        self.keys = keys
        self.children = children

    def serialized_size(self) -> int:
        """Bytes this node occupies when serialized."""
        return (
            _INTERNAL_HEADER.size
            + _CHILD.size * len(self.children)
            + _KLEN.size * len(self.keys)
            + sum(len(k) for k in self.keys)
        )

    def serialize(self, page_size: int) -> bytearray:
        size = self.serialized_size()
        if size > page_size:
            raise BTreeError(
                f"internal node of {size} bytes exceeds page size {page_size}"
            )
        buffer = bytearray(page_size)
        _INTERNAL_HEADER.pack_into(buffer, 0, INTERNAL_TYPE, len(self.keys))
        offset = _INTERNAL_HEADER.size
        for child in self.children:
            _CHILD.pack_into(buffer, offset, child)
            offset += _CHILD.size
        for key in self.keys:
            _KLEN.pack_into(buffer, offset, len(key))
            offset += _KLEN.size
        for key in self.keys:
            buffer[offset : offset + len(key)] = key
            offset += len(key)
        return buffer

    @classmethod
    def deserialize(cls, buffer: bytes | bytearray) -> "InternalNode":
        node_type, count = _INTERNAL_HEADER.unpack_from(buffer, 0)
        if node_type != INTERNAL_TYPE:
            raise BTreeError(f"expected internal page, found type {node_type}")
        offset = _INTERNAL_HEADER.size
        children: list[int] = []
        for _ in range(count + 1):
            (child,) = _CHILD.unpack_from(buffer, offset)
            children.append(child)
            offset += _CHILD.size
        lengths: list[int] = []
        for _ in range(count):
            (klen,) = _KLEN.unpack_from(buffer, offset)
            lengths.append(klen)
            offset += _KLEN.size
        keys: list[bytes] = []
        for klen in lengths:
            keys.append(bytes(buffer[offset : offset + klen]))
            offset += klen
        return cls(keys, children)


def deserialize_node(buffer: bytes | bytearray) -> LeafNode | InternalNode:
    """Dispatch on the page-type byte."""
    node_type = buffer[0]
    if node_type == LEAF_TYPE:
        return LeafNode.deserialize(buffer)
    if node_type == INTERNAL_TYPE:
        return InternalNode.deserialize(buffer)
    raise BTreeError(f"unknown B+tree page type {node_type}")

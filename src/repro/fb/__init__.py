"""The F&B (forward & backward) bisimulation index — the paper's
clustered-index competitor ([18], [27] in the paper).

Two tree nodes are F&B-equivalent when they have the same label, their
*parents* are F&B-equivalent (backward), and they have the same *set* of
F&B-equivalent children (forward).  On a tree the quotient is again a
tree of blocks, each carrying the extent of elements it stands for; the
F&B index is a **covering** index for branching path queries: a twig that
matches on the block tree is guaranteed to produce results from every
element of the matched root block, with no refinement step.

* :func:`~repro.fb.partition.fb_partition` — fixpoint refinement
  computing the coarsest stable partition.
* :class:`~repro.fb.index.FBIndex` — the block tree with extents, plus a
  serialized size estimate so Table-1-style comparisons are honest.
* :class:`~repro.fb.evaluator.FBEvaluator` — navigational twig matching
  over the block tree (the DFS-style lookup the paper describes for
  disk-based F&B), returning extents.
"""

from repro.fb.evaluator import FBEvaluator
from repro.fb.index import FBBlock, FBIndex
from repro.fb.partition import fb_partition

__all__ = ["FBBlock", "FBEvaluator", "FBIndex", "fb_partition"]

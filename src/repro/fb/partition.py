"""F&B partition computation by fixpoint refinement.

The coarsest partition stable under forward *and* backward bisimilarity
is computed by iterating signature refinement:

    block(v)  <-  (label(v), block(parent(v)), { block(c) : c child of v })

starting from the partition by label, until no block splits.  On a tree
each pass is ``O(n)`` dictionary work and the number of passes is bounded
by the tree height + 2, so the total cost is ``O(n * depth)`` — entirely
adequate for the document sizes the benchmarks use (the paper's own
disk-based F&B construction is similarly multi-pass).

Text nodes may optionally participate (labeled through the same hash
mapping the value-extended FIX index uses) so the F&B competitor can
answer value queries in Figure 7's comparison.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.xmltree.model import Document, Element, Node, Text


def fb_partition(
    document: Document,
    text_label: Callable[[str], str] | None = None,
) -> dict[int, int]:
    """Compute the F&B partition of a document.

    Returns a mapping ``node_id -> block_id`` with dense block ids.
    Text nodes are included only when ``text_label`` is given.
    """
    nodes: list[Node] = []
    labels: list[str] = []
    parents: list[int] = []  # index into `nodes`, -1 for the root
    children: list[list[int]] = []
    index_of: dict[int, int] = {}

    # Iterative traversal to survive deep documents.
    stack: list[tuple[Node, int]] = [(document.root, -1)]
    while stack:
        node, parent_index = stack.pop()
        my_index = len(nodes)
        nodes.append(node)
        index_of[node.node_id] = my_index
        parents.append(parent_index)
        children.append([])
        if parent_index >= 0:
            children[parent_index].append(my_index)
        if isinstance(node, Element):
            labels.append(node.tag)
            for child in reversed(node.children):
                if isinstance(child, Element) or (
                    text_label is not None and isinstance(child, Text)
                ):
                    stack.append((child, my_index))
        else:
            assert isinstance(node, Text) and text_label is not None
            labels.append(text_label(node.value))

    count = len(nodes)
    # Initial partition: by label.
    block_of: list[int] = []
    interning: dict[object, int] = {}
    for label in labels:
        block = interning.setdefault(label, len(interning))
        block_of.append(block)

    # Refinement passes.
    while True:
        interning = {}
        next_blocks: list[int] = [0] * count
        for i in range(count):
            parent_block = block_of[parents[i]] if parents[i] >= 0 else -1
            signature = (
                labels[i],
                parent_block,
                frozenset(block_of[c] for c in children[i]),
            )
            next_blocks[i] = interning.setdefault(signature, len(interning))
        if len(interning) == len(set(block_of)):
            # No block split this pass: stable.
            block_of = next_blocks
            break
        block_of = next_blocks

    return {node.node_id: block_of[index_of[node.node_id]] for node in nodes}

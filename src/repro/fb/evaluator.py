"""Twig evaluation on the F&B block tree.

F&B is a covering index for branching path queries: if the twig pattern
matches the block tree with its root bound to block ``B``, then *every*
element in ``B``'s extent produces a result — stability of the partition
guarantees each element of a block has at least one child in every child
block.  Evaluation therefore never touches the document; its cost is a
navigation of the block tree, which is exactly why the paper's Figure 6
shows F&B excelling on regular/shallow DBLP (a few hundred blocks) and
suffering on structure-rich data (block counts approaching node counts,
e.g. the >300k-vertex Treebank F&B graph cited in the introduction).
"""

from __future__ import annotations

from repro.query.ast import Axis
from repro.query.twig import QueryNode, TwigQuery
from repro.fb.index import FBBlock, FBIndex


class FBEvaluator:
    """Navigational twig matching over one document's F&B index."""

    def __init__(self, index: FBIndex) -> None:
        self._index = index
        #: blocks visited by the last / all evaluations (work counter).
        self.blocks_visited = 0

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, twig: TwigQuery) -> list[int]:
        """Element ids the twig's root can bind to, in document order."""
        roots = self.matching_blocks(twig)
        result: list[int] = []
        for block in roots:
            result.extend(block.extent)
        result.sort()
        return result

    def matching_blocks(self, twig: TwigQuery) -> list[FBBlock]:
        """Blocks the twig's root matches (root bindings, block level)."""
        memo: dict[tuple[int, int], bool] = {}
        if twig.leading_axis is Axis.CHILD:
            candidates = [self._index.root]
        else:
            candidates = [
                block
                for block in self._index.blocks
                if block.label == twig.root.label
            ]
        return [
            block
            for block in candidates
            if self._matches(twig.root, block, memo)
        ]

    def exists(self, twig: TwigQuery) -> bool:
        """Existential answer without materializing extents."""
        return bool(self.matching_blocks(twig))

    # ------------------------------------------------------------------ #
    # Block-tree matching
    # ------------------------------------------------------------------ #

    def _matches(
        self,
        node: QueryNode,
        block: FBBlock,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        key = (id(node), block.block_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        self.blocks_visited += 1
        result = self._matches_uncached(node, block, memo)
        memo[key] = result
        return result

    def _matches_uncached(
        self,
        node: QueryNode,
        block: FBBlock,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if block.label != node.label:
            return False
        if node.value is not None:
            # Value predicates require the index to have been built with
            # the same text hashing FIX uses; the child block's hashed
            # label must be present.  (Hash collisions make this a
            # *candidate* answer; the caller compensates — see the value
            # benchmarks.)
            mapping = self._index._text_label
            if mapping is None:
                return False
            wanted = mapping(node.value)
            if not any(
                child.is_text and child.label == wanted
                for child in block.children
            ):
                return False
        for axis, child_node in node.edges:
            if axis is Axis.CHILD:
                hit = any(
                    self._matches(child_node, child_block, memo)
                    for child_block in block.children
                )
            else:
                hit = self._descendant_matches(child_node, block, memo)
            if not hit:
                return False
        return True

    def _descendant_matches(
        self,
        node: QueryNode,
        block: FBBlock,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        stack = list(block.children)
        seen: set[int] = set()
        while stack:
            candidate = stack.pop()
            if candidate.block_id in seen:
                continue
            seen.add(candidate.block_id)
            if self._matches(node, candidate, memo):
                return True
            stack.extend(candidate.children)
        return False

"""The F&B block tree with extents.

Because F&B equivalence includes the *backward* direction, all elements
of a block share an equivalent parent, so the quotient of a tree is
again a tree; each block stores its label, its child blocks, and the
extent of element ids it covers.  The index can also be serialized into
a record file so its on-disk size is measured the same way FIX's is
(Table 1 / the Figure 6 discussion of DBLP's tiny F&B index).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.storage.pager import Pager
from repro.storage.records import RecordFile
from repro.fb.partition import fb_partition
from repro.xmltree.model import Document, Element, Text


class FBBlock:
    """One F&B equivalence class."""

    __slots__ = ("block_id", "label", "children", "parent", "extent", "is_text")

    def __init__(self, block_id: int, label: str, is_text: bool = False) -> None:
        self.block_id = block_id
        self.label = label
        self.children: list[FBBlock] = []
        self.parent: FBBlock | None = None
        self.extent: list[int] = []
        self.is_text = is_text

    def extent_size(self) -> int:
        """Number of nodes in this class."""
        return len(self.extent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FBBlock(id={self.block_id}, label={self.label!r}, "
            f"extent={len(self.extent)}, children={len(self.children)})"
        )


class FBIndex:
    """F&B index of one document.

    Args:
        document: the indexed document.
        text_label: optional value-hash mapping; when given, text nodes
            become blocks too (value-query support, Figure 7).
    """

    def __init__(
        self,
        document: Document,
        text_label: Callable[[str], str] | None = None,
    ) -> None:
        self.document = document
        self._text_label = text_label
        assignment = fb_partition(document, text_label=text_label)
        self.blocks: list[FBBlock] = []
        self.root: FBBlock = self._build(assignment)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self, assignment: dict[int, int]) -> FBBlock:
        by_id: dict[int, FBBlock] = {}

        def block_for(node_id: int, label: str, is_text: bool) -> FBBlock:
            raw = assignment[node_id]
            block = by_id.get(raw)
            if block is None:
                block = FBBlock(len(self.blocks), label, is_text)
                by_id[raw] = block
                self.blocks.append(block)
            return block

        root_block: FBBlock | None = None
        stack: list[tuple[Element, FBBlock | None]] = [(self.document.root, None)]
        linked: set[tuple[int, int]] = set()
        while stack:
            element, parent_block = stack.pop()
            block = block_for(element.node_id, element.tag, is_text=False)
            block.extent.append(element.node_id)
            self._link(parent_block, block, linked)
            if parent_block is None:
                root_block = block
            for child in element.children:
                if isinstance(child, Element):
                    stack.append((child, block))
                elif self._text_label is not None and isinstance(child, Text):
                    text_block = block_for(
                        child.node_id, self._text_label(child.value), is_text=True
                    )
                    text_block.extent.append(child.node_id)
                    self._link(block, text_block, linked)
        assert root_block is not None
        for block in self.blocks:
            block.extent.sort()
        return root_block

    @staticmethod
    def _link(
        parent: FBBlock | None, child: FBBlock, linked: set[tuple[int, int]]
    ) -> None:
        if parent is None:
            return
        key = (parent.block_id, child.block_id)
        if key not in linked:
            linked.add(key)
            parent.children.append(child)
            child.parent = parent

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #

    def block_count(self) -> int:
        """Number of equivalence classes (the paper's F&B vertex count)."""
        return len(self.blocks)

    def edge_count(self) -> int:
        """Number of block-tree edges."""
        return sum(len(block.children) for block in self.blocks)

    def size_bytes(self) -> int:
        """On-disk size: the block tree serialized into record pages.

        Layout per block: label, child ids, and the extent (4 bytes per
        element id) — the same order of bookkeeping the disk-based F&B
        implementation materializes.
        """
        pager = Pager()
        records = RecordFile(pager)
        for block in self.blocks:
            payload = bytearray()
            payload += block.label.encode("utf-8") + b"\x00"
            payload += len(block.children).to_bytes(4, "little")
            for child in block.children:
                payload += child.block_id.to_bytes(4, "little")
            payload += len(block.extent).to_bytes(4, "little")
            for node_id in block.extent:
                payload += node_id.to_bytes(4, "little")
            records.append(bytes(payload))
        return pager.size_bytes()

"""Eigenvalue extraction for anti-symmetric pattern matrices.

The paper's Theorem 3 proof multiplies the real anti-symmetric ``M`` by
the imaginary unit to obtain the Hermitian ``iM`` whose spectrum is
real; the seed implemented exactly that (``numpy.linalg.eigvalsh`` on
``1j * M`` — the O(n³) dense symmetric eigenproblem of the paper's cost
analysis).  Because ``M`` is real anti-symmetric, its eigenvalues come
in conjugate pairs ``±iσ_j`` where the ``σ_j`` are the *singular
values* of ``M``, so the same quantities are computable in pure real
arithmetic — closed forms for ``n ≤ 3``, a real symmetric Gram eigensolve otherwise — and
``λ_min = -λ_max`` holds exactly.  That real kernel
(:mod:`repro.spectral.kernel`, DESIGN.md §9) is the default solver
here; the legacy complex path stays selectable per call, per index
(``FixIndexConfig.eigen_solver``), or via ``REPRO_SPECTRAL_SOLVER``
for A/B verification.

A consequence worth documenting (see the feature ablation benchmark):
since the spectrum is symmetric about zero, the paper's ``(λ_min,
λ_max)`` pair carries one real degree of freedom; we keep both
components for interface fidelity, and the ablation bench quantifies
what a richer feature (a spectrum prefix with subset testing, sketched
in §3.3) would buy.
"""

from __future__ import annotations

import numpy as np

from repro.bisim.graph import BisimGraph
from repro.spectral.encoding import EdgeLabelEncoder
from repro.spectral.kernel import (
    SOLVER_LEGACY,
    legacy_range,
    legacy_spectrum,
    real_spectrum,
    resolve_solver,
    singular_range,
)
from repro.spectral.matrix import pattern_matrix


def hermitian_of(matrix: np.ndarray) -> np.ndarray:
    """Return ``iM``, the Hermitian equivalent of anti-symmetric ``M``."""
    return 1j * matrix


def spectrum(matrix: np.ndarray, solver: str | None = None) -> np.ndarray:
    """Full real spectrum of anti-symmetric ``matrix``, ascending.

    These are the eigenvalues of ``iM`` — equivalently ``±σ_j`` for the
    singular values ``σ_j`` of ``M`` — via the configured solver.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    if resolve_solver(solver) == SOLVER_LEGACY:
        return legacy_spectrum(matrix)
    return real_spectrum(matrix)


def eigenvalue_range(
    matrix: np.ndarray, solver: str | None = None
) -> tuple[float, float]:
    """``(λ_min, λ_max)`` of anti-symmetric ``matrix``.

    Exactly symmetric — ``λ_min == -λ_max`` — for both solvers: the
    real kernel returns ``(-σ_max, +σ_max)`` by construction, and the
    legacy path symmetrizes the floating-point ``eigvalsh`` extremes at
    this API boundary (they can disagree in the last ulp even though
    theory guarantees symmetry).

    A 0x0 or 1x1 (single vertex, edgeless) pattern has the degenerate
    range ``(0.0, 0.0)``, which — correctly — is contained in every
    indexed range, since a single labeled node can be a subpattern of
    anything with a matching label.
    """
    if resolve_solver(solver) == SOLVER_LEGACY:
        return legacy_range(matrix)
    return singular_range(matrix)


def graph_eigenvalue_range(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
    solver: str | None = None,
) -> tuple[float, float]:
    """Convenience: matrix construction + :func:`eigenvalue_range`.

    Raises:
        PatternTooLargeError: when the graph exceeds ``max_vertices``.
    """
    return eigenvalue_range(
        pattern_matrix(graph, encoder, max_vertices=max_vertices), solver=solver
    )


def graph_spectrum(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
    solver: str | None = None,
) -> np.ndarray:
    """Convenience: matrix construction + :func:`spectrum`."""
    return spectrum(
        pattern_matrix(graph, encoder, max_vertices=max_vertices), solver=solver
    )

"""Eigenvalue extraction via the Hermitian trick (Section 3.3).

A real anti-symmetric matrix ``M`` has a purely imaginary spectrum; the
paper's Theorem 3 proof multiplies by the imaginary unit to obtain the
Hermitian matrix ``iM`` whose spectrum is the imaginary parts — real
numbers that can be compared.  ``numpy.linalg.eigvalsh`` on ``iM`` is the
workhorse here (the O(n^3) dense symmetric eigenproblem the paper's cost
analysis cites).

A consequence worth documenting (see DESIGN.md §5 and the feature
ablation benchmark): because ``M`` is *real* anti-symmetric, its
eigenvalues come in conjugate pairs ``±iμ``, so the spectrum of ``iM`` is
symmetric about zero and ``λ_min = -λ_max`` always.  The paper's
``(λ_min, λ_max)`` pair therefore carries one real degree of freedom; we
keep both components for interface fidelity, and the ablation bench
quantifies what a richer feature (a spectrum prefix with subset testing,
which the paper sketches in §3.3) would buy.
"""

from __future__ import annotations

import numpy as np

from repro.bisim.graph import BisimGraph
from repro.spectral.encoding import EdgeLabelEncoder
from repro.spectral.matrix import pattern_matrix


def hermitian_of(matrix: np.ndarray) -> np.ndarray:
    """Return ``iM``, the Hermitian equivalent of anti-symmetric ``M``."""
    return 1j * matrix


def spectrum(matrix: np.ndarray) -> np.ndarray:
    """Full real spectrum of anti-symmetric ``matrix``, ascending.

    These are the eigenvalues of ``iM`` — equivalently the imaginary
    parts of the eigenvalues of ``M`` — computed with the symmetric
    eigensolver.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return np.linalg.eigvalsh(hermitian_of(matrix)).real


def eigenvalue_range(matrix: np.ndarray) -> tuple[float, float]:
    """``(λ_min, λ_max)`` of anti-symmetric ``matrix``.

    A 0x0 or 1x1 (single vertex, edgeless) pattern has the degenerate
    range ``(0.0, 0.0)``, which — correctly — is contained in every
    indexed range, since a single labeled node can be a subpattern of
    anything with a matching label.
    """
    values = spectrum(matrix)
    if values.size == 0:
        return 0.0, 0.0
    return float(values[0]), float(values[-1])


def graph_eigenvalue_range(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
) -> tuple[float, float]:
    """Convenience: matrix construction + :func:`eigenvalue_range`.

    Raises:
        PatternTooLargeError: when the graph exceeds ``max_vertices``.
    """
    return eigenvalue_range(pattern_matrix(graph, encoder, max_vertices=max_vertices))


def graph_spectrum(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
) -> np.ndarray:
    """Convenience: matrix construction + :func:`spectrum`."""
    return spectrum(pattern_matrix(graph, encoder, max_vertices=max_vertices))

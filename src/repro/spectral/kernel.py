"""Real-arithmetic batched spectral kernel (DESIGN.md §9).

The paper extracts ``(λ_min, λ_max)`` of an anti-symmetric pattern
matrix ``M`` by solving the complex Hermitian eigenproblem for ``iM``
(Section 3.3).  That works, but it is wasteful three times over:

1. **Complex arithmetic is unnecessary.**  A real anti-symmetric matrix
   is normal (``MᵀM = -M² = MMᵀ``), so its singular values are exactly
   the absolute values of its eigenvalues ``±iσ_j`` — the spectrum of
   ``iM`` is ``{±σ_j}`` (plus a zero for odd ``n``).  The feature range
   is therefore ``(-σ_max, +σ_max)``, and ``σ_max²`` is the top
   eigenvalue of the real *symmetric* Gram matrix ``MMᵀ`` — one real
   matmul plus a real symmetric eigensolve (dsyevd), a fraction of the
   zheevd path's flops and memory traffic.  Squaring is harmless for
   the *largest* singular value (the top Gram eigenvalue is computed
   to relative accuracy and the square root halves the error; observed
   agreement with the complex path is ~1e-12 even at ``n = 660``), and
   ``λ_min == -λ_max`` holds *exactly* by construction rather than up
   to solver round-off.  The full-``spectrum`` path (ablation bench)
   uses a genuine real SVD instead, which keeps the *small* singular
   values accurate too.

2. **Tiny patterns have closed forms.**  The characteristic polynomial
   of a 2x2 anti-symmetric matrix is ``λ² + w₀₁²`` and of a 3x3 one is
   ``λ(λ² + w₀₁² + w₀₂² + w₁₂²)``, so:

   * ``n ≤ 1`` → range ``(0, 0)``;
   * ``n = 2`` → ``±|w₀₁|``;
   * ``n = 3`` → ``±sqrt(w₀₁² + w₀₂² + w₁₂²)``.

   Most twig subpatterns a build produces are this small, and the
   closed forms cost arithmetic only — no LAPACK round-trip at all.

3. **Per-pattern dispatch overhead dominates small solves.**  Cache
   misses collected during entry generation are grouped by matrix
   dimension, stacked into ``(B, n, n)`` arrays, and solved with one
   stacked-LAPACK (gufunc) call per bucket, amortizing the Python →
   LAPACK round-trip across thousands of patterns.

Determinism contract: numpy's ``linalg`` gufuncs apply the same LAPACK
routine to each matrix of a stack independently, so the batched results
are **bitwise identical** to the per-matrix results, and the scalar
entry points below are implemented *through* the batched code path —
one pattern always produces the same key bytes no matter how (or
whether) it was batched.  This is what keeps the PR 1 byte-identity
guarantee (same B-tree bytes for any worker count / cache setting)
intact.

The legacy complex-Hermitian solver remains selectable for A/B
verification — per call (``solver="legacy"``), per index
(``FixIndexConfig(eigen_solver="legacy")``), or process-wide via the
``REPRO_SPECTRAL_SOLVER`` environment variable.  Both solvers agree
within 1e-9 (observed ~1e-14), well inside ``DEFAULT_GUARD_BAND``.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

#: The real-arithmetic closed-form/Gram-eigensolve kernel (default).
SOLVER_REAL = "real"
#: The seed's complex Hermitian ``eigvalsh(iM)`` path.
SOLVER_LEGACY = "legacy"
SOLVERS = (SOLVER_REAL, SOLVER_LEGACY)

#: Process-wide solver override for A/B runs without code changes.
ENV_SOLVER = "REPRO_SPECTRAL_SOLVER"


def resolve_solver(solver: str | None = None) -> str:
    """Normalize a solver choice: explicit > environment > real."""
    if solver is None:
        solver = os.environ.get(ENV_SOLVER) or SOLVER_REAL
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown spectral solver {solver!r} (expected one of {SOLVERS})"
        )
    return solver


# --------------------------------------------------------------------- #
# Legacy path: complex Hermitian eigensolve
# --------------------------------------------------------------------- #


def legacy_spectrum(matrix: np.ndarray) -> np.ndarray:
    """Ascending spectrum via ``eigvalsh(iM)`` (the seed's solver)."""
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    return np.linalg.eigvalsh(1j * matrix).real


def legacy_range(matrix: np.ndarray) -> tuple[float, float]:
    """``(λ_min, λ_max)`` via the complex path, symmetrized.

    ``eigvalsh`` returns extremes that can differ in the last ulp even
    though theory guarantees ``λ_min = -λ_max``; the API boundary
    enforces exact symmetry so both solvers share the invariant.
    """
    values = legacy_spectrum(matrix)
    if values.size == 0:
        return 0.0, 0.0
    top = max(float(values[-1]), -float(values[0]))
    return -top, top


# --------------------------------------------------------------------- #
# Real path: closed forms + singular values, batched by dimension
# --------------------------------------------------------------------- #


def _real_tops(stack: np.ndarray) -> np.ndarray:
    """``σ_max`` per matrix of a same-dimension ``(B, n, n)`` stack."""
    n = stack.shape[-1]
    if n == 2:
        return np.abs(stack[:, 0, 1])
    if n == 3:
        return np.sqrt(
            stack[:, 0, 1] ** 2 + stack[:, 0, 2] ** 2 + stack[:, 1, 2] ** 2
        )
    # σ_max² = λ_max(MMᵀ): real matmul + real symmetric eigensolve,
    # faster than both zheevd(iM) and a real SVD at every n >= 4.
    gram = stack @ stack.transpose(0, 2, 1)
    return np.sqrt(np.linalg.eigvalsh(gram)[:, -1])


def solve_batch(
    matrices: Sequence[np.ndarray],
    solver: str | None = None,
) -> tuple[list[tuple[float, float]], dict[int, int]]:
    """Feature ranges for a batch of anti-symmetric matrices.

    Matrices are grouped by dimension and each group is solved with one
    stacked call (real solver) or a per-matrix loop (legacy solver, kept
    un-batched so it reproduces the seed's behaviour exactly in A/B
    runs).  Results come back in input order.

    Returns:
        ``(ranges, buckets)`` — one ``(λ_min, λ_max)`` per input, and a
        ``dimension -> matrix count`` map of the non-trivial buckets
        actually dispatched (``n >= 2``; smaller patterns are answered
        in place).
    """
    solver = resolve_solver(solver)
    ranges: list[tuple[float, float] | None] = [None] * len(matrices)
    buckets: dict[int, list[int]] = {}
    for position, matrix in enumerate(matrices):
        n = matrix.shape[0]
        if n <= 1:
            ranges[position] = (0.0, 0.0)
        else:
            buckets.setdefault(n, []).append(position)
    for n, positions in buckets.items():
        if solver == SOLVER_LEGACY:
            for position in positions:
                ranges[position] = legacy_range(matrices[position])
            continue
        stack = np.stack([matrices[position] for position in positions])
        for position, top in zip(positions, _real_tops(stack)):
            value = float(top)
            ranges[position] = (-value, value)
    return ranges, {n: len(positions) for n, positions in buckets.items()}


def singular_range(matrix: np.ndarray) -> tuple[float, float]:
    """``(-σ_max, +σ_max)`` of one anti-symmetric matrix.

    Routed through :func:`solve_batch` so a pattern's range is bitwise
    identical whether it was solved alone or inside a bucket.
    """
    ranges, _ = solve_batch([np.asarray(matrix, dtype=np.float64)])
    return ranges[0]


def real_spectrum(matrix: np.ndarray) -> np.ndarray:
    """Full ascending spectrum reconstructed from singular values.

    Anti-symmetric spectra are ``±σ`` pairs (eigenvalues ``±iσ_j``),
    so the ``n`` descending singular values arrive as equal pairs
    ``[σ₁, σ₁, σ₂, σ₂, …]`` plus a trailing zero when ``n`` is odd;
    taking every second one recovers the pair representatives and the
    spectrum is exactly symmetric by construction.  Used by the feature
    ablation's spectrum-subset variant.
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    singular = np.linalg.svd(matrix, compute_uv=False)
    pairs = singular[0::2][: n // 2]
    return np.concatenate((-pairs, np.zeros(n % 2), pairs[::-1]))

"""Spectral features of twig patterns (Section 3 of the paper).

Pipeline: a twig pattern (bisimulation graph) is translated into an
**anti-symmetric** matrix whose entry ``M[i, j]`` is a per-edge-label
integer weight and ``M[j, i]`` its negation (Section 3.2).  Multiplying
by the imaginary unit yields a Hermitian matrix with a real spectrum, and
Theorem 3's interlacing property guarantees that the eigenvalue range of
an induced subpattern is contained in that of the containing pattern —
the no-false-negative pruning rule.  The feature key actually indexed is
``(root label, λ_max, λ_min)`` (Section 3.4).

* :class:`~repro.spectral.encoding.EdgeLabelEncoder` — stable
  (parent label, child label) → weight assignment shared by index build
  and query time.
* :func:`~repro.spectral.matrix.pattern_matrix` — graph → anti-symmetric
  ``numpy`` matrix.
* :func:`~repro.spectral.eigen.eigenvalue_range` /
  :func:`~repro.spectral.eigen.spectrum` — λ extraction; by default the
  real-arithmetic closed-form/Gram-eigensolve kernel of
  :mod:`repro.spectral.kernel` (DESIGN.md §9), with the legacy complex
  Hermitian path selectable for A/B runs.
* :func:`~repro.spectral.kernel.solve_batch` — size-bucketed stacked
  solves for the cache misses collected during entry generation.
* :class:`~repro.spectral.features.FeatureRange` /
  :class:`~repro.spectral.features.FeatureKey` — the index key, the
  containment predicate with its round-off guard band, and the
  all-covering fallback range for over-large patterns.
* :class:`~repro.spectral.cache.FeatureCache` — content-addressed
  cross-document cache of pattern feature keys, keyed by the canonical
  signature of the labeled pattern DAG.
"""

from repro.spectral.cache import FeatureCache, pattern_signature, vertex_signature
from repro.spectral.encoding import EdgeLabelEncoder
from repro.spectral.eigen import eigenvalue_range, hermitian_of, spectrum
from repro.spectral.kernel import (
    SOLVER_LEGACY,
    SOLVER_REAL,
    SOLVERS,
    resolve_solver,
    solve_batch,
)
from repro.spectral.features import (
    ALL_COVERING_RANGE,
    DEFAULT_GUARD_BAND,
    FeatureKey,
    FeatureRange,
    pattern_features,
    spectrum_contains,
)
from repro.spectral.matrix import pattern_matrix

__all__ = [
    "ALL_COVERING_RANGE",
    "DEFAULT_GUARD_BAND",
    "EdgeLabelEncoder",
    "FeatureCache",
    "FeatureKey",
    "FeatureRange",
    "SOLVER_LEGACY",
    "SOLVER_REAL",
    "SOLVERS",
    "eigenvalue_range",
    "hermitian_of",
    "pattern_features",
    "pattern_matrix",
    "pattern_signature",
    "resolve_solver",
    "solve_batch",
    "spectrum",
    "spectrum_contains",
    "vertex_signature",
]

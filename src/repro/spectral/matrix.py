"""Anti-symmetric matrix representation of a twig pattern (Section 3.2).

Each reachable vertex of the bisimulation graph gets a matrix dimension
(the assignment is arbitrary up to permutation, which leaves eigenvalues
invariant; we use discovery order for determinism).  An edge ``(u, v)``
with encoded weight ``w`` sets ``M[i, j] = w`` and ``M[j, i] = -w``; all
diagonal entries are 0 because the graph is acyclic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternTooLargeError
from repro.bisim.dag import reachable_vertices
from repro.bisim.graph import BisimGraph
from repro.spectral.encoding import EdgeLabelEncoder


def pattern_matrix(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
) -> np.ndarray:
    """Build the anti-symmetric matrix of ``graph`` under ``encoder``.

    Args:
        graph: the twig pattern (bisimulation graph).
        encoder: shared edge-label encoder; unseen edge labels are
            assigned fresh codes (see
            :class:`~repro.spectral.encoding.EdgeLabelEncoder`).
        max_vertices: optional cap; exceeding it raises
            :class:`~repro.errors.PatternTooLargeError` so index
            construction can fall back to the all-covering range.

    Returns:
        An ``(n, n)`` float64 array with ``M.T == -M``.
    """
    vertices = reachable_vertices(graph.root)
    n = len(vertices)
    if max_vertices is not None and n > max_vertices:
        raise PatternTooLargeError(
            f"pattern has {n} vertices, above the cap of {max_vertices}",
            size=n,
        )
    index_of = {vertex.vid: i for i, vertex in enumerate(vertices)}
    matrix = np.zeros((n, n), dtype=np.float64)
    for parent in vertices:
        i = index_of[parent.vid]
        for child in parent.children:
            j = index_of[child.vid]
            weight = float(encoder.encode(parent.label, child.label))
            matrix[i, j] = weight
            matrix[j, i] = -weight
    return matrix

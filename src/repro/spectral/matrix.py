"""Anti-symmetric matrix representation of a twig pattern (Section 3.2).

Each reachable vertex of the bisimulation graph gets a matrix dimension.
The assignment is arbitrary up to permutation — eigenvalues are
permutation-invariant in exact arithmetic — but *floating-point*
``eigvalsh`` results can differ in the last ulp between permutations of
the same matrix.  The cross-document feature cache and the parallel
build both promise byte-identical keys for isomorphic patterns however
and wherever they are encountered, so the dimension order must be a
**canonical** function of the labeled structure: vertices are sorted by
their structural :func:`~repro.bisim.dag.vertex_signature` (vid as a
tie-break, reachable only in non-minimal graphs such as query twigs,
where bit-exactness is not required — containment checks carry a guard
band).  An edge ``(u, v)`` with encoded weight ``w`` sets ``M[i, j] = w``
and ``M[j, i] = -w``; all diagonal entries are 0 because the graph is
acyclic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternTooLargeError
from repro.bisim.dag import reachable_vertices, vertex_signature
from repro.bisim.graph import BisimGraph
from repro.spectral.encoding import EdgeLabelEncoder


def pattern_matrix(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
) -> np.ndarray:
    """Build the anti-symmetric matrix of ``graph`` under ``encoder``.

    Args:
        graph: the twig pattern (bisimulation graph).
        encoder: shared edge-label encoder; unseen edge labels are
            assigned fresh codes (see
            :class:`~repro.spectral.encoding.EdgeLabelEncoder`).
        max_vertices: optional cap; exceeding it raises
            :class:`~repro.errors.PatternTooLargeError` so index
            construction can fall back to the all-covering range.

    Returns:
        An ``(n, n)`` float64 array with ``M.T == -M``.
    """
    vertices = reachable_vertices(graph.root)
    n = len(vertices)
    if max_vertices is not None and n > max_vertices:
        raise PatternTooLargeError(
            f"pattern has {n} vertices, above the cap of {max_vertices}",
            size=n,
        )
    signatures: dict[int, bytes] = {}
    vertices.sort(key=lambda vertex: (vertex_signature(vertex, signatures), vertex.vid))
    index_of = {vertex.vid: i for i, vertex in enumerate(vertices)}
    # Edge gathering stays in Python (the encoder is a Python dict) but
    # the n² matrix writes are fancy-indexed in one shot each way.
    rows: list[int] = []
    cols: list[int] = []
    weights: list[int] = []
    for parent in vertices:
        i = index_of[parent.vid]
        label = parent.label
        for child in parent.children:
            rows.append(i)
            cols.append(index_of[child.vid])
            weights.append(encoder.encode(label, child.label))
    matrix = np.zeros((n, n), dtype=np.float64)
    if rows:
        i = np.asarray(rows, dtype=np.intp)
        j = np.asarray(cols, dtype=np.intp)
        w = np.asarray(weights, dtype=np.float64)
        matrix[i, j] = w
        matrix[j, i] = -w
    return matrix

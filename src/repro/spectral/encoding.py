"""Edge-label encoding (Section 3.2).

Vertex labels are folded into *edge weights*: each distinct ordered pair
``(parent label, child label)`` gets a distinct positive integer.  As the
paper notes, as long as different edge labels map to different weights,
the weighted directed graph can be translated back to the labeled graph,
so no structural information is lost.

The encoder must be **shared** between index construction and query
processing — Theorem 3's interlacing argument compares matrices whose
common edges carry *identical* weights.  It is therefore part of the
persisted index state (:meth:`to_dict` / :meth:`from_dict`), and it keeps
assigning fresh codes on first sight so that query-only edge pairs (which
can never match anything) still encode deterministically.
"""

from __future__ import annotations

from repro.errors import FeatureError


class EdgeLabelEncoder:
    """Assign stable integer weights to ``(parent_label, child_label)`` pairs.

    Weights start at 1 (0 is reserved to mean "no edge" in the matrix) and
    grow densely in first-seen order.
    """

    def __init__(self) -> None:
        self._codes: dict[tuple[str, str], int] = {}

    def encode(self, parent_label: str, child_label: str) -> int:
        """Return the weight for an edge, assigning a fresh one if new."""
        key = (parent_label, child_label)
        code = self._codes.get(key)
        if code is None:
            code = len(self._codes) + 1
            self._codes[key] = code
        return code

    def lookup(self, parent_label: str, child_label: str) -> int | None:
        """Return the weight for an edge, or ``None`` if never seen.

        Query-side feature extraction uses this to detect edges that do
        not occur anywhere in the database: such a query can be answered
        with an empty result immediately.
        """
        return self._codes.get((parent_label, child_label))

    def snapshot(self) -> "EdgeLabelEncoder":
        """An independent copy (for parallel workers)."""
        clone = EdgeLabelEncoder()
        clone._codes = dict(self._codes)
        return clone

    def merge(self, other: "EdgeLabelEncoder") -> int:
        """Adopt ``other``'s assignments; returns how many were new.

        This is the deterministic merge half of the parallel-build
        protocol (DESIGN.md §7): workers start from a snapshot of the
        fully pre-seeded coordinator encoder, so on collection every
        worker pair must either already exist here with the *same* code,
        or be a prefix-compatible extension (fresh pairs whose codes
        continue this encoder's dense sequence, taken in ``other``'s
        code order).  Anything else means two encoders assigned
        conflicting weights — features computed under them are not
        comparable — so the merge fails loudly instead of producing an
        index with silently inconsistent keys.

        Raises:
            FeatureError: on any conflicting code assignment.
        """
        adopted = 0
        for pair, code in sorted(other._codes.items(), key=lambda kv: kv[1]):
            existing = self._codes.get(pair)
            if existing is None:
                expected = len(self._codes) + 1
                if code != expected:
                    raise FeatureError(
                        f"encoder merge conflict: edge {pair!r} carries code "
                        f"{code} but the merged encoder would assign {expected}"
                    )
                self._codes[pair] = code
                adopted += 1
            elif existing != code:
                raise FeatureError(
                    f"encoder merge conflict: edge {pair!r} has code {existing} "
                    f"here but {code} in the merged encoder"
                )
        return adopted

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._codes

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, int]:
        """Serialize to a flat dict (labels joined by an unlikely separator)."""
        return {f"{p}\x1f{c}": code for (p, c), code in self._codes.items()}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "EdgeLabelEncoder":
        """Reconstruct an encoder serialized by :meth:`to_dict`."""
        encoder = cls()
        for key, code in data.items():
            parent, _, child = key.partition("\x1f")
            encoder._codes[(parent, child)] = code
        return encoder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeLabelEncoder({len(self._codes)} edge labels)"

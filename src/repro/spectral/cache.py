"""Cross-document spectral feature cache.

Algorithm 1 memoizes eigen-decompositions per bisimulation vertex, but
that memo lives inside one document's graph: the same depth-limited
subpattern recurring in *another* document pays the O(n³) ``eigvalsh``
again.  On regular data (DBLP-like collections) identical subpatterns
recur across almost every document, so a content-addressed cache keyed by
the pattern itself turns the per-collection eigen cost from "once per
document per class" into "once per distinct pattern".

The cache key is a **canonical signature** of the labeled pattern DAG:

* every vertex is reduced, bottom-up, to
  ``blake2b(label · 0x00 · sorted child signatures)`` (16-byte digests);
* the graph's signature is its root's digest.

Child digests are byte-sorted, so the signature depends only on the
vertex's label and the *set* of child patterns — exactly Definition 3's
downward-bisimilarity signature — and not on vertex ids, discovery
order, or which document the pattern came from.  For the minimal graphs
a :class:`~repro.bisim.builder.BisimGraphBuilder` produces, two graphs
share a signature iff they are isomorphic (up to blake2b collisions,
which at 128 bits are negligible against any realistic pattern count).

Soundness: the feature key of a pattern is a function of (a) its labeled
structure and (b) the shared :class:`~repro.spectral.encoding
.EdgeLabelEncoder`, because every matrix weight is ``encoder(parent
label, child label)`` and eigenvalues are permutation-invariant.
Isomorphic patterns therefore have identical feature keys *under the
same encoder* — which is why a :class:`FeatureCache` must be scoped to
one encoder (one index build) and must never be shared across encoders.

The all-covering fallback range for over-large patterns is **never**
cached: it is not a real feature of the pattern but an artifact of the
configured size caps, and callers decide the fallback themselves (see
``EntryGenerator._features_of_graph``).
"""

from __future__ import annotations

from repro.bisim.dag import SIGNATURE_BYTES, vertex_signature
from repro.bisim.graph import BisimGraph
from repro.spectral.features import FeatureKey

__all__ = [
    "SIGNATURE_BYTES",
    "FeatureCache",
    "pattern_signature",
    "vertex_signature",
]


def pattern_signature(graph: BisimGraph) -> bytes:
    """Canonical signature of a pattern graph (its root's signature)."""
    return vertex_signature(graph.root)


class FeatureCache:
    """Content-addressed ``signature -> FeatureKey`` cache.

    One instance per encoder (per index build, or per parallel worker).
    :class:`~repro.spectral.features.FeatureKey` is frozen, so cached
    keys are shared safely between entries and across documents.
    """

    def __init__(self) -> None:
        self._entries: dict[bytes, FeatureKey] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, signature: bytes) -> FeatureKey | None:
        """The cached key for ``signature``, counting a hit or miss."""
        key = self._entries.get(signature)
        if key is None:
            self.misses += 1
        else:
            self.hits += 1
        return key

    def store(self, signature: bytes, key: FeatureKey) -> None:
        """Cache a computed feature key.

        The all-covering fallback is a cap artifact, not a pattern
        feature; storing it would be a correctness hazard if caps ever
        differed between cache users, so it is rejected loudly.
        """
        if key.range.is_all_covering():
            raise ValueError("the all-covering fallback range must not be cached")
        self._entries[signature] = key

    def stats_dict(self) -> dict:
        """Size and hit/miss accounting, for metrics publication
        (``build.cache.*`` in the ``repro.obs`` registry) and reports."""
        lookups = self.hits + self.misses
        return {
            "patterns": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: bytes) -> bool:
        return signature in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeatureCache({len(self._entries)} patterns, "
            f"{self.hits} hits, {self.misses} misses)"
        )

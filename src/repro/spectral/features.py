"""Feature keys and the pruning predicate (Sections 3.3-3.4).

The indexed key is ``(root label, λ_max, λ_min)``.  Pruning keeps an
indexed pattern as a candidate iff its root label matches the query's and
its eigenvalue range *contains* the query's range (Theorem 3), widened by
a small guard band to absorb the numerical round-off the paper warns
about ("we can always choose a larger range for the indexed range").

Patterns too large to decompose are indexed under
:data:`ALL_COVERING_RANGE` — the paper's artificial ``[0, ∞]`` range —
which contains every query range by construction, trading pruning power
for completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bisim.graph import BisimGraph
from repro.spectral.eigen import graph_eigenvalue_range
from repro.spectral.encoding import EdgeLabelEncoder

#: Guard band added to indexed ranges to absorb eigensolver round-off.
#: λ values for integer-weight matrices of a few thousand vertices are
#: O(1e4), and LAPACK's symmetric solver is backward-stable, so 1e-6
#: absolute slack is orders of magnitude above the true error while
#: adding essentially no false positives.
DEFAULT_GUARD_BAND = 1e-6


@dataclass(frozen=True, slots=True)
class FeatureRange:
    """An eigenvalue interval ``[lmin, lmax]``."""

    lmin: float
    lmax: float

    def contains(self, other: "FeatureRange", guard: float = DEFAULT_GUARD_BAND) -> bool:
        """True when ``other`` fits inside this range widened by ``guard``."""
        return (
            self.lmin - guard <= other.lmin
            and other.lmax <= self.lmax + guard
        )

    def is_all_covering(self) -> bool:
        """True for the artificial fallback range of over-large patterns."""
        return math.isinf(self.lmin) or math.isinf(self.lmax)

    def width(self) -> float:
        """Interval width (``inf`` for the all-covering range)."""
        return self.lmax - self.lmin


#: The paper's artificial range for patterns too large to extract
#: features from (Section 6.1): always returned as a candidate.
ALL_COVERING_RANGE = FeatureRange(-math.inf, math.inf)


@dataclass(frozen=True, slots=True)
class FeatureKey:
    """The full B-tree key: root label plus eigenvalue range."""

    root_label: str
    range: FeatureRange

    def covers(self, query: "FeatureKey", guard: float = DEFAULT_GUARD_BAND) -> bool:
        """The pruning predicate of Section 3.4.

        An indexed pattern survives pruning for ``query`` iff the root
        labels match and the indexed range contains the query range.
        """
        return self.root_label == query.root_label and self.range.contains(
            query.range, guard=guard
        )


def pattern_features(
    graph: BisimGraph,
    encoder: EdgeLabelEncoder,
    max_vertices: int | None = None,
    solver: str | None = None,
) -> FeatureKey:
    """Extract the :class:`FeatureKey` of a twig pattern.

    ``solver`` selects the eigensolver (``"real"``/``"legacy"``, see
    :mod:`repro.spectral.kernel`); ``None`` resolves the process
    default.

    Raises:
        PatternTooLargeError: when the graph exceeds ``max_vertices``
            (callers in index construction catch this and substitute
            :data:`ALL_COVERING_RANGE`).
    """
    lmin, lmax = graph_eigenvalue_range(
        graph, encoder, max_vertices=max_vertices, solver=solver
    )
    return FeatureKey(graph.root.label, FeatureRange(lmin, lmax))


def spectrum_contains(
    indexed: np.ndarray,
    query: np.ndarray,
    tolerance: float = 1e-6,
) -> bool:
    """Multiset containment of spectra, with numerical tolerance.

    This is the stronger subset test the paper sketches in Section 3.3
    ("the set of eigenvalues of H are a subset of the eigenvalues of G")
    but rejects for the production index because of variable-size keys
    and round-off risk.  We implement it for the feature ablation: both
    inputs must be ascending (as returned by
    :func:`repro.spectral.eigen.spectrum`); every query eigenvalue must be
    matched by a distinct indexed eigenvalue within ``tolerance``.
    """
    i = 0
    n = indexed.size
    for value in query:
        # Advance to the first unconsumed indexed eigenvalue that is not
        # too far below `value`; both arrays ascend so a merge-scan works.
        while i < n and indexed[i] < value - tolerance:
            i += 1
        if i >= n or indexed[i] > value + tolerance:
            return False
        i += 1
    return True

"""Value-to-label hashing (Section 4.6).

PCDATA has an unbounded domain, so before values participate in the
structural index each text value is hashed into a small domain of β
buckets; the bucket becomes the text node's label.  Smaller β keeps the
bisimulation graphs (and hence the B-tree) small but hashes more values
together (more false positives); larger β does the opposite — the
trade-off :mod:`benchmarks.bench_ablation_beta` sweeps.

The hash must be *stable across processes* (the index outlives the
construction run), so it is CRC-32, not Python's salted ``hash``.
"""

from __future__ import annotations

import zlib

#: Prefix marking value labels.  It cannot collide with element tags
#: because "#" is not a NameStartChar in XML.
VALUE_LABEL_PREFIX = "#v"


class ValueHasher:
    """Map text values into ``β`` stable label buckets."""

    def __init__(self, buckets: int) -> None:
        if buckets < 1:
            raise ValueError(f"need at least 1 bucket, got {buckets}")
        self.buckets = buckets

    def __call__(self, value: str) -> str:
        """The hashed label of ``value``."""
        bucket = zlib.crc32(value.encode("utf-8")) % self.buckets
        return f"{VALUE_LABEL_PREFIX}{bucket}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValueHasher) and other.buckets == self.buckets

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((ValueHasher, self.buckets))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueHasher(buckets={self.buckets})"


def is_value_label(label: str) -> bool:
    """True for labels produced by a :class:`ValueHasher`."""
    return label.startswith(VALUE_LABEL_PREFIX)

"""Index verification: cross-check a (possibly reloaded) FIX index
against first principles.

Checks performed:

1. **B-tree invariants** — key order along the leaf chain, separator
   bounds, entry count (``BPlusTree.check_invariants``).
2. **Entry census** — exactly one entry per unit: per live document in
   collection mode, per element in subpattern mode (Theorem 4).
3. **Key recomputation** — every stored feature key equals the key
   recomputed from the primary documents under the persisted encoder
   (within the numerical guard band); detects encoder/page corruption
   and stale indexes after out-of-band document edits.
4. **Pointer resolution** — every value pointer resolves to an element
   whose tag equals the key's root label.
5. **Clustered copies** — each copy unit parses and its root tag matches
   the entry's label.

Returns a :class:`VerificationReport`; ``ok`` is True when no problems
were found.  Exposed on the CLI as ``python -m repro verify DIR``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.btree.keys import decode_feature_key
from repro.core.construction import EntryGenerator
from repro.core.index import FixIndex
from repro.storage import NodePointer


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_index`."""

    entries_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the index passed every check."""
        return not self.problems

    def add(self, problem: str) -> None:
        # Cap the list so a totally corrupt index doesn't drown the
        # caller in millions of identical lines.
        if len(self.problems) < 100:
            self.problems.append(problem)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)}+ problem(s)"
        return f"verified {self.entries_checked} entries: {status}"


def verify_index(index: FixIndex, recompute_keys: bool = True) -> VerificationReport:
    """Run all consistency checks on ``index``.

    Args:
        index: a built or reloaded index.
        recompute_keys: when ``False``, skip the (comparatively slow)
            feature recomputation and only run the structural checks.
    """
    report = VerificationReport()

    # 1. B-tree structural invariants.
    try:
        index.btree.check_invariants()
    except ReproError as error:
        report.add(f"B-tree invariants: {error}")
        return report  # nothing below can be trusted

    # 3 (precompute). Expected keys per pointer, regenerated from primary.
    expected: dict[NodePointer, bytes] = {}
    if recompute_keys:
        shadow = EntryGenerator(
            index.encoder,
            index.config.depth_limit,
            text_label=index.value_hasher,
            max_pattern_vertices=index.config.max_pattern_vertices,
            max_unfolding_opens=index.config.max_unfolding_opens,
            solver=index.eigen_solver,
        )
        for doc_id in index.store.doc_ids():
            document = index.store.get_document(doc_id)
            for entry in shadow.entries_for(document):
                pointer = NodePointer(doc_id, entry.node_id)
                expected[pointer] = index._encode_key(entry.key)

    # 2, 3, 4, 5. Walk every stored entry.
    seen: set[NodePointer] = set()
    for raw_key, raw_value in index.btree.items():
        report.entries_checked += 1
        try:
            label, lmax, lmin = decode_feature_key(raw_key)
        except ReproError as error:
            report.add(f"undecodable key: {error}")
            continue
        entry = index._decode_entry(
            _key_of(label, lmax, lmin), raw_value
        )
        if entry.pointer in seen:
            report.add(f"duplicate entry for pointer {entry.pointer}")
        seen.add(entry.pointer)
        try:
            element = index.store.resolve(entry.pointer)
        except ReproError as error:
            report.add(f"dangling pointer {entry.pointer}: {error}")
            continue
        if element.tag != label:
            report.add(
                f"label mismatch at {entry.pointer}: key says {label!r}, "
                f"element is <{element.tag}>"
            )
        if recompute_keys:
            want = expected.get(entry.pointer)
            if want is None:
                report.add(f"orphan entry {entry.pointer} (unit not expected)")
            elif want != raw_key:
                want_label, want_max, want_min = decode_feature_key(want)
                report.add(
                    f"stale key at {entry.pointer}: stored "
                    f"({label}, {lmax:.6g}, {lmin:.6g}), recomputed "
                    f"({want_label}, {want_max:.6g}, {want_min:.6g})"
                )
        if entry.record is not None:
            assert index.clustered_store is not None
            try:
                unit = index.clustered_store.get_unit(entry.record)
            except ReproError as error:
                report.add(f"unreadable clustered copy {entry.record}: {error}")
                continue
            if unit.root.tag != label:
                report.add(
                    f"clustered copy mismatch at {entry.record}: "
                    f"<{unit.root.tag}> under key {label!r}"
                )

    # 2. Census: every expected unit present.
    if recompute_keys:
        for pointer in expected:
            if pointer not in seen:
                report.add(f"missing entry for unit {pointer}")

    return report


def _key_of(label: str, lmax: float, lmin: float):
    from repro.spectral import FeatureKey, FeatureRange

    return FeatureKey(label, FeatureRange(lmin, lmax))

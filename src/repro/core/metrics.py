"""Implementation-independent metrics (Section 6.2).

For a query over an index the paper defines::

    sel = 1 - rst / ent     (selectivity)
    pp  = 1 - cdt / ent     (pruning power)
    fpr = 1 - rst / cdt     (false-positive ratio)

where ``ent`` is the number of index entries, ``cdt`` the number of
candidates the pruning phase returns, and ``rst`` the number of entries
that produce at least one final result.  ``rst`` is computed against the
brute-force ground truth of :mod:`repro.query.match`, never against the
index — which also lets this reproduction *measure* false negatives
(true results the index pruned; see DESIGN.md §5a), a quantity the paper
assumes to be identically zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.index import FixIndex
from repro.core.processor import FixQueryProcessor
from repro.obs import MetricsRegistry
from repro.query.ast import Axis
from repro.query.decompose import decompose
from repro.query.match import matches_at, query_matches_document
from repro.query.twig import TwigQuery, twig_of
from repro.storage import NodePointer


@dataclass
class PruningMetrics:
    """The Section 6.2 triple, plus false-negative accounting."""

    ent: int
    cdt: int
    rst: int
    false_negatives: int = 0
    #: the true-result units, for downstream checks.
    true_units: set[NodePointer] = field(default_factory=set, repr=False)

    # Division guards: each ratio is undefined when its denominator is
    # zero but its numerator is not (e.g. ``cdt > 0`` with ``ent == 0``
    # would make the triple internally inconsistent), so all three
    # return NaN for that case — consistently, rather than the old
    # asymmetric mix of silent zeros.  A 0/0 ratio is vacuous (nothing
    # to measure) and stays 0.0, preserving the empty-index behaviour.

    @property
    def sel(self) -> float:
        """Selectivity: fraction of entries that produce no result."""
        if self.ent:
            return 1.0 - self.rst / self.ent
        return 0.0 if self.rst == 0 else float("nan")

    @property
    def pp(self) -> float:
        """Pruning power: fraction of entries the index pruned."""
        if self.ent:
            return 1.0 - self.cdt / self.ent
        return 0.0 if self.cdt == 0 else float("nan")

    @property
    def fpr(self) -> float:
        """False-positive ratio among the candidates."""
        if self.cdt:
            return 1.0 - self.rst / self.cdt
        return 0.0 if self.rst == 0 else float("nan")

    def as_row(self) -> tuple[float, float, float]:
        """``(sel, pp, fpr)`` for table printing."""
        return self.sel, self.pp, self.fpr


def true_result_units(index: FixIndex, twig: TwigQuery) -> set[NodePointer]:
    """Ground truth: the units of ``index`` that produce >= 1 result.

    * Collection index (depth limit 0): a unit is a document; it produces
      a result iff the original query matches it.
    * Depth-limited index: a unit is an element; it produces a result iff
      the leading-axis-rewritten query matches rooted at that element
      (``//``-leading), or the element is the document root and the query
      matches there (``/``-leading).
    """
    units: set[NodePointer] = set()
    if index.config.depth_limit <= 0:
        for doc_id in index.store.doc_ids():
            document = index.store.get_document(doc_id)
            if query_matches_document(twig, document):
                units.add(NodePointer(doc_id, document.root.node_id))
        return units
    for doc_id in index.store.doc_ids():
        document = index.store.get_document(doc_id)
        memo: dict[tuple[int, int], bool] = {}
        if twig.leading_axis is Axis.CHILD:
            if matches_at(twig.root, document.root, memo):
                units.add(NodePointer(doc_id, document.root.node_id))
            continue
        for element in document.elements():
            if element.tag == twig.root.label and matches_at(
                twig.root, element, memo
            ):
                units.add(NodePointer(doc_id, element.node_id))
    return units


def evaluate_pruning(
    index: FixIndex,
    query: TwigQuery | str,
    processor: FixQueryProcessor | None = None,
) -> PruningMetrics:
    """Compute ``(sel, pp, fpr)`` and false negatives for one query."""
    twig = query if isinstance(query, TwigQuery) else twig_of(query)
    processor = processor or FixQueryProcessor(index)
    candidates = {entry.pointer for entry in processor.prune(twig)}
    truth = true_result_units(index, twig)
    missed = truth - candidates
    return PruningMetrics(
        ent=index.entry_count,
        cdt=len(candidates),
        rst=len(truth),
        false_negatives=len(missed),
        true_units=truth,
    )


@dataclass
class MetricAverages:
    """Aggregates over a query batch (Figure 5's bars)."""

    queries: int = 0
    sel_sum: float = 0.0
    pp_sum: float = 0.0
    fpr_sum: float = 0.0
    false_negatives: int = 0

    def add(self, metrics: PruningMetrics) -> None:
        self.queries += 1
        self.sel_sum += metrics.sel
        self.pp_sum += metrics.pp
        self.fpr_sum += metrics.fpr
        self.false_negatives += metrics.false_negatives

    @property
    def avg_sel(self) -> float:
        return self.sel_sum / self.queries if self.queries else 0.0

    @property
    def avg_pp(self) -> float:
        return self.pp_sum / self.queries if self.queries else 0.0

    @property
    def avg_fpr(self) -> float:
        return self.fpr_sum / self.queries if self.queries else 0.0


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One query's observable cost, as reported by the processor."""

    source: str
    candidate_count: int
    result_count: int
    plan_seconds: float
    prune_seconds: float
    refine_seconds: float
    plan_cached: bool
    documents_fetched: int
    backend: str
    workers: int

    @property
    def false_positive_rate(self) -> float:
        """``fpr`` of this single query (0 for an empty candidate set)."""
        if not self.candidate_count:
            return 0.0
        return 1.0 - self.result_count / self.candidate_count

    @property
    def seconds(self) -> float:
        return self.plan_seconds + self.prune_seconds + self.refine_seconds


def publish_query_metrics(registry: MetricsRegistry, result) -> None:
    """Record one query's observable cost into ``registry``.

    The single write path for per-query metrics (DESIGN.md §10): the
    processor calls it on its obs registry, and
    :class:`QueryMetricsLog` calls it on its backing registry, so both
    views agree on metric names — ``query.count``,
    ``query.plan_cache.hits/misses``, per-backend candidate counters,
    phase-second counters, and the latency histograms.
    """
    registry.counter("query.count").inc()
    registry.counter(
        "query.plan_cache.hits" if result.plan_cached else "query.plan_cache.misses"
    ).inc()
    registry.counter("query.candidates").inc(result.candidate_count)
    registry.counter(f"query.candidates.{result.backend}").inc(
        result.candidate_count
    )
    registry.counter("query.results").inc(result.result_count)
    registry.counter("query.documents_fetched").inc(result.documents_fetched)
    registry.counter("query.phase_seconds.plan").inc(result.plan_seconds)
    registry.counter("query.phase_seconds.prune").inc(result.prune_seconds)
    registry.counter("query.phase_seconds.refine").inc(result.refine_seconds)
    registry.histogram("query.seconds").observe(result.seconds)
    registry.histogram("query.refine_seconds").observe(result.refine_seconds)
    # The quantile sketches behind p50/p95/p99 reporting (DESIGN.md
    # §13): total latency plus the per-phase split, one observation per
    # query.
    registry.sketch("query.seconds").observe(result.seconds)
    registry.sketch("query.plan_seconds").observe(result.plan_seconds)
    registry.sketch("query.prune_seconds").observe(result.prune_seconds)
    registry.sketch("query.refine_seconds").observe(result.refine_seconds)
    registry.gauge("query.workers").set(result.workers)


class QueryMetricsLog:
    """Rolling per-query metrics sink for :class:`FixQueryProcessor`.

    Pass one as ``metrics_log=`` and every ``query()`` call appends a
    :class:`QueryRecord`; :meth:`summary` aggregates candidates, FP
    rates, phase timings, and plan-cache hit rate.

    Under ``repro.obs`` the log is a *view over a metrics registry*:
    totals come from the registry's ``query.*`` instruments (so they
    survive window eviction), while the bounded ``records`` window
    keeps the per-query detail for windowed statistics.  The backing
    registry is private by default; pass the processor's
    ``obs.registry`` to share one set of counters (the processor then
    skips its own publishing — no double counting).
    """

    def __init__(
        self, capacity: int = 4096, registry: MetricsRegistry | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"need a positive capacity, got {capacity}")
        self._capacity = capacity
        self.registry = registry if registry is not None else MetricsRegistry()
        self.records: list[QueryRecord] = []

    @property
    def total_queries(self) -> int:
        """Total queries ever recorded (survives window eviction)."""
        return int(self.registry.counter("query.count").value)

    def record(self, source: str, result) -> None:
        """Append one processor result (duck-typed ``FixQueryResult``)."""
        self.records.append(
            QueryRecord(
                source=source,
                candidate_count=result.candidate_count,
                result_count=result.result_count,
                plan_seconds=result.plan_seconds,
                prune_seconds=result.prune_seconds,
                refine_seconds=result.refine_seconds,
                plan_cached=result.plan_cached,
                documents_fetched=result.documents_fetched,
                backend=result.backend,
                workers=result.workers,
            )
        )
        publish_query_metrics(self.registry, result)
        if len(self.records) > self._capacity:
            del self.records[: len(self.records) - self._capacity]

    def __len__(self) -> int:
        return len(self.records)

    def summary(self) -> dict:
        """Aggregates over the log (JSON-friendly).

        Totals read the backing registry (all recorded queries);
        ``queries`` and ``avg_false_positive_rate`` describe the
        bounded window, which is all a rolling view can say about
        per-query distributions.
        """
        n = len(self.records)
        if not n and not self.total_queries:
            return {"queries": 0}
        counters = self.registry.snapshot()["counters"]
        hits = counters.get("query.plan_cache.hits", 0.0)
        misses = counters.get("query.plan_cache.misses", 0.0)
        return {
            "queries": n,
            "total_queries": self.total_queries,
            "candidates": int(counters.get("query.candidates", 0)),
            "results": int(counters.get("query.results", 0)),
            "avg_false_positive_rate": (
                sum(r.false_positive_rate for r in self.records) / n
                if n
                else 0.0
            ),
            "plan_cache_hit_rate": (
                hits / (hits + misses) if hits + misses else 0.0
            ),
            "documents_fetched": int(counters.get("query.documents_fetched", 0)),
            "plan_seconds": counters.get("query.phase_seconds.plan", 0.0),
            "prune_seconds": counters.get("query.phase_seconds.prune", 0.0),
            "refine_seconds": counters.get("query.phase_seconds.refine", 0.0),
        }


def classify_selectivity(sel: float) -> str:
    """The paper's informal hi / md / lo buckets.

    Queries with selectivity very close to 0 or 1 are excluded from its
    random batches ("we eliminated queries that have selectivity 0 and
    1"); the thresholds here are the ones the representative-query lists
    imply: >= 0.9 high, >= 0.4 medium, else low.
    """
    if sel >= 0.9:
        return "hi"
    if sel >= 0.4:
        return "md"
    return "lo"

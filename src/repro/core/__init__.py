"""FIX — the paper's primary contribution.

* :class:`~repro.core.index.FixIndex` — index construction (Algorithm 1)
  over a :class:`~repro.storage.primary.PrimaryXMLStore`, in clustered or
  unclustered form, purely structural or value-extended (Section 4.6).
* :class:`~repro.core.processor.FixQueryProcessor` — the two-phase query
  pipeline of Algorithm 2: feature-key pruning via B-tree range scan,
  then refinement with a navigational engine.
* :class:`~repro.core.values.ValueHasher` — the β-bucket value→label hash.
* :mod:`~repro.core.metrics` — the implementation-independent metrics of
  Section 6.2 (selectivity, pruning power, false-positive ratio) plus the
  false-negative accounting this reproduction adds (DESIGN.md §5a).
* :mod:`~repro.core.stats` — the λ_max histogram the paper suggests for
  optimizer cost estimation, with candidate-count estimation.
"""

from repro.core.epoch import EpochManager, EpochSnapshot
from repro.core.index import FixIndex, FixIndexConfig, IndexEntry, StagedMutation
from repro.core.metrics import (
    PruningMetrics,
    QueryMetricsLog,
    QueryRecord,
    evaluate_pruning,
    publish_query_metrics,
)
from repro.core.optimizer import AccessPath, CostModel, ExplainedPlan, QueryOptimizer
from repro.core.persistence import load_index, save_index
from repro.core.plan import PlanCache, QueryPlan, build_plan
from repro.core.processor import FixQueryProcessor, FixQueryResult
from repro.core.sharding import ShardedFixIndex
from repro.core.stats import FeatureHistogram
from repro.core.values import ValueHasher
from repro.core.verify import VerificationReport, verify_index

__all__ = [
    "AccessPath",
    "CostModel",
    "EpochManager",
    "EpochSnapshot",
    "ExplainedPlan",
    "FeatureHistogram",
    "StagedMutation",
    "QueryOptimizer",
    "FixIndex",
    "FixIndexConfig",
    "FixQueryProcessor",
    "FixQueryResult",
    "IndexEntry",
    "load_index",
    "save_index",
    "PlanCache",
    "PruningMetrics",
    "QueryMetricsLog",
    "QueryPlan",
    "QueryRecord",
    "ShardedFixIndex",
    "ValueHasher",
    "build_plan",
    "evaluate_pruning",
    "publish_query_metrics",
    "VerificationReport",
    "verify_index",
]

"""Epoch-based snapshot isolation with per-root-label scoping.

The blunt invalidation model this replaces — one global ``generation``
counter bumped by every mutation — made `add_document` /
`remove_document` *correct* but expensive downstream: every cached plan,
histogram, and spatial-view partition was discarded wholesale, even when
the mutated document shared no root label with them.

This module provides the real thing:

* :class:`EpochSnapshot` — an immutable view of the epoch state: one
  global epoch plus a per-root-label epoch vector.  A consumer that
  cached something at snapshot ``S`` asks a *later* snapshot which
  labels moved since ``S.epoch`` and refreshes only those slices.
* :class:`EpochManager` — publishes snapshots and coordinates readers
  and writers.  Readers :meth:`pin` the snapshot they started on (a
  shared latch); a writer's :meth:`mutation` waits for pinned readers to
  drain, applies its B-tree deltas exclusively, then publishes a new
  snapshot bumping the global epoch and exactly the touched labels.

Why this is sound: the edge-label encoder assigns codes in first-seen
order and never reassigns them (``EdgeLabelEncoder.merge`` enforces the
prefix property), so a cached plan's feature keys remain byte-valid
forever — invalidation is purely about *entry population* changes, which
a mutation confines to the root labels of the entries it inserts or
deletes.  Per-label scoping is therefore exactly as conservative as the
global counter for touched labels and strictly cheaper for the rest.

Latching policy (writer preference): a writer drains pinned readers
before touching shared structures — which is what makes a pinned
query's answer equal to either the pre- or post-mutation snapshot,
never a mix — and while a writer is *waiting or applying*, new pins
queue behind it.  Gating new pins is what keeps the policy live: under
a saturated read loop the gap between one query's unpin and the next
query's pin is a few bytecodes, and a reader-preferring latch loses
that race forever (the writer starves — observed as mutations making
no progress while tens of thousands of queries flow).  The price is
bounded and small: a new reader waits out one staged apply (a B-tree
delta — staging, the expensive part, happens before the latch), never
an unbounded queue of them, because every waiting writer admitted
ahead of the reader must itself drain before the next can enter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping


@dataclass(frozen=True)
class EpochSnapshot:
    """An immutable point-in-time view of the epoch state.

    Attributes:
        epoch: the global epoch — bumped by every mutation.
        floor: the epoch of the last *full* invalidation (a rebuild or
            an unscoped mutation); every label's epoch is at least this.
        label_epochs: root label -> epoch of the last mutation that
            touched it (labels never touched since the floor are absent
            and implicitly carry ``floor``).
    """

    epoch: int = 0
    floor: int = 0
    label_epochs: Mapping[str, int] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def label_epoch(self, label: str) -> int:
        """The epoch of the last mutation touching ``label``."""
        return max(self.floor, self.label_epochs.get(label, 0))

    def max_epoch_over(self, labels: Iterable[str]) -> int:
        """The newest epoch across ``labels`` — the validity bound for
        anything cached over exactly that label set.  An empty label
        set is answered conservatively with the global epoch (nothing
        can be proven untouched)."""
        newest = None
        for label in labels:
            current = self.label_epoch(label)
            if newest is None or current > newest:
                newest = current
        return self.epoch if newest is None else newest

    def changed_labels_since(self, epoch: int) -> list[str] | None:
        """Labels mutated after ``epoch``, for scoped refresh — or
        ``None`` when a full invalidation intervened (``floor`` moved
        past ``epoch``) and the caller must rebuild wholesale."""
        if self.floor > epoch:
            return None
        return [
            label
            for label, touched in self.label_epochs.items()
            if touched > epoch
        ]


class EpochManager:
    """Publishes :class:`EpochSnapshot`\\ s and latches readers/writers.

    One manager guards one index's mutable structures (a plain
    :class:`~repro.core.index.FixIndex`, one shard, or a sharded
    coordinator — shards nest their own managers under the
    coordinator's).  All counters are plain ints mutated under the GIL
    or the latch; :meth:`publish` delta-syncs them into a
    ``repro.obs`` registry as ``epoch.*``.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._applying = False
        self._writers_waiting = 0
        self._snapshot = EpochSnapshot()
        #: reader pins taken (``epoch.pins``).
        self.pins = 0
        #: mutations applied (``epoch.mutations``).
        self.mutations = 0
        #: label-scoped view/cache refreshes downstream consumers
        #: performed against this manager's snapshots.
        self.scoped_invalidations = 0
        #: full rebuild invalidations (floor bumps or unscoped refresh).
        self.full_invalidations = 0

    # ------------------------------------------------------------------ #
    # Snapshot access
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> EpochSnapshot:
        """The latest published snapshot (an atomic reference read)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """The current global epoch."""
        return self._snapshot.epoch

    @property
    def pinned_readers(self) -> int:
        """Readers currently holding a pin (a point-in-time gauge the
        resource sampler exports as ``epoch.readers_pinned``)."""
        return self._readers

    @property
    def writers_waiting(self) -> int:
        """Writers queued for (or holding) the apply window —
        ``epoch.writers_waiting``, the mutation queue depth."""
        return self._writers_waiting + (1 if self._applying else 0)

    # ------------------------------------------------------------------ #
    # Reader side
    # ------------------------------------------------------------------ #

    @contextmanager
    def pin(self):
        """Pin the current snapshot for the duration of a read.

        While at least one pin is held no mutation can *apply* (writers
        wait), so everything the reader dereferences — B-tree pages,
        histogram slices, spatial partitions — belongs to the pinned
        snapshot.  A new pin queues behind pending writers (writer
        preference — see the module docstring for why anything weaker
        starves the mutation path under a hot read loop); once taken,
        a pin is never interrupted.
        """
        with self._cond:
            while self._applying or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.pins += 1
            snapshot = self._snapshot
        try:
            yield snapshot
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Writer side
    # ------------------------------------------------------------------ #

    @contextmanager
    def mutation(self, labels: Iterable[str] | None):
        """Apply a mutation touching ``labels`` exclusively.

        Drains pinned readers, runs the body with the latch held in
        exclusive mode, then publishes a new snapshot bumping the
        global epoch and each touched label's epoch.  ``labels=None``
        publishes a full invalidation (the floor moves) — the escape
        hatch for rebuilds, whose touched set is "everything".

        The new snapshot is published even if the body raises: a
        partially applied delta must still invalidate downstream
        caches, conservatively.
        """
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._applying or self._readers:
                    self._cond.wait()
                self._applying = True
            finally:
                self._writers_waiting -= 1
                # Wakes readers gated on the waiting count if the wait
                # itself raised (on success they stay out: _applying).
                self._cond.notify_all()
        try:
            yield
        finally:
            with self._cond:
                self._advance_locked(labels)
                self._applying = False
                self._cond.notify_all()

    def advance(self, labels: Iterable[str] | None) -> EpochSnapshot:
        """Publish a new epoch without the exclusive apply window — for
        callers that already hold a coarser latch (a sharded
        coordinator advancing a shard it mutated under its own
        ``mutation``)."""
        with self._cond:
            return self._advance_locked(labels)

    def _advance_locked(self, labels: Iterable[str] | None) -> EpochSnapshot:
        previous = self._snapshot
        epoch = previous.epoch + 1
        if labels is None:
            snapshot = EpochSnapshot(
                epoch=epoch, floor=epoch, label_epochs=MappingProxyType({})
            )
        else:
            merged = dict(previous.label_epochs)
            for label in labels:
                merged[label] = epoch
            snapshot = EpochSnapshot(
                epoch=epoch,
                floor=previous.floor,
                label_epochs=MappingProxyType(merged),
            )
        self._snapshot = snapshot
        self.mutations += 1
        return snapshot

    def rebuild(self) -> EpochSnapshot:
        """Publish a full invalidation (floor bump) after a rebuild."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._applying or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
                self._cond.notify_all()
            return self._advance_locked(None)

    # ------------------------------------------------------------------ #
    # Downstream refresh accounting
    # ------------------------------------------------------------------ #

    def note_scoped_refresh(self, label_count: int = 1) -> None:
        """A consumer refreshed ``label_count`` label slices instead of
        rebuilding (counts one scoped invalidation event)."""
        self.scoped_invalidations += 1

    def note_full_refresh(self) -> None:
        """A consumer rebuilt a view wholesale."""
        self.full_invalidations += 1

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    def publish(self, registry, prefix: str = "epoch.") -> None:
        """Delta-sync the epoch counters into a metrics registry."""
        registry.sync_counter(prefix + "pins", self.pins)
        registry.sync_counter(prefix + "mutations", self.mutations)
        registry.sync_counter(
            prefix + "invalidations.scoped", self.scoped_invalidations
        )
        registry.sync_counter(
            prefix + "invalidations.full", self.full_invalidations
        )
        registry.gauge(prefix + "current").set(self.epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self._snapshot
        return (
            f"EpochManager(epoch={snapshot.epoch}, floor={snapshot.floor}, "
            f"labels={len(snapshot.label_epochs)})"
        )

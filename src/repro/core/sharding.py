"""Sharded FIX index: partition-then-scatter-gather (DESIGN.md §11).

A :class:`ShardedFixIndex` partitions documents across ``N`` independent
shards.  Each shard is a complete, self-contained :class:`FixIndex` — its
own primary store, B-tree, spectral views, pagers — while the coordinator
exposes the single-index surface (``build`` / ``candidates_for_key`` /
``add_document`` / ``remove_document`` / ``save`` / ``load`` / stats), so
:class:`~repro.core.processor.FixQueryProcessor`, the optimizer, and the
CLI work over it unchanged.

The invariants that make the coordinator transparent:

* **Global document ids.**  Shard stores keep the coordinator's ids
  (tombstoning the gaps owned by sibling shards), so the 8-byte
  ``NodePointer`` values in every shard's B-tree are already global —
  no pointer translation exists anywhere.
* **One shared encoder.**  Every shard indexes under the coordinator's
  :class:`~repro.spectral.EdgeLabelEncoder`, pre-seeded over *all*
  documents in global doc-id order before any shard builds — the same
  determinism invariant the parallel build keeps (DESIGN.md §7).
  Seeding rides the routing pass: placement happens in ascending doc-id
  order, so walking each document's labels as it is placed is order-
  equivalent to the old dedicated pre-pass (and saves a full re-parse).
  A query's feature key is therefore valid against every shard, and the
  union of shard candidates is exactly the single index's candidate
  multiset: query answers are pointer-identical for any shard count.
* **Parallel shard builds.**  With ``shard_workers > 1`` the per-shard
  staging (parse + bisimulation + eigensolve) fans out across a cached
  process pool; the coordinator absorbs results in shard order and
  loads each staged entry list through the same bulk insert the serial
  build uses, so stats, traces, and on-disk bytes are identical for any
  worker count (``shard_workers=1`` runs the very same worker function
  in-process).  Spilled stores ship as ``ShardStoreRef`` (path + record
  directory) and are reattached read-only inside the worker.
* **Scatter-gather with selectivity ordering.**  A pruning scan visits
  shards most-selective-first, ordered by the per-shard λ_max histogram
  under the optimizer's cost model, and *skips* shards whose histogram
  proves the scan empty (exact per-label endpoints make the zero-
  estimate sound — :meth:`~repro.core.stats.FeatureHistogram.may_contain`).
  With ``shard_affinity="root-label"``, anchored queries typically visit
  a single shard.  Skip/visit counts publish as ``shards.*`` counters.
  With ``shard_workers > 1`` surviving shards are scanned concurrently
  on a shared thread pool and drained in dispatch order — concurrency
  never changes the merge order.
* **Failure containment.**  Storage or B-tree damage inside one shard —
  during a build worker's staging or a scatter scan — surfaces as a
  typed :class:`~repro.errors.ShardError` naming the shard, instead of
  poisoning the gather with a low-level exception or pool traceback.

Cross-shard refinement needs no machinery of its own: the processor's
grouped refinement batches candidates per document and fans the groups
out across the persistent refinement worker pools (PR 2), and since
shard candidates are plain global-pointer entries, groups from every
shard ride the same pools in one pass.  Alternatively the processor can
push the whole prune+refine pipeline *into* the shards
(``FixQueryProcessor(pushdown=True)`` over :meth:`pushdown_shards`), so
only verified matches cross back — pointer-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections.abc import Iterator

from repro.core.construction import seed_encoder, seed_encoder_from_source
from repro.core.epoch import EpochManager, EpochSnapshot
from repro.core.index import FixIndex, FixIndexConfig, IndexEntry
from repro.core.persistence import load_index, save_index
from repro.core.stats import FeatureHistogram
from repro.core.values import ValueHasher
from repro.errors import BTreeError, RecordError, ShardError, StorageError
from repro.obs import Obs
from repro.query.twig import TwigQuery
from repro.spectral import EdgeLabelEncoder, FeatureCache, FeatureKey
from repro.storage import NodePointer, Pager, PrimaryXMLStore
from repro.storage.pager import PagerStats
from repro.xmltree import Document, parse_xml, serialize_fragment

_MANIFEST_FILE = "sharded.json"
_FORMAT_VERSION = 1

#: cheap root-label peek for routing raw sources without a full parse:
#: skip the XML declaration / comments / doctype, take the first tag name.
_ROOT_TAG = re.compile(
    rb"\s*(?:<\?.*?\?>\s*|<!--.*?-->\s*|<!DOCTYPE[^>]*>\s*)*<\s*([^\s>/!?]+)",
    re.DOTALL,
)


def shard_directory(base: str, shard_id: int) -> str:
    """The on-disk directory of one shard under a sharded index root."""
    return os.path.join(base, f"shard-{shard_id}")


class _ShardRouter:
    """A :class:`PrimaryXMLStore`-shaped facade over the shard stores.

    Global doc ids route straight to the owning shard's store, so the
    refinement engines (and the optimizer's full-scan fallback) read
    documents without knowing shards exist.
    """

    def __init__(self, owner: "ShardedFixIndex") -> None:
        self._owner = owner

    def _store(self, doc_id: int) -> PrimaryXMLStore:
        return self._owner.shard_for_document(doc_id).store

    @property
    def document_count(self) -> int:
        return sum(1 for shard_id in self._owner.routing if shard_id is not None)

    def doc_ids(self) -> Iterator[int]:
        return (
            doc_id
            for doc_id, shard_id in enumerate(self._owner.routing)
            if shard_id is not None
        )

    def get_document(self, doc_id: int) -> Document:
        return self._store(doc_id).get_document(doc_id)

    def get_source(self, doc_id: int) -> str:
        return self._store(doc_id).get_source(doc_id)

    def resolve(self, pointer: NodePointer):
        return self._store(pointer.doc_id).resolve(pointer)

    def size_bytes(self) -> int:
        return sum(shard.store.size_bytes() for shard in self._owner.shards)


class _ShardedSpatialView:
    """Scatter-gather facade over the per-shard R-tree views, with the
    same skip/ordering policy as the B-tree scatter."""

    def __init__(self, owner: "ShardedFixIndex") -> None:
        self._owner = owner

    def candidates_for_key(
        self, query_key: FeatureKey, anchored: bool = True
    ) -> Iterator[IndexEntry]:
        owner = self._owner
        order = owner._scan_order(query_key, anchored)
        if owner.config.shard_workers > 1 and len(order) > 1:
            yield from owner._scatter_concurrent(
                order,
                lambda shard_id: list(
                    owner.shards[shard_id]
                    .spatial_view()
                    .candidates_for_key(query_key, anchored=anchored)
                ),
                "R-tree scan",
            )
            return
        for shard_id in order:
            shard = owner.shards[shard_id]
            try:
                yield from shard.spatial_view().candidates_for_key(
                    query_key, anchored=anchored
                )
            except (StorageError, BTreeError) as exc:
                raise ShardError(
                    f"shard {shard_id}: R-tree scan failed: {exc}",
                    shard=shard_id,
                ) from exc

    def entries_inspected(self) -> int:
        return sum(
            shard.spatial_view().entries_inspected()
            for shard in self._owner.shards
        )

    def nodes_visited(self) -> int:
        return sum(
            shard.spatial_view().nodes_visited() for shard in self._owner.shards
        )

    def publish(self, registry, prefix: str = "rtree.") -> None:
        registry.sync_counter(prefix + "entries_inspected", self.entries_inspected())
        registry.sync_counter(prefix + "nodes_visited", self.nodes_visited())


class ShardedFixIndex:
    """Coordinator over ``config.shards`` independent :class:`FixIndex`
    shards, duck-typing the single-index surface.

    Build with :meth:`build` (redistributing an existing store) or
    :meth:`build_from_sources` (streaming raw documents — the
    out-of-core path, which never materializes a monolithic store).
    """

    def __init__(self, config: FixIndexConfig | None = None) -> None:
        config = config or FixIndexConfig()
        if config.clustered:
            raise StorageError(
                "clustered indexes cannot be sharded (the copy store is "
                "laid out in global key order)"
            )
        self.config = config
        #: one encoder for every shard (the index-wide key agreement).
        self.encoder = EdgeLabelEncoder()
        self.value_hasher = (
            ValueHasher(config.value_buckets)
            if config.value_buckets is not None
            else None
        )
        #: one spectral feature cache shared by every shard: structural
        #: templates repeat across shard boundaries just as they repeat
        #: across documents.
        self.feature_cache = FeatureCache() if config.feature_cache else None
        self.obs = Obs.from_config(config.obs)
        #: doc_id -> owning shard (None = removed), the routing table.
        self.routing: list[int | None] = []
        self.clustered_store = None
        #: the coordinator's epoch manager: queries pin it, and every
        #: incremental mutation applies under it, so in-flight queries
        #: see either the pre- or post-mutation index — never a mix.
        #: Each shard nests its own manager (the coordinator's snapshot
        #: vector is the tuple of shard snapshots, :meth:`epoch_vector`).
        self.epochs = EpochManager()
        self.shards: list[FixIndex] = [
            self._new_shard(shard_id) for shard_id in range(config.shards)
        ]
        self.store = _ShardRouter(self)
        self._spatial_view: _ShardedSpatialView | None = None
        self._histograms: list[
            tuple[EpochSnapshot, FeatureHistogram] | None
        ] = [None] * config.shards

    @property
    def generation(self) -> int:
        """The coordinator's global epoch (legacy counter surface)."""
        return self.epochs.epoch

    # ------------------------------------------------------------------ #
    # Shard plumbing
    # ------------------------------------------------------------------ #

    def _new_shard(self, shard_id: int) -> FixIndex:
        import dataclasses

        spill = (
            shard_directory(self.config.spill_dir, shard_id)
            if self.config.spill_dir is not None
            else None
        )
        shard_config = dataclasses.replace(
            self.config, shards=1, spill_dir=spill, obs=None
        )
        if spill is not None:
            store_dir = os.path.join(spill, "store")
            os.makedirs(store_dir, exist_ok=True)
            pages = os.path.join(store_dir, "primary.pages")
            if os.path.exists(pages):
                os.remove(pages)
            store = PrimaryXMLStore(
                Pager(pages, cache_pages=self.config.page_cache_pages)
            )
        else:
            store = PrimaryXMLStore()
        # Each shard keeps a *private* Obs (its own registry): several
        # shards sync-publishing their own totals under one name would
        # max-merge instead of summing.  The coordinator aggregates.
        return FixIndex(
            store,
            shard_config,
            encoder=self.encoder,
            feature_cache=self.feature_cache,
        )

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: int) -> int:
        """The shard number owning a live document.

        Raises:
            RecordError: unknown or removed ``doc_id``.
        """
        if not 0 <= doc_id < len(self.routing) or self.routing[doc_id] is None:
            raise RecordError(f"no document with id {doc_id}")
        return self.routing[doc_id]

    def shard_for_document(self, doc_id: int) -> FixIndex:
        return self.shards[self.shard_of(doc_id)]

    def _route_source(self, source: str) -> int:
        """Routing decision for a raw document: stable content hash, or
        root-label affinity."""
        data = source.encode("utf-8")
        if self.config.shard_affinity == "root-label":
            match = _ROOT_TAG.match(data)
            if match is not None:
                label = match.group(1).decode("utf-8", "replace")
            else:  # fall back to a full parse for exotic prologs
                label = parse_xml(source).root.label
            data = label.encode("utf-8")
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.shard_count

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls, store: PrimaryXMLStore, config: FixIndexConfig | None = None
    ) -> "ShardedFixIndex":
        """Distribute ``store``'s documents into shards and build each.

        Document ids are preserved from ``store``, so answers are
        pointer-identical to ``FixIndex.build(store, ...)``.
        """
        sharded = cls(config)
        for doc_id in store.doc_ids():
            sharded._place_source(store.get_source(doc_id), doc_id)
        sharded._build_all()
        return sharded

    @classmethod
    def build_from_sources(
        cls, sources, config: FixIndexConfig | None = None
    ) -> "ShardedFixIndex":
        """Build by streaming raw XML sources (ids assigned in iteration
        order).  With ``config.spill_dir`` set, nothing monolithic is
        ever held in memory: each document goes straight into its
        shard's file-backed store."""
        sharded = cls(config)
        doc_id = 0
        for source in sources:
            sharded._place_source(source, doc_id)
            doc_id += 1
        sharded._build_all()
        return sharded

    def _place_source(self, source: str, doc_id: int) -> None:
        if doc_id < len(self.routing):
            raise StorageError(f"document id {doc_id} routed twice")
        shard_id = self._route_source(source)
        while len(self.routing) < doc_id:
            self.routing.append(None)
        self.routing.append(shard_id)
        self.shards[shard_id].store.add_source_at(source, doc_id)
        # Seed the shared encoder during routing: placement happens in
        # strictly ascending doc-id order from both build entrypoints,
        # so this is the same deterministic pre-pass _build_all used to
        # run — minus the second full-corpus store-fetch-and-parse.
        # Structural indexes seed from the token stream already in hand;
        # the value extension needs tree text ordering, so it parses.
        if self.value_hasher is None:
            seed_encoder_from_source(self.encoder, source)
        else:
            seed_encoder(
                self.encoder, parse_xml(source), text_label=self.value_hasher
            )

    def _build_all(self) -> None:
        from repro.core.parallel import StagedBuild, parallel_shard_stage

        workers = self.config.shard_workers
        with self.obs.span(
            "build.sharded", shards=self.shard_count, shard_workers=workers
        ):
            doc_lists: list[list[int]] = [[] for _ in range(self.shard_count)]
            for doc_id, shard_id in enumerate(self.routing):
                if shard_id is not None:
                    doc_lists[shard_id].append(doc_id)
            tasks = [
                self._shard_build_task(shard_id)
                for shard_id in range(self.shard_count)
                if doc_lists[shard_id]
            ]
            # Ordered streaming: shard k's staged entries arrive (and
            # its B-tree bulk-loads) while later shards still stage.
            results = parallel_shard_stage(tasks, workers)
            for shard_id, shard in enumerate(self.shards):
                with self.obs.span("build.shard", shard=shard_id) as span:
                    if doc_lists[shard_id]:
                        staged_id, staged = next(results)
                        assert staged_id == shard_id
                        if staged.trace_events:
                            self.obs.tracer.absorb(
                                staged.trace_events,
                                parent_id=self.obs.tracer.current_id,
                            )
                        if staged.encoder_state is not None:
                            # The no-drift invariant: pre-seeding was
                            # complete, so this merge must be a no-op.
                            self.encoder.merge(
                                EdgeLabelEncoder.from_dict(staged.encoder_state)
                            )
                        # Shard-order merge: the coordinator registry's
                        # build.doc_* sketch states depend only on the
                        # shard layout, never on shard_workers.
                        self.obs.registry.merge_sketch_states(staged.sketches)
                    else:
                        staged = StagedBuild()
                    shard.rebuild_from_staged(staged)
                    span.set(entries=shard.entry_count)
        self.epochs.rebuild()
        self._invalidate_views()
        self._publish_metrics()

    def _shard_build_task(self, shard_id: int):
        """The pickled build payload for one populated shard: inline
        sources for in-memory shards, a flushed-store reference for
        spilled ones (keeping the fan-out O(documents) in pickle size,
        so the out-of-core property survives parallel builds)."""
        from repro.core.parallel import ShardBuildTask, ShardStoreRef

        shard = self.shards[shard_id]
        store = shard.store
        documents = None
        store_ref = None
        if store.pager.in_memory:
            documents = tuple(
                (doc_id, store.get_source(doc_id)) for doc_id in store.doc_ids()
            )
        else:
            store.pager.flush()  # workers reopen the file read-only
            store_ref = ShardStoreRef(
                pages_path=store.pager.path,
                page_size=store.pager.page_size,
                page_cache_pages=self.config.page_cache_pages,
                records=tuple(store.record_locations()),
            )
        return ShardBuildTask(
            shard_id=shard_id,
            encoder=self.encoder.to_dict(),
            depth_limit=self.config.depth_limit,
            value_buckets=self.config.value_buckets,
            max_pattern_vertices=self.config.max_pattern_vertices,
            max_unfolding_opens=self.config.max_unfolding_opens,
            feature_cache=self.config.feature_cache,
            eigen_solver=shard.eigen_solver,
            trace=self.obs.tracing,
            documents=documents,
            store_ref=store_ref,
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def add_document(self, document: Document) -> int:
        """Store and index a new document (unclustered shards only).

        Routing hashes the serialized form — the same bytes
        :meth:`build` routes on — so incremental adds land where a
        rebuild would put them.

        The expensive staging (parse, bisimulation, eigensolve) runs
        *outside* the coordinator latch; only the store append, routing
        update, and B-tree delta apply under ``epochs.mutation``, so
        in-flight queries are stalled for microseconds, not eigensolves.
        """
        source = serialize_fragment(document.root)
        doc_id = len(self.routing)
        shard_id = self._route_source(source)
        shard = self.shards[shard_id]
        staged = shard.stage_document(doc_id, document)
        with self.epochs.mutation(staged.labels):
            shard.store.add_document_at(document, doc_id)
            self.routing.append(shard_id)
            shard.apply_staged_add(staged)
        self._publish_metrics()
        return doc_id

    def remove_document(self, doc_id: int) -> int:
        """Remove a document and its entries from its owning shard.
        Returns the number of index entries removed."""
        shard_id = self.shard_of(doc_id)
        shard = self.shards[shard_id]
        staged = shard.stage_removal(doc_id)
        with self.epochs.mutation(staged.labels):
            removed = shard.apply_staged_removal(staged)
            self.routing[doc_id] = None
        self._publish_metrics()
        return removed

    def epoch_vector(self) -> tuple[EpochSnapshot, ...]:
        """The per-shard epoch snapshot vector as of now; under a
        coordinator pin this vector is frozen (shard mutations only
        happen inside the coordinator's exclusive apply window)."""
        return tuple(shard.epochs.current for shard in self.shards)

    def _invalidate_views(self, shard_id: int | None = None) -> None:
        if shard_id is None:
            self._histograms = [None] * self.shard_count
        else:
            self._histograms[shard_id] = None

    # ------------------------------------------------------------------ #
    # Coverage and query features (identical across shards — one
    # encoder, one config — so shard 0 answers for everyone)
    # ------------------------------------------------------------------ #

    def covers(self, twig: TwigQuery) -> bool:
        return self.shards[0].covers(twig)

    def ensure_covers(self, twig: TwigQuery) -> None:
        self.shards[0].ensure_covers(twig)

    def query_features(self, twig: TwigQuery) -> FeatureKey:
        return self.shards[0].query_features(twig)

    # ------------------------------------------------------------------ #
    # Pruning scan: scatter-gather
    # ------------------------------------------------------------------ #

    def candidates(self, twig: TwigQuery) -> Iterator[IndexEntry]:
        """All entries whose key covers the twig's feature key (same
        contract as :meth:`FixIndex.candidates`).

        Raises:
            IndexCoverageError: when :meth:`covers` is false.
        """
        from repro.query.ast import Axis

        self.ensure_covers(twig)
        query_key = self.query_features(twig)
        anchored = (
            self.config.depth_limit > 0 or twig.leading_axis is Axis.CHILD
        )
        yield from self.candidates_for_key(query_key, anchored=anchored)

    def candidates_for_key(
        self, query_key: FeatureKey, anchored: bool = True
    ) -> Iterator[IndexEntry]:
        """Scatter the pruning scan across shards, most selective first.

        Shards whose λ_max histogram proves the scan empty are skipped
        without being touched; ``shards.visited`` / ``shards.skipped``
        counters in the coordinator registry record the saving.

        Raises:
            ShardError: when one shard's scan fails (names the shard).
        """
        order = self._scan_order(query_key, anchored)
        counters = self.obs.registry
        counters.counter("shards.skipped").inc(self.shard_count - len(order))
        if self.config.shard_workers > 1 and len(order) > 1:
            # Eager dispatch scans every ordered shard, so visits are
            # counted up front (and in this consumer thread only —
            # registry counters are not thread-safe).
            counters.counter("shards.visited").inc(len(order))
            yield from self._scatter_concurrent(
                order,
                lambda shard_id: list(
                    self.shards[shard_id].candidates_for_key(
                        query_key, anchored=anchored
                    )
                ),
                "pruning scan",
            )
            return
        for shard_id in order:
            counters.counter("shards.visited").inc()
            try:
                yield from self.shards[shard_id].candidates_for_key(
                    query_key, anchored=anchored
                )
            except (StorageError, BTreeError) as exc:
                raise ShardError(
                    f"shard {shard_id}: pruning scan failed: {exc}",
                    shard=shard_id,
                ) from exc

    def _scatter_concurrent(self, order, scan_one, what: str):
        """Run ``scan_one(shard_id)`` for every shard of ``order`` on
        the shared scan executor (bounded at ``shard_workers`` threads)
        and yield the per-shard results *in ``order``* — a deterministic
        shard-ordered merge, so the candidate stream is identical to the
        serial gather.  Per-shard scans touch only their own shard's
        B-tree/pager/store, so threads never share mutable state.

        Raises:
            ShardError: a shard's scan failed (names the shard).
        """
        from repro.core.parallel import scan_executor

        executor = scan_executor(self.config.shard_workers)
        futures = [
            (shard_id, executor.submit(scan_one, shard_id))
            for shard_id in order
        ]
        for shard_id, future in futures:
            try:
                chunk = future.result()
            except (StorageError, BTreeError) as exc:
                raise ShardError(
                    f"shard {shard_id}: {what} failed: {exc}", shard=shard_id
                ) from exc
            yield from chunk

    def _scan_order(self, query_key: FeatureKey, anchored: bool) -> list[int]:
        """Shards worth scanning, cheapest (most selective) first."""
        from repro.core.optimizer import shard_scan_cost

        guard = self.config.guard_band
        ranked: list[tuple[float, int]] = []
        for shard_id in range(self.shard_count):
            histogram = self._histogram_for(shard_id)
            if not histogram.may_contain(
                query_key, anchored=anchored, guard=guard
            ):
                continue
            ranked.append(
                (shard_scan_cost(histogram, query_key, anchored), shard_id)
            )
        ranked.sort()
        return [shard_id for _, shard_id in ranked]

    def _histogram_for(self, shard_id: int) -> FeatureHistogram:
        """The shard's λ_max histogram, kept fresh per shard epoch:
        only the label slices mutated since the cached snapshot are
        recomputed; untouched labels keep their slices (and a floor
        bump — shard rebuild — falls back to a full rebuild)."""
        shard = self.shards[shard_id]
        snapshot = shard.epochs.current
        cached = self._histograms[shard_id]
        if cached is not None and cached[0].epoch == snapshot.epoch:
            return cached[1]
        try:
            if cached is None:
                histogram = FeatureHistogram(shard)
            else:
                stale = snapshot.changed_labels_since(cached[0].epoch)
                if stale is None:
                    histogram = FeatureHistogram(shard)
                    shard.epochs.note_full_refresh()
                else:
                    histogram = cached[1]
                    if stale:
                        histogram.refresh(shard, stale)
                        shard.epochs.note_scoped_refresh(len(stale))
        except (StorageError, BTreeError) as exc:
            raise ShardError(
                f"shard {shard_id}: histogram scan failed: {exc}",
                shard=shard_id,
            ) from exc
        self._histograms[shard_id] = (snapshot, histogram)
        return histogram

    def pushdown_shards(
        self, feature_keys, anchored: "list[bool] | tuple[bool, ...]"
    ) -> list[int]:
        """Shards that can contribute to a query whose *every* pruning
        fragment is ``feature_keys`` — the shard set refinement push-down
        scatters over (DESIGN.md §11).

        Because pointers partition by shard, an intersection survivor
        must appear in every fragment's candidate stream *within its own
        shard*; a shard whose histogram proves any fragment empty there
        cannot contribute and is skipped soundly.  Ordered most
        selective first by the first fragment's scan cost.  Updates the
        ``shards.visited`` / ``shards.skipped`` counters (one visit per
        participating shard — prune and refine happen in one descent).
        """
        from repro.core.optimizer import shard_scan_cost

        guard = self.config.guard_band
        ranked: list[tuple[float, int]] = []
        for shard_id in range(self.shard_count):
            histogram = self._histogram_for(shard_id)
            if not all(
                histogram.may_contain(key, anchored=anchor, guard=guard)
                for key, anchor in zip(feature_keys, anchored)
            ):
                continue
            ranked.append(
                (
                    shard_scan_cost(histogram, feature_keys[0], anchored[0]),
                    shard_id,
                )
            )
        ranked.sort()
        order = [shard_id for _, shard_id in ranked]
        counters = self.obs.registry
        counters.counter("shards.visited").inc(len(order))
        counters.counter("shards.skipped").inc(self.shard_count - len(order))
        return order

    def spatial_view(self) -> _ShardedSpatialView:
        """The scatter-gather R-tree facade (per-shard trees are built
        lazily by each shard and refreshed per-label under the shard's
        own epoch manager)."""
        if self._spatial_view is None:
            self._spatial_view = _ShardedSpatialView(self)
        return self._spatial_view

    # ------------------------------------------------------------------ #
    # Measurements and metrics
    # ------------------------------------------------------------------ #

    @property
    def entry_count(self) -> int:
        return sum(shard.entry_count for shard in self.shards)

    def size_bytes(self) -> int:
        return sum(shard.size_bytes() for shard in self.shards)

    def total_size_bytes(self) -> int:
        return sum(shard.total_size_bytes() for shard in self.shards)

    def iter_entries(self) -> Iterator[IndexEntry]:
        """Every shard's entries (shard-major; callers needing global
        key order sort, exactly as they do for scan results)."""
        for shard in self.shards:
            yield from shard.iter_entries()

    def iter_label_entries(self, label: str) -> Iterator[IndexEntry]:
        """Every shard's surviving entries under one root label — the
        scoped-refresh scan (histogram slices, spatial partitions)."""
        for shard in self.shards:
            yield from shard.iter_label_entries(label)

    def pager_stats(self) -> PagerStats:
        """Summed pager counters across every shard's pagers."""
        return PagerStats.combine(
            [shard.pager_stats() for shard in self.shards]
        )

    def btree_stats(self):
        """Summed B-tree counters across shards."""
        from repro.btree.tree import BTreeStats

        return BTreeStats.combine([shard.btree.stats for shard in self.shards])

    def publish_scan_stats(self, registry) -> None:
        """Aggregate shard scan counters into ``registry`` (summing
        across shards, then delta-syncing — each shard's own registry
        stays private so the sums stay monotone)."""
        self.btree_stats().publish(registry)
        self.pager_stats().publish(registry)

    def balance(self) -> dict:
        """Per-shard entry/document balance (skew ratio, empty shards)
        — see :func:`repro.core.stats.shard_balance`."""
        from repro.core.stats import shard_balance

        return shard_balance(self)

    def _publish_metrics(self) -> None:
        import math

        registry = self.obs.registry
        self.publish_scan_stats(registry)
        registry.gauge("index.entries").set(self.entry_count)
        registry.gauge("index.btree_bytes").set(self.size_bytes())
        registry.gauge("index.generation").set(self.generation)
        registry.gauge("shards.count").set(self.shard_count)
        for shard_id, shard in enumerate(self.shards):
            registry.gauge(f"shards.{shard_id}.entries").set(shard.entry_count)
        balance = self.balance()
        registry.gauge("shards.empty").set(len(balance["empty_shards"]))
        if math.isfinite(balance["skew"]):
            registry.gauge("shards.skew").set(balance["skew"])
        self.epochs.publish(registry)
        # Aggregated shard-level epoch accounting (each shard's manager
        # is private; summing then delta-syncing keeps totals monotone).
        registry.sync_counter(
            "epoch.shard.mutations",
            sum(shard.epochs.mutations for shard in self.shards),
        )
        registry.sync_counter(
            "epoch.shard.invalidations.scoped",
            sum(shard.epochs.scoped_invalidations for shard in self.shards),
        )
        registry.sync_counter(
            "epoch.shard.invalidations.full",
            sum(shard.epochs.full_invalidations for shard in self.shards),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, directory: str) -> None:
        """Persist the coordinator manifest plus every shard (stores
        included — unlike a single :class:`FixIndex`, a sharded index
        owns its primary storage).

        Shards that spilled into ``directory`` during an out-of-core
        build only flush in place (``copy_to`` degenerates to a flush
        when source and target are the same file)."""
        os.makedirs(directory, exist_ok=True)
        for shard_id, shard in enumerate(self.shards):
            sdir = shard_directory(directory, shard_id)
            shard.store.save(os.path.join(sdir, "store"))
            save_index(shard, sdir)
        manifest = {
            "format_version": _FORMAT_VERSION,
            "config": {
                "depth_limit": self.config.depth_limit,
                "clustered": self.config.clustered,
                "value_buckets": self.config.value_buckets,
                "max_pattern_vertices": self.config.max_pattern_vertices,
                "max_unfolding_opens": self.config.max_unfolding_opens,
                "guard_band": self.config.guard_band,
                "workers": self.config.workers,
                "feature_cache": self.config.feature_cache,
                "prune_backend": self.config.prune_backend,
                "eigen_solver": self.config.eigen_solver,
                "shards": self.config.shards,
                "shard_affinity": self.config.shard_affinity,
                "shard_workers": self.config.shard_workers,
                "page_cache_pages": self.config.page_cache_pages,
                "spill_dir": None,
                "btree_node_cache": self.config.btree_node_cache,
            },
            "routing": self.routing,
            "encoder": self.encoder.to_dict(),
        }
        with open(
            os.path.join(directory, _MANIFEST_FILE), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle, indent=2)

    @staticmethod
    def is_sharded(directory: str) -> bool:
        """Does ``directory`` hold a sharded index (vs a single one)?"""
        return os.path.exists(os.path.join(directory, _MANIFEST_FILE))

    @classmethod
    def load(
        cls,
        directory: str,
        *,
        page_cache_pages: int | None = None,
        shard_workers: int | None = None,
    ) -> "ShardedFixIndex":
        """Reattach to a sharded index previously :meth:`save`\\ d.

        ``page_cache_pages`` overrides the saved buffer-pool bound for
        this session (e.g. a query box with more memory than the build
        box); ``shard_workers`` overrides the scan-concurrency bound the
        same way (manifests from older builds default to ``1``).

        Raises:
            StorageError: missing/corrupt manifest or format mismatch.
        """
        import dataclasses

        manifest_path = os.path.join(directory, _MANIFEST_FILE)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError as exc:
            raise StorageError(f"no sharded index at {directory!r}") from exc
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"corrupt sharded manifest at {manifest_path!r}"
            ) from exc
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise StorageError(
                f"sharded format version {manifest.get('format_version')} is "
                f"not supported (expected {_FORMAT_VERSION})"
            )
        config = FixIndexConfig(**manifest["config"])
        if page_cache_pages is not None:
            config = dataclasses.replace(
                config, page_cache_pages=page_cache_pages
            )
        if shard_workers is not None:
            config = dataclasses.replace(config, shard_workers=shard_workers)
        sharded = cls.__new__(cls)
        sharded.config = config
        sharded.encoder = EdgeLabelEncoder.from_dict(manifest["encoder"])
        sharded.value_hasher = (
            ValueHasher(config.value_buckets)
            if config.value_buckets is not None
            else None
        )
        sharded.feature_cache = FeatureCache() if config.feature_cache else None
        sharded.obs = Obs.from_config(config.obs)
        sharded.routing = list(manifest["routing"])
        sharded.clustered_store = None
        sharded.epochs = EpochManager()
        sharded.shards = []
        for shard_id in range(config.shards):
            sdir = shard_directory(directory, shard_id)
            try:
                store = PrimaryXMLStore.load(
                    os.path.join(sdir, "store"),
                    page_cache_pages=config.page_cache_pages,
                )
                shard = load_index(
                    sdir, store, page_cache_pages=page_cache_pages
                )
            except (StorageError, FileNotFoundError) as exc:
                raise ShardError(
                    f"shard {shard_id}: cannot reattach: {exc}", shard=shard_id
                ) from exc
            # Re-share the coordinator's encoder/cache objects so future
            # incremental adds keep every shard's keys in agreement.
            shard.encoder = sharded.encoder
            shard._generator.encoder = sharded.encoder
            if sharded.feature_cache is not None:
                shard.feature_cache = sharded.feature_cache
                shard._generator.cache = sharded.feature_cache
            sharded.shards.append(shard)
        sharded.store = _ShardRouter(sharded)
        sharded._spatial_view = None
        sharded._histograms = [None] * config.shards
        sharded._publish_metrics()
        return sharded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedFixIndex(shards={self.shard_count}, "
            f"affinity={self.config.shard_affinity!r}, "
            f"entries={self.entry_count})"
        )

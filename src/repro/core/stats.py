"""Optimizer statistics: the λ_max histogram (Section 5).

The paper: "A good practice is to build a histogram on the primary
sorting key (e.g., λ_max) in the B-tree" to estimate the number of
candidate results before choosing a plan.  This module provides a
per-label equi-width histogram over the indexed λ_max values and the
corresponding candidate-count estimator; the estimator is validated
against exact scan counts in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.index import FixIndex
from repro.spectral import FeatureKey


@dataclass
class _LabelHistogram:
    lo: float
    hi: float
    counts: list[int]
    #: entries with the all-covering (infinite) range, kept out of the
    #: finite buckets but always counted as candidates.
    unbounded: int = 0

    def estimate_at_least(self, threshold: float) -> float:
        """Estimated number of entries with λ_max >= ``threshold``."""
        estimate = float(self.unbounded)
        if not self.counts:
            return estimate
        if threshold <= self.lo:
            return estimate + sum(self.counts)
        if threshold > self.hi:
            return estimate
        width = (self.hi - self.lo) / len(self.counts) or 1.0
        position = (threshold - self.lo) / width
        bucket = min(int(position), len(self.counts) - 1)
        # Linear interpolation inside the straddled bucket.
        fraction = 1.0 - (position - bucket)
        estimate += self.counts[bucket] * max(0.0, min(1.0, fraction))
        estimate += sum(self.counts[bucket + 1 :])
        return estimate


class FeatureHistogram:
    """Equi-width per-label histogram over indexed λ_max values.

    Label slices are independently refreshable: after a mutation, only
    the touched labels' slices are recomputed from the surviving entries
    (:meth:`refresh`), which keeps the recorded per-label endpoints both
    *sound* and *tight* — removals shrink ``hi``, so the
    :meth:`may_contain` skip test never degrades on churn.
    """

    def __init__(self, index: FixIndex, buckets: int = 32) -> None:
        if buckets < 1:
            raise ValueError(f"need at least 1 bucket, got {buckets}")
        self.buckets = buckets
        values: dict[str, list[float]] = {}
        unbounded: dict[str, int] = {}
        for entry in index.iter_entries():
            label = entry.key.root_label
            if entry.key.range.is_all_covering():
                unbounded[label] = unbounded.get(label, 0) + 1
                continue
            values.setdefault(label, []).append(entry.key.range.lmax)
        self._histograms: dict[str, _LabelHistogram] = {}
        for label, lmaxes in values.items():
            self._histograms[label] = self._slice_of(
                lmaxes, unbounded.pop(label, 0)
            )
        for label, count in unbounded.items():
            # Labels whose every entry is unbounded.
            self._histograms[label] = _LabelHistogram(0.0, 0.0, [], count)

    def _slice_of(
        self, lmaxes: list[float], unbounded: int
    ) -> _LabelHistogram:
        """One label's histogram slice from its finite λ_max values."""
        if not lmaxes:
            return _LabelHistogram(0.0, 0.0, [], unbounded)
        lo, hi = min(lmaxes), max(lmaxes)
        buckets = self.buckets
        counts = [0] * buckets
        span = (hi - lo) or 1.0
        for value in lmaxes:
            bucket = min(int((value - lo) / span * buckets), buckets - 1)
            counts[bucket] += 1
        return _LabelHistogram(lo, hi, counts, unbounded)

    def refresh(self, index: FixIndex, labels) -> None:
        """Recompute the slices of ``labels`` from the index's surviving
        entries (a per-label B-tree range scan each) — the scoped
        alternative to a full rebuild after a mutation.  A label with no
        remaining entries loses its slice entirely, so ``may_contain``
        goes back to proving its scans empty."""
        for label in labels:
            lmaxes: list[float] = []
            unbounded = 0
            for entry in index.iter_label_entries(label):
                if entry.key.range.is_all_covering():
                    unbounded += 1
                else:
                    lmaxes.append(entry.key.range.lmax)
            if not lmaxes and not unbounded:
                self._histograms.pop(label, None)
            else:
                self._histograms[label] = self._slice_of(lmaxes, unbounded)

    def estimate_candidates(
        self, query_key: FeatureKey, anchored: bool = True
    ) -> float:
        """Estimated ``cdt`` for a query feature key.

        The scan condition is ``label match and indexed λ_max >= query
        λ_max``; the λ_min filter is ignored by the estimator (λ_min is
        -λ_max for real anti-symmetric matrices, so it rejects almost
        nothing the λ_max condition admits — see eigen.py).

        ``anchored=False`` drops the label condition and sums the
        estimate over every label — the collection-mode ``//`` scan,
        which the processor uses to order intersection fragments by
        selectivity.
        """
        if anchored:
            histograms = (
                [self._histograms[query_key.root_label]]
                if query_key.root_label in self._histograms
                else []
            )
        else:
            histograms = list(self._histograms.values())
        threshold = query_key.range.lmax
        if math.isinf(threshold):
            return float(sum(h.unbounded for h in histograms))
        return sum(h.estimate_at_least(threshold) for h in histograms)

    def may_contain(
        self,
        query_key: FeatureKey,
        anchored: bool = True,
        guard: float = 0.0,
    ) -> bool:
        """Can a scan for ``query_key`` possibly yield a candidate?

        Unlike :meth:`estimate_candidates` (an approximation) this is a
        *sound* emptiness test, because each label histogram records its
        exact λ_max endpoints: when the query's guarded threshold
        ``λ_max - guard`` lies strictly above a label's recorded ``hi``
        and the label has no all-covering entries, no stored key can
        satisfy the containment predicate.  Sharded coordinators use it
        to skip shards without scanning them (DESIGN.md §11); a
        ``False`` here never loses an answer.
        """
        if anchored:
            histogram = self._histograms.get(query_key.root_label)
            histograms = [] if histogram is None else [histogram]
        else:
            histograms = list(self._histograms.values())
        threshold = query_key.range.lmax - guard
        for histogram in histograms:
            if histogram.unbounded:
                return True
            if histogram.counts and threshold <= histogram.hi:
                return True
        return False

    def labels(self) -> list[str]:
        """Labels with at least one indexed entry."""
        return sorted(self._histograms)


def shard_balance(index) -> dict:
    """Per-shard balance summary for a sharded index.

    Root-label affinity routes every document with the same root tag to
    one shard, so a corpus with few distinct roots can leave shards
    empty; the skew ratio makes that visible before it shows up as one
    hot shard dominating scatter-gather latency.

    Returns a dict with ``entries`` / ``documents`` (per-shard lists),
    ``empty_shards`` (ids with zero entries), and ``skew`` (max/min
    entry count; ``inf`` when some — but not all — shards are empty,
    ``1.0`` for a wholly empty index).
    """
    entries = [shard.entry_count for shard in index.shards]
    documents = [0] * len(entries)
    for shard_id in index.routing:
        if shard_id is not None:
            documents[shard_id] += 1
    empty_shards = [shard_id for shard_id, count in enumerate(entries) if count == 0]
    if not entries or not any(entries):
        skew = 1.0
    elif empty_shards:
        skew = math.inf
    else:
        skew = max(entries) / min(entries)
    return {
        "entries": entries,
        "documents": documents,
        "empty_shards": empty_shards,
        "skew": skew,
    }

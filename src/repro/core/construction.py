"""Index-entry generation for one document (Algorithm 1's core).

This module turns a document into a stream of ``(FeatureKey, element
node id)`` entries, in the two regimes CONSTRUCT-INDEX distinguishes:

* **unit mode** (small document, or ``depth_limit == 0``): the whole
  document is one indexable unit; one entry is produced, keyed by the
  features of its full bisimulation graph.
* **subpattern mode** (``depth_limit > 0`` and the document is deeper):
  the builder's per-element callback drives GEN-SUBPATTERN — for every
  element, the depth-limited unfolding of its bisimulation vertex is
  re-minimized through the traveler and its features computed, memoized
  per vertex so the eigen-decomposition runs once per equivalence class
  (Theorem 4 still guarantees exactly one *entry* per element).

Patterns whose unfolding or matrix exceeds the configured caps fall back
to the all-covering feature range (Section 6.1's artificial ``[0, ∞]``),
counted in the returned statistics.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.errors import PatternTooLargeError
from repro.bisim import BisimGraphBuilder, depth_limited_graph
from repro.bisim.graph import BisimVertex
from repro.spectral import (
    ALL_COVERING_RANGE,
    EdgeLabelEncoder,
    FeatureKey,
    pattern_features,
)
from repro.xmltree import Document, tree_events


@dataclass
class ConstructionStats:
    """Per-build statistics, aggregated across documents."""

    entries: int = 0
    documents: int = 0
    unit_documents: int = 0
    subpattern_documents: int = 0
    bisim_vertices: int = 0
    eigen_computations: int = 0
    oversized_patterns: int = 0
    #: vertex count of the largest pattern actually decomposed.
    largest_pattern: int = 0
    per_document_vertices: list[int] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class Entry:
    """One index entry before key encoding."""

    key: FeatureKey
    node_id: int


class EntryGenerator:
    """Generates index entries for documents under one shared encoder."""

    def __init__(
        self,
        encoder: EdgeLabelEncoder,
        depth_limit: int,
        text_label: Callable[[str], str] | None = None,
        max_pattern_vertices: int = 800,
        max_unfolding_opens: int = 20000,
    ) -> None:
        self.encoder = encoder
        self.depth_limit = depth_limit
        self.text_label = text_label
        self.max_pattern_vertices = max_pattern_vertices
        self.max_unfolding_opens = max_unfolding_opens
        self.stats = ConstructionStats()

    # ------------------------------------------------------------------ #
    # Entry streams
    # ------------------------------------------------------------------ #

    def entries_for(self, document: Document) -> Iterator[Entry]:
        """Yield every index entry for ``document``.

        Chooses unit vs. subpattern mode per CONSTRUCT-INDEX: a document
        no deeper than the depth limit (or any document when the limit is
        0) is a single unit.
        """
        self.stats.documents += 1
        # Algorithm 1 as published also indexes documents shallower than
        # the depth limit as single units, but a unit entry is keyed by
        # the *document root's* label and therefore invisible to covered
        # queries rooted at interior labels — a completeness gap.  We
        # apply subpattern mode uniformly whenever a depth limit is set
        # (Theorem 4's one-entry-per-element accounting then holds for
        # every document); unit mode is the collection scenario,
        # depth_limit == 0.  See DESIGN.md §5a.
        if self.depth_limit <= 0:
            self.stats.unit_documents += 1
            yield self._unit_entry(document)
        else:
            self.stats.subpattern_documents += 1
            yield from self._subpattern_entries(document)

    def _unit_entry(self, document: Document) -> Entry:
        builder = BisimGraphBuilder(text_label=self.text_label)
        builder.feed_all(
            tree_events(document.root, include_text=self.text_label is not None)
        )
        graph = builder.finish()
        self.stats.bisim_vertices += graph.vertex_count()
        self.stats.per_document_vertices.append(graph.vertex_count())
        key = self._features_of_graph(graph)
        self.stats.entries += 1
        return Entry(key, document.root.node_id)

    def _subpattern_entries(self, document: Document) -> Iterator[Entry]:
        builder = BisimGraphBuilder(text_label=self.text_label)
        for event in tree_events(
            document.root, include_text=self.text_label is not None
        ):
            closed = builder.feed(event)
            if closed is not None:
                # GEN-SUBPATTERN runs per closing event; by close time the
                # vertex's children are final, so its depth-L view is
                # computable immediately.
                vertex, start_ptr = closed
                key = self._vertex_features(vertex)
                self.stats.entries += 1
                yield Entry(key, start_ptr)
        graph = builder.finish()
        self.stats.bisim_vertices += graph.vertex_count()
        self.stats.per_document_vertices.append(graph.vertex_count())

    # ------------------------------------------------------------------ #
    # Feature extraction with memoization and fallback
    # ------------------------------------------------------------------ #

    def _vertex_features(self, vertex: BisimVertex) -> FeatureKey:
        """GEN-SUBPATTERN + BTREE-INSERT's feature half: memoized per
        bisimulation vertex (Algorithm 1's ``u.eigs`` check)."""
        if vertex.eigs is not None:
            return vertex.eigs
        try:
            pattern = depth_limited_graph(
                vertex, self.depth_limit, max_opens=self.max_unfolding_opens
            )
            key = self._features_of_graph(pattern)
        except PatternTooLargeError:
            self.stats.oversized_patterns += 1
            key = FeatureKey(vertex.label, ALL_COVERING_RANGE)
        vertex.eigs = key
        return key

    def _features_of_graph(self, graph) -> FeatureKey:
        size = graph.vertex_count()
        try:
            key = pattern_features(
                graph, self.encoder, max_vertices=self.max_pattern_vertices
            )
            self.stats.eigen_computations += 1
            if size > self.stats.largest_pattern:
                self.stats.largest_pattern = size
            return key
        except PatternTooLargeError:
            self.stats.oversized_patterns += 1
            return FeatureKey(graph.root.label, ALL_COVERING_RANGE)

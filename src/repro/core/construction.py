"""Index-entry generation for one document (Algorithm 1's core).

This module turns a document into a stream of ``(FeatureKey, element
node id)`` entries, in the two regimes CONSTRUCT-INDEX distinguishes:

* **unit mode** (small document, or ``depth_limit == 0``): the whole
  document is one indexable unit; one entry is produced, keyed by the
  features of its full bisimulation graph.
* **subpattern mode** (``depth_limit > 0`` and the document is deeper):
  the builder's per-element callback drives GEN-SUBPATTERN — for every
  element, the depth-limited unfolding of its bisimulation vertex is
  re-minimized through the traveler and its features computed, memoized
  per vertex so the eigen-decomposition runs once per equivalence class
  (Theorem 4 still guarantees exactly one *entry* per element).

A generator may additionally carry a cross-document
:class:`~repro.spectral.cache.FeatureCache`: before solving the
eigenproblem for a pattern, its canonical signature is looked up, so
isomorphic subpatterns recurring *across* documents pay the O(n³)
decomposition once per distinct pattern rather than once per document.

Under the default real-arithmetic solver (DESIGN.md §9), the cache
misses of a document are not solved one by one: each miss contributes
its anti-symmetric matrix to a batch queue, and when the document's
event stream ends the queue is flushed through
:func:`repro.spectral.kernel.solve_batch` — matrices grouped by
dimension, one stacked-LAPACK call (or vectorized closed form) per
bucket — before the entries are yielded.  Batching changes *when*
ranges are computed, never their bytes (the kernel's determinism
contract), so the staged entry stream is identical to per-pattern
solving.  The legacy complex solver (``solver="legacy"``) bypasses the
queue and reproduces the seed's per-pattern behaviour for A/B runs.

Patterns whose unfolding or matrix exceeds the configured caps fall back
to the all-covering feature range (Section 6.1's artificial ``[0, ∞]``),
counted in the returned statistics and never cached.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PatternTooLargeError
from repro.bisim import BisimGraphBuilder, depth_limited_graph, depth_signature
from repro.bisim.graph import BisimVertex
from repro.obs import MetricsRegistry, Obs
from repro.spectral import (
    ALL_COVERING_RANGE,
    SOLVER_LEGACY,
    EdgeLabelEncoder,
    FeatureCache,
    FeatureKey,
    FeatureRange,
    eigenvalue_range,
    pattern_matrix,
    pattern_signature,
    resolve_solver,
    solve_batch,
)
from repro.xmltree import Document, parse_xml_events, tree_events
from repro.xmltree.events import CloseEvent, OpenEvent, TextEvent


@dataclass
class ConstructionStats:
    """Per-build statistics, aggregated across documents."""

    entries: int = 0
    documents: int = 0
    unit_documents: int = 0
    subpattern_documents: int = 0
    bisim_vertices: int = 0
    eigen_computations: int = 0
    oversized_patterns: int = 0
    #: vertex count of the largest pattern actually decomposed.
    largest_pattern: int = 0
    #: feature-cache hits/misses (0/0 when no cache is attached).
    cache_hits: int = 0
    cache_misses: int = 0
    #: stacked-kernel dispatches: total bucket solves, and a histogram
    #: of their sizes (matrices per stacked call -> number of calls).
    #: Both stay 0/empty under the legacy per-pattern solver.
    eigen_batches: int = 0
    eigen_batch_sizes: dict[int, int] = field(default_factory=dict)
    per_document_vertices: list[int] = field(default_factory=list)

    def merge(self, other: "ConstructionStats") -> None:
        """Fold another build's (or worker's) statistics into this one.

        ``per_document_vertices`` is extended in ``other``'s order, so
        merging worker stats in chunk order reproduces the serial
        document order.
        """
        self.entries += other.entries
        self.documents += other.documents
        self.unit_documents += other.unit_documents
        self.subpattern_documents += other.subpattern_documents
        self.bisim_vertices += other.bisim_vertices
        self.eigen_computations += other.eigen_computations
        self.oversized_patterns += other.oversized_patterns
        self.largest_pattern = max(self.largest_pattern, other.largest_pattern)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.eigen_batches += other.eigen_batches
        for size, count in other.eigen_batch_sizes.items():
            self.eigen_batch_sizes[size] = (
                self.eigen_batch_sizes.get(size, 0) + count
            )
        self.per_document_vertices.extend(other.per_document_vertices)

    def publish(
        self, registry: MetricsRegistry, prefix: str = "build."
    ) -> None:
        """Sync these running totals into ``registry`` counters.

        Idempotent (the registry syncs by delta), so callers publish at
        every phase boundary — end of build, after ``add_document`` /
        ``remove_document`` — and the registry stays a faithful view of
        the stats without per-vertex counter traffic on the hot path.

        ``prefix`` selects the counter namespace: the batch build
        publishes under ``build.*``, while the incremental mutation path
        publishes its own accumulator under ``build.incremental.*`` so
        Table-1 phase totals never drift after mutations.
        """
        registry.sync_counter(prefix + "entries", self.entries)
        registry.sync_counter(prefix + "documents", self.documents)
        registry.sync_counter(prefix + "bisim_vertices", self.bisim_vertices)
        registry.sync_counter(prefix + "cache.hits", self.cache_hits)
        registry.sync_counter(prefix + "cache.misses", self.cache_misses)
        registry.sync_counter(
            prefix + "eigen.computations", self.eigen_computations
        )
        registry.sync_counter(prefix + "eigen.batches", self.eigen_batches)
        registry.sync_counter(
            prefix + "oversized_patterns", self.oversized_patterns
        )
        for size, count in self.eigen_batch_sizes.items():
            registry.sync_counter(f"{prefix}eigen.batch_size.{size}", count)


#: the Table-1 phases, in presentation order.
BUILD_PHASES = ("parse", "encode", "bisim", "unfold", "matrix", "eigen", "insert")
#: registry counter prefix the phase accumulators live under.
PHASE_COUNTER_PREFIX = "build.phase_seconds."


class PhaseTimings:
    """Wall-clock breakdown of one build (seconds per phase).

    Phases:
        parse:  fetching/parsing documents out of primary storage.
        encode: the deterministic encoder-seeding pre-pass (§7).
        bisim:  bisimulation-graph construction (event feeding and
                interning), measured as the entry-generation residual.
        unfold: BISIM-TRAVELER depth-limited unfolding + re-minimization.
        matrix: canonical-order anti-symmetric matrix assembly
            (:func:`~repro.spectral.matrix.pattern_matrix`; cache
            misses only).
        eigen:  the eigensolve proper — stacked real-kernel dispatches
            or per-pattern ``eigvalsh`` (cache misses only).
        insert: B-tree loading (and clustered copy-out, when applicable).

    Since the ``repro.obs`` layer (DESIGN.md §10) this is a *view over a
    metrics registry* rather than a parallel set of floats: each phase
    attribute reads/writes the ``build.phase_seconds.<phase>`` counter
    of the backing :class:`~repro.obs.registry.MetricsRegistry` (a
    private one when none is given, the index's when constructed by an
    :class:`EntryGenerator` under an :class:`~repro.obs.Obs` context).
    The dataclass-era API — keyword construction, attribute ``+=``,
    ``merge``, ``as_dict`` — is unchanged.
    """

    def __init__(
        self,
        parse: float = 0.0,
        encode: float = 0.0,
        bisim: float = 0.0,
        unfold: float = 0.0,
        matrix: float = 0.0,
        eigen: float = 0.0,
        insert: float = 0.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        object.__setattr__(self, "registry", registry)
        object.__setattr__(
            self,
            "_counters",
            {
                phase: registry.counter(PHASE_COUNTER_PREFIX + phase)
                for phase in BUILD_PHASES
            },
        )
        values = (parse, encode, bisim, unfold, matrix, eigen, insert)
        for phase, value in zip(BUILD_PHASES, values):
            if value:
                self._counters[phase].inc(value)

    def __getattr__(self, name: str) -> float:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counter = counters[name]
            counter.inc(value - counter.value)
        else:
            object.__setattr__(self, name, value)

    def merge(self, other: "PhaseTimings") -> None:
        """Accumulate another build's (or worker's) phase times.

        Worker times overlap in wall-clock terms; the merged figure is
        aggregate CPU-seconds per phase, which is the comparable
        quantity across serial and parallel builds.
        """
        for phase in BUILD_PHASES:
            self._counters[phase].inc(getattr(other, phase))

    def as_dict(self) -> dict[str, float]:
        """Phase → seconds mapping (for reports and persistence)."""
        return {phase: self._counters[phase].value for phase in BUILD_PHASES}

    def __eq__(self, other) -> bool:
        if not isinstance(other, PhaseTimings):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        phases = ", ".join(
            f"{phase}={seconds:.4f}" for phase, seconds in self.as_dict().items()
        )
        return f"PhaseTimings({phases})"


def seed_encoder(
    encoder: EdgeLabelEncoder,
    document: Document,
    text_label: Callable[[str], str] | None = None,
) -> None:
    """Register every edge-label pair of ``document`` with ``encoder``.

    This is the deterministic pre-pass of the build pipeline: walking
    documents in ``doc_id`` order and events in document order fixes the
    code assignment *before* any feature is computed, so every worker
    (and the serial path) extracts features under an identical, complete
    encoder.  Completeness holds because every edge of every pattern the
    build can produce — full bisimulation graphs in unit mode, depth
    -limited re-minimized unfoldings in subpattern mode — descends from
    a (parent label, child label) tree edge walked here (text nodes
    included when the value extension is active).
    """
    stack: list[str] = []
    for event in tree_events(document.root, include_text=text_label is not None):
        if isinstance(event, OpenEvent):
            if stack:
                encoder.encode(stack[-1], event.label)
            stack.append(event.label)
        elif isinstance(event, TextEvent):
            if text_label is not None and stack:
                encoder.encode(stack[-1], text_label(event.value))
        elif isinstance(event, CloseEvent):
            stack.pop()


def seed_encoder_from_source(encoder: EdgeLabelEncoder, source: str) -> None:
    """Structural-only :func:`seed_encoder` over raw XML text, without
    building a tree.

    A sharded coordinator seeds the shared encoder while *routing* each
    document (one token scan per document instead of a second
    store-fetch-and-parse pre-pass).  Element open order is identical
    in :func:`~repro.xmltree.parse_xml_events` and a tree walk, so the
    first-seen order of (parent, child) label pairs — hence every code —
    matches :func:`seed_encoder` exactly.  Only for structural indexes:
    with the value extension active the two traversals order text
    differently (``tree_events`` front-loads a node's text after its
    open), so value-extended coordinators parse and seed from the tree.
    """
    stack: list[str] = []
    for event in parse_xml_events(source):
        if isinstance(event, OpenEvent):
            if stack:
                encoder.encode(stack[-1], event.label)
            stack.append(event.label)
        elif isinstance(event, CloseEvent):
            stack.pop()


@dataclass(frozen=True, slots=True)
class Entry:
    """One index entry before key encoding."""

    key: FeatureKey
    node_id: int


@dataclass(slots=True)
class _PendingFeature:
    """A cache miss awaiting the batched eigensolve.

    Carries everything the flush needs to finish the feature: the
    vertex to memoize on, the matrix to solve, and the signature to
    store the result under (``None`` when no cache is attached).
    """

    vertex: BisimVertex
    label: str
    matrix: np.ndarray
    size: int
    signature: bytes | None = None
    key: FeatureKey | None = None


class EntryGenerator:
    """Generates index entries for documents under one shared encoder."""

    def __init__(
        self,
        encoder: EdgeLabelEncoder,
        depth_limit: int,
        text_label: Callable[[str], str] | None = None,
        max_pattern_vertices: int = 800,
        max_unfolding_opens: int = 20000,
        cache: FeatureCache | None = None,
        solver: str | None = None,
        obs: Obs | None = None,
    ) -> None:
        self.encoder = encoder
        self.depth_limit = depth_limit
        self.text_label = text_label
        self.max_pattern_vertices = max_pattern_vertices
        self.max_unfolding_opens = max_unfolding_opens
        self.cache = cache
        self.solver = resolve_solver(solver)
        #: observability context: span capture plus the registry the
        #: phase timings are a view over (a private, non-tracing one
        #: unless the owning index passes its own).
        self.obs = obs if obs is not None else Obs()
        self.stats = ConstructionStats()
        self.timings = PhaseTimings(registry=self.obs.registry)
        #: per-document (vid, depth) → signature memo for the cache path.
        self._sig_memo: dict[tuple[int, int], bytes] = {}
        #: the batch queue: misses awaiting the stacked eigensolve, with
        #: vid/signature indexes so repeats join the in-flight feature
        #: instead of re-queueing the same matrix.
        self._pending: list[_PendingFeature] = []
        self._pending_by_vid: dict[int, _PendingFeature] = {}
        self._pending_by_sig: dict[bytes, _PendingFeature] = {}

    # ------------------------------------------------------------------ #
    # Entry streams
    # ------------------------------------------------------------------ #

    def entries_for(self, document: Document) -> Iterator[Entry]:
        """Yield every index entry for ``document``.

        Chooses unit vs. subpattern mode per CONSTRUCT-INDEX: a document
        no deeper than the depth limit (or any document when the limit is
        0) is a single unit.
        """
        self.stats.documents += 1
        # Algorithm 1 as published also indexes documents shallower than
        # the depth limit as single units, but a unit entry is keyed by
        # the *document root's* label and therefore invisible to covered
        # queries rooted at interior labels — a completeness gap.  We
        # apply subpattern mode uniformly whenever a depth limit is set
        # (Theorem 4's one-entry-per-element accounting then holds for
        # every document); unit mode is the collection scenario,
        # depth_limit == 0.  See DESIGN.md §5a.
        if self.depth_limit <= 0:
            self.stats.unit_documents += 1
            yield self._unit_entry(document)
        else:
            self.stats.subpattern_documents += 1
            yield from self._subpattern_entries(document)

    def _unit_entry(self, document: Document) -> Entry:
        builder = BisimGraphBuilder(text_label=self.text_label)
        builder.feed_all(
            tree_events(document.root, include_text=self.text_label is not None)
        )
        graph = builder.finish()
        self.stats.bisim_vertices += graph.vertex_count()
        self.stats.per_document_vertices.append(graph.vertex_count())
        key = self._features_of_graph(graph)
        self.stats.entries += 1
        return Entry(key, document.root.node_id)

    def _subpattern_entries(self, document: Document) -> Iterator[Entry]:
        # Builder vids restart per document, so the signature memo must
        # not leak across documents.
        self._sig_memo = {}
        batched = self.solver != SOLVER_LEGACY
        staged: list[tuple[FeatureKey | _PendingFeature, int]] = []
        builder = BisimGraphBuilder(text_label=self.text_label)
        for event in tree_events(
            document.root, include_text=self.text_label is not None
        ):
            closed = builder.feed(event)
            if closed is not None:
                # GEN-SUBPATTERN runs per closing event; by close time the
                # vertex's children are final, so its depth-L view is
                # computable immediately.
                vertex, start_ptr = closed
                self.stats.entries += 1
                if batched:
                    # Misses join the batch queue; the entry is staged
                    # against the (possibly pending) feature and yielded
                    # after the end-of-document flush.
                    staged.append((self._vertex_features_batched(vertex), start_ptr))
                else:
                    yield Entry(self._vertex_features(vertex), start_ptr)
        graph = builder.finish()
        self.stats.bisim_vertices += graph.vertex_count()
        self.stats.per_document_vertices.append(graph.vertex_count())
        if batched:
            self._flush_eigen_batch()
            for feature, start_ptr in staged:
                if isinstance(feature, _PendingFeature):
                    assert feature.key is not None  # set by the flush
                    yield Entry(feature.key, start_ptr)
                else:
                    yield Entry(feature, start_ptr)

    # ------------------------------------------------------------------ #
    # Feature extraction with memoization, caching, and fallback
    # ------------------------------------------------------------------ #

    def _vertex_features(self, vertex: BisimVertex) -> FeatureKey:
        """GEN-SUBPATTERN + BTREE-INSERT's feature half: memoized per
        bisimulation vertex (Algorithm 1's ``u.eigs`` check).

        With a cache attached, the pattern's signature is computed
        *directly on the vertex* (:func:`~repro.bisim.dag
        .depth_signature`), so a hit skips not just ``eigvalsh`` but the
        whole BISIM-TRAVELER unfolding — the unfolding of a shared
        subpattern can be exponentially larger than its DAG."""
        if vertex.eigs is not None:
            return vertex.eigs
        signature = None
        if self.cache is not None:
            signature = depth_signature(vertex, self.depth_limit, self._sig_memo)
            cached = self.cache.lookup(signature)
            if cached is not None:
                self.stats.cache_hits += 1
                vertex.eigs = cached
                return cached
            self.stats.cache_misses += 1
        started = time.perf_counter()
        try:
            pattern = depth_limited_graph(
                vertex, self.depth_limit, max_opens=self.max_unfolding_opens
            )
        except PatternTooLargeError:
            self.timings.unfold += time.perf_counter() - started
            self.stats.oversized_patterns += 1
            key = FeatureKey(vertex.label, ALL_COVERING_RANGE)
            vertex.eigs = key
            return key
        self.timings.unfold += time.perf_counter() - started
        key = self._features_of_graph(pattern, signature=signature)
        vertex.eigs = key
        return key

    def _vertex_features_batched(
        self, vertex: BisimVertex
    ) -> FeatureKey | _PendingFeature:
        """The batch-queue variant of :meth:`_vertex_features`.

        Resolved features (memoized, cached, or the oversized fallback)
        come back as :class:`FeatureKey`\\ s immediately; a genuine miss
        contributes its matrix to the queue and returns the
        :class:`_PendingFeature` whose ``key`` the end-of-document
        :meth:`_flush_eigen_batch` fills in.  Repeats of an in-flight
        vertex (or, with a cache, of an in-flight signature) join the
        existing pending feature, preserving the solve-once-per-class
        accounting of Algorithm 1.
        """
        if vertex.eigs is not None:
            return vertex.eigs
        pending = self._pending_by_vid.get(vertex.vid)
        if pending is not None:
            return pending
        signature = None
        if self.cache is not None:
            signature = depth_signature(vertex, self.depth_limit, self._sig_memo)
            pending = self._pending_by_sig.get(signature)
            if pending is not None:
                # A distinct vertex whose depth-L view is already queued:
                # an in-flight hit (the legacy path would have stored and
                # re-read it by now, so it counts as a cache hit).
                self.stats.cache_hits += 1
                self._pending_by_vid[vertex.vid] = pending
                return pending
            cached = self.cache.lookup(signature)
            if cached is not None:
                self.stats.cache_hits += 1
                vertex.eigs = cached
                return cached
            self.stats.cache_misses += 1
        started = time.perf_counter()
        try:
            pattern = depth_limited_graph(
                vertex, self.depth_limit, max_opens=self.max_unfolding_opens
            )
        except PatternTooLargeError:
            self.timings.unfold += time.perf_counter() - started
            self.stats.oversized_patterns += 1
            key = FeatureKey(vertex.label, ALL_COVERING_RANGE)
            vertex.eigs = key
            return key
        self.timings.unfold += time.perf_counter() - started
        started = time.perf_counter()
        try:
            matrix = pattern_matrix(
                pattern, self.encoder, max_vertices=self.max_pattern_vertices
            )
        except PatternTooLargeError:
            self.timings.matrix += time.perf_counter() - started
            self.stats.oversized_patterns += 1
            # Cap artifact, not a pattern feature: never cached.
            key = FeatureKey(vertex.label, ALL_COVERING_RANGE)
            vertex.eigs = key
            return key
        self.timings.matrix += time.perf_counter() - started
        pending = _PendingFeature(
            vertex=vertex,
            label=pattern.root.label,
            matrix=matrix,
            size=pattern.vertex_count(),
            signature=signature,
        )
        self._pending.append(pending)
        self._pending_by_vid[vertex.vid] = pending
        if signature is not None:
            self._pending_by_sig[signature] = pending
        return pending

    def _flush_eigen_batch(self) -> None:
        """Solve every queued miss with one stacked call per dimension
        bucket, memoize/cache the resulting keys, and clear the queue."""
        pending = self._pending
        if not pending:
            return
        started = time.perf_counter()
        with self.obs.span("build.eigen.batch", matrices=len(pending)) as span:
            ranges, buckets = solve_batch(
                [item.matrix for item in pending], solver=self.solver
            )
            span.set(buckets=len(buckets))
        self.timings.eigen += time.perf_counter() - started
        self.stats.eigen_computations += len(pending)
        self.stats.eigen_batches += len(buckets)
        for batch_size in buckets.values():
            self.stats.eigen_batch_sizes[batch_size] = (
                self.stats.eigen_batch_sizes.get(batch_size, 0) + 1
            )
        for item, (lmin, lmax) in zip(pending, ranges):
            key = FeatureKey(item.label, FeatureRange(lmin, lmax))
            item.key = key
            item.vertex.eigs = key
            if item.size > self.stats.largest_pattern:
                self.stats.largest_pattern = item.size
            if self.cache is not None and item.signature is not None:
                self.cache.store(item.signature, key)
        self._pending = []
        self._pending_by_vid = {}
        self._pending_by_sig = {}

    def _features_of_graph(
        self, graph, signature: bytes | None = None
    ) -> FeatureKey:
        """Features of a pattern graph, consulting the cache.

        ``signature`` carries a precomputed cache signature whose lookup
        already missed (the ``_vertex_features`` path); when ``None`` and
        a cache is attached, the signature is derived from the graph
        itself (the unit-mode path) and looked up here.
        """
        size = graph.vertex_count()
        if self.cache is not None and signature is None:
            signature = pattern_signature(graph)
            cached = self.cache.lookup(signature)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            self.stats.cache_misses += 1
        started = time.perf_counter()
        try:
            matrix = pattern_matrix(
                graph, self.encoder, max_vertices=self.max_pattern_vertices
            )
        except PatternTooLargeError:
            self.timings.matrix += time.perf_counter() - started
            self.stats.oversized_patterns += 1
            # Cap artifact, not a pattern feature: never cached.
            return FeatureKey(graph.root.label, ALL_COVERING_RANGE)
        self.timings.matrix += time.perf_counter() - started
        started = time.perf_counter()
        lmin, lmax = eigenvalue_range(matrix, solver=self.solver)
        self.timings.eigen += time.perf_counter() - started
        key = FeatureKey(graph.root.label, FeatureRange(lmin, lmax))
        self.stats.eigen_computations += 1
        if size > self.stats.largest_pattern:
            self.stats.largest_pattern = size
        if self.cache is not None and signature is not None:
            self.cache.store(signature, key)
        return key

"""Two-phase query processing (Algorithm 2).

Phase 0 — *planning*: the query is parsed, decomposed (Section 5), and
its pruning fragments' feature keys extracted — the query side's only
eigensolve.  Plans are memoized per (query source, index generation) in
a :class:`~repro.core.plan.PlanCache`, so repeated queries skip straight
to the scan.

Phase 1 — *pruning*: each fragment's feature key is range-scanned for
covering entries, either on the B-tree (the paper's design) or on the
per-label R-tree view (``prune_backend="rtree"``, Section 8 future
work); both backends produce the same candidate set.  With a collection
index every fragment prunes and candidate sets intersect incrementally,
most selective fragment first; with a depth-limited index only the top
fragment prunes.  ``/``-rooted queries on depth-limited indexes drop
non-root candidates *inside* this phase, so ``prune_seconds`` and
``candidate_count`` describe the same candidate list refinement sees.

Phase 2 — *refinement*: candidates are grouped by the document (or
clustered copy) they refine against, each group's tree is fetched
exactly once, and all of the group's candidates are validated against
it — optionally fanned out across ``workers`` processes.  The result
list is pointer-ordered and identical for any worker count.  The
leading ``//`` is rewritten to ``/`` for depth-limited indexes (every
descendant of an indexed pattern instance is itself indexed, so each
candidate only answers for its own root — Algorithm 2, lines 7-8).
Clustered candidates refine against their copy when the query fits
inside the copy's depth horizon, falling back to primary storage for
decomposed queries whose fragments may match deeper.

With ``pushdown=True`` over a sharded index, phases 1 and 2 both run
*inside* each shard that survives the histogram emptiness test (applied
per fragment), concurrently up to the scan bound; only verified matches
cross back to the coordinator, where the pointer-order merge makes the
answer identical to the scatter-gather flow (DESIGN.md §11).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.btree import encode_feature_key
from repro.core.index import FixIndex, IndexEntry
from repro.core.plan import PlanCache, QueryPlan, build_plan
from repro.engine.navigational import NavigationalEngine
from repro.engine.structural_join import StructuralJoinEngine
from repro.errors import BTreeError, ShardError, StorageError
from repro.obs import Obs
from repro.query.ast import Axis
from repro.query.twig import TwigQuery
from repro.spectral import FeatureKey
from repro.storage import NodePointer


@dataclass
class FixQueryResult:
    """Outcome of one two-phase evaluation."""

    #: pointers whose refinement succeeded (the final answer), in
    #: ascending pointer order.
    results: list[NodePointer] = field(default_factory=list)
    #: how many candidates the pruning phase produced (``cdt``), after
    #: the root filter for ``/``-rooted depth-limited queries.
    candidate_count: int = 0
    #: wall-clock split, seconds.
    plan_seconds: float = 0.0
    prune_seconds: float = 0.0
    refine_seconds: float = 0.0
    #: True when the plan came out of the cache (no eigensolve paid).
    plan_cached: bool = False
    #: distinct trees fetched by the refinement phase (documents plus
    #: clustered copy units).
    documents_fetched: int = 0
    #: pruning backend that produced the candidates.
    backend: str = "btree"
    #: refinement worker processes used.
    workers: int = 1
    #: True when shard-local push-down answered the query (prune and
    #: refine both ran inside each participating shard; the per-phase
    #: seconds are then summed across shards — aggregate work, not
    #: wall-clock).
    pushdown: bool = False

    @property
    def result_count(self) -> int:
        """Number of surviving candidates (``rst`` when results are units)."""
        return len(self.results)

    @property
    def false_positive_count(self) -> int:
        """Candidates the refinement rejected."""
        return self.candidate_count - len(self.results)

    @property
    def seconds(self) -> float:
        """Total wall-clock across all three phases."""
        return self.plan_seconds + self.prune_seconds + self.refine_seconds


class FixQueryProcessor:
    """INDEX-PROCESSOR: pruning + refinement over one :class:`FixIndex`.

    The refinement operator is pluggable — the paper's point that FIX
    "can be coupled with any path processing operator that can perform
    query refinement".  Both shipped engines satisfy the contract
    (``refine``, ``refine_pointer``, ``refine_group``,
    ``evaluate_document``); the navigational one is the default,
    matching the paper's NoK pairing.

    Args:
        index: the index to prune against.
        refiner: refinement engine (default: navigational over the
            index's primary store).
        workers: refinement worker processes.  ``1`` refines in
            process; ``k > 1`` fans document groups out across ``k``
            processes with results identical to serial.
        grouped: group candidates by document and fetch each document
            once (the default).  ``False`` restores the per-pointer
            fetch loop — the serial baseline benchmarks compare
            against.
        plan_cache: ``True`` (a fresh 256-entry cache), ``False``
            (plan every query), or a :class:`PlanCache` to share
            between processors.
        prune_backend: ``"btree"`` or ``"rtree"``; defaults to the
            index config's choice.
        pushdown: push the whole prune+refine pipeline down into each
            shard of a sharded index.  Shards that cannot contain a
            candidate for *every* fragment are skipped outright; the
            rest prune and refine locally (one engine per shard over
            the shard's own store) and only verified matches flow back,
            merged in pointer order — answers identical to the scatter-
            gather path.  Ignored (normal two-phase flow) for plain
            indexes and for custom refinement engines.
        metrics_log: optional sink with a ``record(source, result)``
            method (see :class:`~repro.core.metrics.QueryMetricsLog`);
            every :meth:`query` call is reported to it.
        slow_log: optional :class:`~repro.obs.slowlog.SlowQueryLog`.
            Queries whose total latency crosses its threshold (fixed,
            or derived from this processor's ``query.seconds`` sketch)
            are captured as full exemplars: the span subtree traced for
            exactly that query (when tracing is on), the per-phase
            split, and the epoch (vector) the query pinned.  Captured
            exemplars also land in the trace buffer as
            ``{"type": "slow_query"}`` events, so flushed artifacts
            carry them and ``repro trace --slow`` finds them.
        obs: tracing/metrics context (:class:`repro.obs.Obs`).
            Defaults to the index's own, so build and query metrics
            land in one registry and query spans join the index's
            trace.  Every :meth:`query` publishes ``query.*`` metrics
            to ``obs.registry`` — unless ``metrics_log`` already
            writes to the *same* registry, in which case the processor
            defers to it (no double counting).
    """

    def __init__(
        self,
        index: FixIndex,
        refiner: NavigationalEngine | StructuralJoinEngine | None = None,
        *,
        workers: int = 1,
        grouped: bool = True,
        plan_cache: bool | PlanCache = True,
        prune_backend: str | None = None,
        pushdown: bool = False,
        metrics_log=None,
        slow_log=None,
        obs: Obs | None = None,
    ) -> None:
        self.index = index
        self.refiner = refiner or NavigationalEngine(index.store)
        self.workers = max(1, workers)
        self.grouped = grouped
        self.pushdown = pushdown
        backend = prune_backend or index.config.prune_backend
        if backend not in ("btree", "rtree"):
            raise ValueError(
                f"unknown prune backend {backend!r} (expected 'btree' or 'rtree')"
            )
        self.prune_backend = backend
        if isinstance(plan_cache, PlanCache):
            self.plan_cache: PlanCache | None = plan_cache
        else:
            self.plan_cache = PlanCache() if plan_cache else None
        self.metrics_log = metrics_log
        self.obs = obs if obs is not None else index.obs
        self.slow_log = slow_log
        if slow_log is not None and slow_log.registry is None:
            # Derived thresholds read this processor's query.seconds
            # sketch unless the caller attached their own registry.
            slow_log.registry = self.obs.registry
        self._histogram = None
        self._histogram_snapshot = None
        #: per-thread pinned EpochSnapshot for the duration of query();
        #: plan-cache validity and histogram freshness are judged
        #: against it, so one query sees one consistent epoch.
        self._pin_local = threading.local()

    # ------------------------------------------------------------------ #
    # Epoch plumbing
    # ------------------------------------------------------------------ #

    def _epoch_view(self):
        """The epoch state queries validate against: the snapshot pinned
        by the running query when there is one, the index's live
        snapshot otherwise, or the legacy ``int`` generation for index
        objects without an epoch manager."""
        pinned = getattr(self._pin_local, "snapshot", None)
        if pinned is not None:
            return pinned
        epochs = getattr(self.index, "epochs", None)
        if epochs is not None:
            return epochs.current
        return self.index.generation

    # ------------------------------------------------------------------ #
    # Planning phase
    # ------------------------------------------------------------------ #

    def plan_for(self, query: TwigQuery | str) -> QueryPlan:
        """The (possibly cached) plan for ``query``."""
        return self._plan_for(query)[0]

    def _plan_for(self, query: TwigQuery | str) -> tuple[QueryPlan, bool]:
        source = query if isinstance(query, str) else query.source
        if self.plan_cache is not None and source:
            plan = self.plan_cache.get(source, self._epoch_view())
            if plan is not None:
                return plan, True
        plan = build_plan(self.index, query)
        if self.plan_cache is not None:
            self.plan_cache.put(plan)
        return plan, False

    # ------------------------------------------------------------------ #
    # Pruning phase
    # ------------------------------------------------------------------ #

    def prune(self, query: TwigQuery | str) -> list[IndexEntry]:
        """Candidate entries for ``query`` (Section 5 decomposition rules
        and the root filter applied), in (key, pointer) order for single
        -fragment scans and pointer order for intersections."""
        return self._pruned_candidates(self._plan_for(query)[0])

    def _pruned_candidates(self, plan: QueryPlan) -> list[IndexEntry]:
        if len(plan.fragments) == 1:
            entries = sorted(
                self._scan(plan.feature_keys[0], plan.anchored[0]),
                key=_entry_sort_key,
            )
        else:
            entries = self._intersect_fragments(plan)
        if plan.root_filter:
            # A '/'-rooted query can only bind the document root, but
            # subpattern entries exist for *every* element; discarding
            # non-root candidates is part of pruning, so the counts and
            # timings the result reports stay consistent.
            entries = [e for e in entries if e.pointer.node_id == 0]
        return entries

    def _scan(self, key: FeatureKey, anchored: bool):
        """One fragment's candidate stream from the selected backend."""
        if self.prune_backend == "rtree":
            return self.index.spatial_view().candidates_for_key(
                key, anchored=anchored
            )
        return self.index.candidates_for_key(key, anchored=anchored)

    def _intersect_fragments(self, plan: QueryPlan) -> list[IndexEntry]:
        """Collection-mode pruning: intersect every fragment's candidates.

        The fragments are scanned most-selective-first (λ_max-histogram
        estimate), and each later stream is only membership-tested
        against the running survivor set — no full candidate dict is
        materialized beyond the first, and an empty survivor set exits
        early.
        """
        order = sorted(
            range(len(plan.fragments)),
            key=lambda i: self._estimate_candidates(
                plan.feature_keys[i], plan.anchored[i]
            ),
        )
        surviving: dict[NodePointer, IndexEntry] | None = None
        for i in order:
            stream = self._scan(plan.feature_keys[i], plan.anchored[i])
            if surviving is None:
                surviving = {entry.pointer: entry for entry in stream}
            else:
                seen = {
                    entry.pointer for entry in stream if entry.pointer in surviving
                }
                surviving = {
                    pointer: entry
                    for pointer, entry in surviving.items()
                    if pointer in seen
                }
            if not surviving:
                return []
        assert surviving is not None
        return sorted(surviving.values(), key=lambda entry: entry.pointer)

    def _estimate_candidates(self, key: FeatureKey, anchored: bool) -> float:
        return self._histogram_for_epoch().estimate_candidates(
            key, anchored=anchored
        )

    def _histogram_for_epoch(self):
        """The processor's λ_max histogram, kept fresh per epoch.

        Under the epoch layer, a stale histogram is repaired by
        recomputing only the label slices mutated since it was built
        (``FeatureHistogram.refresh``); a full rebuild only happens on
        first use or after a floor bump (index rebuild).
        """
        from repro.core.stats import FeatureHistogram

        view = self._epoch_view()
        if isinstance(view, int):  # legacy index without an epoch layer
            if self._histogram is None or self._histogram_snapshot != view:
                self._histogram = FeatureHistogram(self.index)
                self._histogram_snapshot = view
            return self._histogram
        cached = self._histogram_snapshot
        if self._histogram is None or cached is None:
            self._histogram = FeatureHistogram(self.index)
            self._histogram_snapshot = view
            return self._histogram
        if isinstance(cached, int) or view.epoch != cached.epoch:
            epochs = getattr(self.index, "epochs", None)
            stale = (
                None
                if isinstance(cached, int)
                else view.changed_labels_since(cached.epoch)
            )
            if stale is None:
                self._histogram = FeatureHistogram(self.index)
                if epochs is not None:
                    epochs.note_full_refresh()
            elif stale:
                self._histogram.refresh(self.index, stale)
                if epochs is not None:
                    epochs.note_scoped_refresh(len(stale))
            self._histogram_snapshot = view
        return self._histogram

    # ------------------------------------------------------------------ #
    # Shard-local push-down
    # ------------------------------------------------------------------ #

    def _pushdown_order(self, plan: QueryPlan) -> list[int] | None:
        """Participating shard ids (most selective first), or ``None``
        when this query runs through the normal two-phase flow: push-down
        disabled, the index isn't sharded, or the refiner is a custom
        engine the per-shard workers can't reconstruct."""
        if not self.pushdown:
            return None
        index = self.index
        if not hasattr(index, "pushdown_shards") or not hasattr(index, "shards"):
            return None
        if self._parallel_refiner_kind() is None:
            return None
        return index.pushdown_shards(plan.feature_keys, plan.anchored)

    def _query_pushdown(
        self, plan: QueryPlan, order: list[int], result: FixQueryResult
    ) -> None:
        """Run prune+refine inside each participating shard and merge.

        The fragment intersection order is fixed *globally* (from the
        whole index's histogram) before fanning out, so every shard
        scans fragments in the same sequence regardless of its local
        distribution — one of the two determinism anchors; the other is
        the pointer-order merge, which is total because pointers
        partition by shard.  Per-phase seconds are summed across shards
        (aggregate work, matching the parallel-refine convention).
        """
        kind = self._parallel_refiner_kind()
        assert kind is not None  # _pushdown_order gated on it
        frag_order = list(range(len(plan.fragments)))
        if len(frag_order) > 1:
            frag_order.sort(
                key=lambda i: self._estimate_candidates(
                    plan.feature_keys[i], plan.anchored[i]
                )
            )
        concurrency = max(
            self.workers, getattr(self.index.config, "shard_workers", 1)
        )
        if concurrency > 1 and len(order) > 1:
            from repro.core.parallel import scan_executor

            executor = scan_executor(concurrency)
            futures = [
                (
                    shard_id,
                    executor.submit(
                        self._pushdown_shard, shard_id, plan, frag_order, kind
                    ),
                )
                for shard_id in order
            ]
            outcomes = []
            for shard_id, future in futures:
                try:
                    outcomes.append(future.result())
                except (StorageError, BTreeError) as exc:
                    raise ShardError(
                        f"shard {shard_id}: push-down failed: {exc}",
                        shard=shard_id,
                    ) from exc
        else:
            outcomes = []
            for shard_id in order:
                try:
                    outcomes.append(
                        self._pushdown_shard(shard_id, plan, frag_order, kind)
                    )
                except (StorageError, BTreeError) as exc:
                    raise ShardError(
                        f"shard {shard_id}: push-down failed: {exc}",
                        shard=shard_id,
                    ) from exc
        survivors: list[NodePointer] = []
        for candidates, shard_survivors, fetched, prune_s, refine_s in outcomes:
            result.candidate_count += candidates
            result.documents_fetched += fetched
            result.prune_seconds += prune_s
            result.refine_seconds += refine_s
            survivors.extend(shard_survivors)
        survivors.sort()
        result.results = survivors

    def _pushdown_shard(
        self,
        shard_id: int,
        plan: QueryPlan,
        frag_order: list[int],
        kind: str,
    ) -> tuple[int, list[NodePointer], int, float, float]:
        """One shard's complete prune+refine, safe to run on a scan
        thread: every object it touches (shard index, pager, store
        cache, fresh engine) belongs to this shard alone."""
        shard = self.index.shards[shard_id]
        prune_started = time.perf_counter()
        if self.prune_backend == "rtree":
            view = shard.spatial_view()

            def scan(i: int):
                return view.candidates_for_key(
                    plan.feature_keys[i], anchored=plan.anchored[i]
                )

        else:

            def scan(i: int):
                return shard.candidates_for_key(
                    plan.feature_keys[i], anchored=plan.anchored[i]
                )

        if len(plan.fragments) == 1:
            entries = sorted(scan(0), key=_entry_sort_key)
        else:
            # The shard-local slice of _intersect_fragments: the running
            # survivor dict only ever holds this shard's pointers, so
            # intersecting per shard and unioning is exact.
            surviving: dict[NodePointer, IndexEntry] | None = None
            for i in frag_order:
                stream = scan(i)
                if surviving is None:
                    surviving = {entry.pointer: entry for entry in stream}
                else:
                    seen = {
                        entry.pointer
                        for entry in stream
                        if entry.pointer in surviving
                    }
                    surviving = {
                        pointer: entry
                        for pointer, entry in surviving.items()
                        if pointer in seen
                    }
                if not surviving:
                    break
            entries = sorted(
                (surviving or {}).values(), key=lambda entry: entry.pointer
            )
        if plan.root_filter:
            entries = [e for e in entries if e.pointer.node_id == 0]
        prune_seconds = time.perf_counter() - prune_started

        refine_started = time.perf_counter()
        twig = plan.refined
        refiner = (
            StructuralJoinEngine(shard.store)
            if kind == "structural_join"
            else NavigationalEngine(shard.store)
        )
        doc_groups: dict[int, list[IndexEntry]] = {}
        for entry in entries:
            doc_groups.setdefault(entry.pointer.doc_id, []).append(entry)
        survivors: list[NodePointer] = []
        for doc_id in sorted(doc_groups):
            members = doc_groups[doc_id]
            document = shard.store.get_document(doc_id)
            if twig.leading_axis is Axis.CHILD:
                flags = refiner.refine_group(
                    twig, document, [e.pointer.node_id for e in members]
                )
                survivors.extend(
                    entry.pointer for entry, ok in zip(members, flags) if ok
                )
            elif refiner.evaluate_document(twig, document):
                survivors.extend(entry.pointer for entry in members)
        refine_seconds = time.perf_counter() - refine_started
        return (
            len(entries),
            survivors,
            len(doc_groups),
            prune_seconds,
            refine_seconds,
        )

    # ------------------------------------------------------------------ #
    # Full pipeline
    # ------------------------------------------------------------------ #

    def query(self, query: TwigQuery | str) -> FixQueryResult:
        """Run all phases and return the validated result pointers.

        The whole pipeline runs under an epoch pin: the snapshot taken
        at entry governs plan-cache validity and histogram freshness,
        and concurrent mutations wait out the pin before applying —
        the answer equals either the pre- or post-mutation index,
        never a mix of the two.
        """
        result = FixQueryResult(backend=self.prune_backend, workers=self.workers)
        source = query if isinstance(query, str) else query.source
        epochs = getattr(self.index, "epochs", None)
        pin = epochs.pin() if epochs is not None else nullcontext(None)
        tracer = self.obs.tracer
        # Everything the tracer buffers from here on belongs to this
        # query — the slice a slow-query exemplar captures.
        events_start = len(tracer.events) if tracer.enabled else 0
        epoch_info: dict = {}
        try:
            with pin as snapshot, self.obs.span(
                "query",
                source=source,
                backend=self.prune_backend,
                workers=self.workers,
            ) as query_span:
                self._pin_local.snapshot = snapshot
                if snapshot is not None:
                    epoch_info["epoch"] = snapshot.epoch
                vector_fn = getattr(self.index, "epoch_vector", None)
                if callable(vector_fn):
                    # Per-shard global epochs, JSON-friendly — enough to
                    # re-pin the same sharded state later.
                    epoch_info["vector"] = [
                        shard_snap.epoch for shard_snap in vector_fn()
                    ]
                with self.obs.span("query.plan"):
                    started = time.perf_counter()
                    plan, cached = self._plan_for(query)
                    result.plan_seconds = time.perf_counter() - started
                result.plan_cached = cached

                order = self._pushdown_order(plan)
                if order is not None:
                    result.pushdown = True
                    with self.obs.span(
                        "query.pushdown", shards=len(order)
                    ) as push_span:
                        self._query_pushdown(plan, order, result)
                        push_span.set(
                            candidates=result.candidate_count,
                            survivors=result.result_count,
                        )
                else:
                    with self.obs.span("query.prune") as prune_span:
                        started = time.perf_counter()
                        candidates = self._pruned_candidates(plan)
                        result.prune_seconds = time.perf_counter() - started
                        result.candidate_count = len(candidates)
                        prune_span.set(candidates=len(candidates))

                    with self.obs.span("query.refine") as refine_span:
                        started = time.perf_counter()
                        if self.grouped or self.workers > 1:
                            survivors, fetched = self._refine_grouped(
                                plan.refined, candidates
                            )
                        else:
                            survivors = [
                                entry.pointer
                                for entry in candidates
                                if self._refine_entry(plan.refined, entry)
                            ]
                            fetched = len(candidates)
                        survivors.sort()
                        result.results = survivors
                        result.documents_fetched = fetched
                        result.refine_seconds = time.perf_counter() - started
                        refine_span.set(
                            groups=fetched, survivors=len(survivors)
                        )

                query_span.set(
                    candidates=result.candidate_count,
                    results=result.result_count,
                    plan_cached=cached,
                )
        finally:
            self._pin_local.snapshot = None
        if self.metrics_log is not None:
            self.metrics_log.record(plan.source, result)
        self._publish_query_metrics(result)
        if self.slow_log is not None and self.slow_log.is_slow(result.seconds):
            spans = list(tracer.events[events_start:]) if tracer.enabled else []
            entry = self.slow_log.record(
                result, plan.source, spans=spans, epoch=epoch_info
            )
            if tracer.enabled:
                # Embed the exemplar in the trace buffer too, so flushed
                # artifacts carry it (repro trace --slow reads either).
                tracer.events.append(entry)
        return result

    def _publish_query_metrics(self, result: FixQueryResult) -> None:
        """Publish ``query.*`` metrics plus backend scan counters."""
        registry = self.obs.registry
        self.index.publish_scan_stats(registry)
        if self.prune_backend == "rtree":
            self.index.spatial_view().publish(registry)
        if self.plan_cache is not None:
            self.plan_cache.publish(registry)
        epochs = getattr(self.index, "epochs", None)
        if epochs is not None:
            epochs.publish(registry)
        if (
            self.metrics_log is not None
            and getattr(self.metrics_log, "registry", None) is registry
        ):
            return  # the shared log already published this query
        from repro.core.metrics import publish_query_metrics

        publish_query_metrics(registry, result)

    # ------------------------------------------------------------------ #
    # Refinement phase
    # ------------------------------------------------------------------ #

    def _refine_grouped(
        self, twig: TwigQuery, candidates: list[IndexEntry]
    ) -> tuple[list[NodePointer], int]:
        """Group candidates by their refinement tree, fetch each tree
        once, validate all of its candidates against it."""
        use_copy = self._copy_suffices(twig)
        copy_entries: list[IndexEntry] = []
        doc_groups: dict[int, list[IndexEntry]] = {}
        for entry in candidates:
            if entry.record is not None and use_copy:
                copy_entries.append(entry)
            else:
                doc_groups.setdefault(entry.pointer.doc_id, []).append(entry)

        group_count = len(copy_entries) + len(doc_groups)
        if self.workers > 1 and group_count > 1:
            kind = self._parallel_refiner_kind()
            if kind is not None:
                return (
                    self._refine_parallel(twig, copy_entries, doc_groups, kind),
                    group_count,
                )

        survivors: list[NodePointer] = []
        for entry in copy_entries:
            assert self.index.clustered_store is not None
            unit = self.index.clustered_store.get_unit(entry.record)
            if twig.leading_axis is Axis.CHILD:
                ok = self.refiner.refine(twig, unit.root)
            else:
                ok = bool(self.refiner.evaluate_document(twig, unit))
            if ok:
                survivors.append(entry.pointer)
        for doc_id in sorted(doc_groups):
            entries = doc_groups[doc_id]
            document = self.index.store.get_document(doc_id)
            if twig.leading_axis is Axis.CHILD:
                flags = self.refiner.refine_group(
                    twig, document, [e.pointer.node_id for e in entries]
                )
                survivors.extend(
                    entry.pointer for entry, ok in zip(entries, flags) if ok
                )
            # A '//'-leading twig only reaches refinement on collection
            # indexes (depth-limited rewrites it to '/'), where a unit
            # survives iff the query matches anywhere inside it.
            elif self.refiner.evaluate_document(twig, document):
                survivors.extend(entry.pointer for entry in entries)
        return survivors, group_count

    def _refine_parallel(
        self,
        twig: TwigQuery,
        copy_entries: list[IndexEntry],
        doc_groups: dict[int, list[IndexEntry]],
        refiner_kind: str,
    ) -> list[NodePointer]:
        from repro.core.parallel import parallel_refine

        pointers: list[NodePointer] = []
        groups = []
        for entry in copy_entries:
            assert self.index.clustered_store is not None
            seq = len(pointers)
            pointers.append(entry.pointer)
            groups.append(
                (
                    "copy",
                    self.index.clustered_store.get_unit_source(entry.record),
                    ((seq, 0),),
                )
            )
        for doc_id in sorted(doc_groups):
            members = []
            for entry in doc_groups[doc_id]:
                members.append((len(pointers), entry.pointer.node_id))
                pointers.append(entry.pointer)
            groups.append(("doc", self.index.store.get_source(doc_id), tuple(members)))
        surviving, trace_events = parallel_refine(
            groups, twig, refiner_kind, self.workers, trace=self.obs.tracing
        )
        if trace_events:
            # Reparent the workers' refine-chunk spans under the current
            # query.refine span, in deterministic chunk order.
            self.obs.tracer.absorb(
                trace_events, parent_id=self.obs.tracer.current_id
            )
        return [pointers[seq] for seq in surviving]

    def _parallel_refiner_kind(self) -> str | None:
        """The picklable identity of the refiner, or ``None`` for custom
        engines (which then refine in-process, still grouped)."""
        if isinstance(self.refiner, StructuralJoinEngine):
            return "structural_join"
        if isinstance(self.refiner, NavigationalEngine):
            return "navigational"
        return None

    def _refine_entry(self, twig: TwigQuery, entry: IndexEntry) -> bool:
        """Per-pointer refinement (the ungrouped baseline path)."""
        if entry.record is not None and self._copy_suffices(twig):
            assert self.index.clustered_store is not None
            unit = self.index.clustered_store.get_unit(entry.record)
            if twig.leading_axis is Axis.CHILD:
                return self.refiner.refine(twig, unit.root)
            return bool(self.refiner.evaluate_document(twig, unit))
        # Unclustered (or horizon-escaping): follow the pointer into the
        # primary store.
        if twig.leading_axis is Axis.CHILD:
            return self.refiner.refine_pointer(twig, entry.pointer)
        document = self.index.store.get_document(entry.pointer.doc_id)
        return bool(self.refiner.evaluate_document(twig, document))

    def _copy_suffices(self, twig: TwigQuery) -> bool:
        """A clustered copy holds the unit down to the index depth limit;
        it answers the query alone iff the query cannot reach deeper."""
        if self.index.clustered_store is None:
            return False
        if self.index.config.depth_limit <= 0:
            return True  # whole-unit copies
        return twig.is_twig() and twig.depth() <= self.index.config.depth_limit


def _entry_sort_key(entry: IndexEntry) -> tuple[bytes, NodePointer]:
    """(encoded feature key, pointer): index-key order with a pointer
    tie-break, making single-fragment candidate lists deterministic and
    identical across pruning backends."""
    return (
        encode_feature_key(
            entry.key.root_label, entry.key.range.lmax, entry.key.range.lmin
        ),
        entry.pointer,
    )

"""Two-phase query processing (Algorithm 2).

Phase 1 — *pruning*: the query's twig pattern is converted to features
and the B-tree range-scanned for covering entries (handled by
:meth:`FixIndex.candidates`).  General path expressions with interior
``//`` are decomposed (Section 5): with a collection index every
fragment prunes and candidate sets intersect; with a depth-limited index
only the top fragment prunes.

Phase 2 — *refinement*: each candidate is validated by a navigational
engine.  The leading ``//`` is rewritten to ``/`` for depth-limited
indexes (every descendant of an indexed pattern instance is itself
indexed, so each candidate only answers for its own root — Algorithm 2,
lines 7-8).  Clustered candidates refine against their copy when the
query fits inside the copy's depth horizon, falling back to primary
storage for decomposed queries whose fragments may match deeper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.index import FixIndex, IndexEntry
from repro.engine.navigational import NavigationalEngine
from repro.engine.structural_join import StructuralJoinEngine
from repro.query.ast import Axis
from repro.query.decompose import decompose
from repro.query.twig import TwigQuery, twig_of
from repro.storage import NodePointer


@dataclass
class FixQueryResult:
    """Outcome of one two-phase evaluation."""

    #: pointers whose refinement succeeded (the final answer).
    results: list[NodePointer] = field(default_factory=list)
    #: how many candidates the pruning phase produced (``cdt``).
    candidate_count: int = 0
    #: wall-clock split, seconds.
    prune_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def result_count(self) -> int:
        """Number of surviving candidates (``rst`` when results are units)."""
        return len(self.results)

    @property
    def false_positive_count(self) -> int:
        """Candidates the refinement rejected."""
        return self.candidate_count - len(self.results)


class FixQueryProcessor:
    """INDEX-PROCESSOR: pruning + refinement over one :class:`FixIndex`.

    The refinement operator is pluggable — the paper's point that FIX
    "can be coupled with any path processing operator that can perform
    query refinement".  Both shipped engines satisfy the contract
    (``refine``, ``refine_pointer``, ``evaluate_document``); the
    navigational one is the default, matching the paper's NoK pairing.
    """

    def __init__(
        self,
        index: FixIndex,
        refiner: NavigationalEngine | StructuralJoinEngine | None = None,
    ) -> None:
        self.index = index
        self.refiner = refiner or NavigationalEngine(index.store)

    # ------------------------------------------------------------------ #
    # Pruning phase
    # ------------------------------------------------------------------ #

    def prune(self, query: TwigQuery | str) -> list[IndexEntry]:
        """Candidate entries for ``query`` (Section 5 decomposition rules
        applied), in index-key order."""
        twig = query if isinstance(query, TwigQuery) else twig_of(query)
        fragments = decompose(twig)
        top = fragments[0]
        if self.index.config.depth_limit > 0 or len(fragments) == 1:
            # Depth-limited index: only the top twig prunes (descendant
            # fragments can match below the indexed horizon).
            return list(self.index.candidates(top))
        # Collection index: every fragment prunes; a candidate document
        # must be covered by all of them.
        surviving: dict[NodePointer, IndexEntry] | None = None
        for fragment in fragments:
            hits = {
                entry.pointer: entry for entry in self.index.candidates(fragment)
            }
            if surviving is None:
                surviving = hits
            else:
                surviving = {
                    pointer: entry
                    for pointer, entry in surviving.items()
                    if pointer in hits
                }
            if not surviving:
                return []
        assert surviving is not None
        return sorted(surviving.values(), key=lambda entry: entry.pointer)

    # ------------------------------------------------------------------ #
    # Full pipeline
    # ------------------------------------------------------------------ #

    def query(self, query: TwigQuery | str) -> FixQueryResult:
        """Run both phases and return the validated result pointers."""
        twig = query if isinstance(query, TwigQuery) else twig_of(query)
        result = FixQueryResult()
        started = time.perf_counter()
        candidates = self.prune(twig)
        result.prune_seconds = time.perf_counter() - started
        result.candidate_count = len(candidates)

        refined = twig
        if self.index.config.depth_limit > 0:
            if twig.leading_axis is Axis.DESCENDANT:
                refined = twig.with_child_leading_axis()
            else:
                # A '/'-rooted query can only bind the document root, but
                # subpattern entries exist for *every* element; discard
                # non-root candidates before refinement.
                candidates = [
                    entry for entry in candidates if entry.pointer.node_id == 0
                ]
                result.candidate_count = len(candidates)

        started = time.perf_counter()
        for entry in candidates:
            if self._refine_entry(refined, entry):
                result.results.append(entry.pointer)
        result.refine_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ #
    # Refinement phase
    # ------------------------------------------------------------------ #

    def _refine_entry(self, twig: TwigQuery, entry: IndexEntry) -> bool:
        if entry.record is not None and self._copy_suffices(twig):
            assert self.index.clustered_store is not None
            unit = self.index.clustered_store.get_unit(entry.record)
            if twig.leading_axis is Axis.CHILD:
                return self.refiner.refine(twig, unit.root)
            return bool(self.refiner.evaluate_document(twig, unit))
        # Unclustered (or horizon-escaping): follow the pointer into the
        # primary store.
        if twig.leading_axis is Axis.CHILD:
            return self.refiner.refine_pointer(twig, entry.pointer)
        document = self.index.store.get_document(entry.pointer.doc_id)
        return bool(self.refiner.evaluate_document(twig, document))

    def _copy_suffices(self, twig: TwigQuery) -> bool:
        """A clustered copy holds the unit down to the index depth limit;
        it answers the query alone iff the query cannot reach deeper."""
        if self.index.config.depth_limit <= 0:
            return True  # whole-unit copies
        return twig.is_twig() and twig.depth() <= self.index.config.depth_limit

"""Query plans and the per-processor plan cache.

Algorithm 2's lines 1-5 — parse the path expression, decompose it at
interior ``//`` edges, extract each pruning fragment's feature key —
are pure functions of the query text and the index's encoder, yet they
contain the query side's only O(n³) step (the eigensolve inside
:meth:`FixIndex.query_features`, which runs on the index's configured
spectral solver — the real-arithmetic kernel of :mod:`repro.spectral.kernel`
by default, so build- and query-side ranges come from the same
arithmetic).  A :class:`QueryPlan` captures that work once; a
:class:`PlanCache` memoizes plans per (query source, index
generation), so repeated queries pay only the pruning scan and the
refinement.

Plans are invalidated by *generation*: :meth:`FixIndex.add_document`
and :meth:`FixIndex.remove_document` bump ``FixIndex.generation``
(growing the encoder can re-weight edge labels, which changes feature
keys), and a cached plan is only served while its recorded generation
matches the index's.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.query.ast import Axis
from repro.query.decompose import decompose
from repro.query.twig import TwigQuery, twig_of
from repro.spectral import FeatureKey


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """Everything the two-phase pipeline needs that is derivable from
    the query text alone (under one index generation)."""

    #: the query's surface syntax (cache key; may be empty for
    #: hand-built twigs, which are then never cached).
    source: str
    #: the parsed query tree.
    twig: TwigQuery
    #: the fragments that participate in pruning: only the top twig for
    #: depth-limited indexes, every decomposed fragment for collection
    #: indexes (Section 5).
    fragments: tuple[TwigQuery, ...]
    #: one feature key per pruning fragment.
    feature_keys: tuple[FeatureKey, ...]
    #: per-fragment: does the root label anchor the scan?
    anchored: tuple[bool, ...]
    #: the twig refinement runs (leading ``//`` rewritten to ``/`` for
    #: depth-limited indexes — Algorithm 2, line 8).
    refined: TwigQuery
    #: drop non-root candidates before refinement (``/``-rooted queries
    #: on depth-limited indexes, where subpattern entries exist for
    #: every element but only the document root can bind).
    root_filter: bool
    #: the index generation the feature keys were computed under.
    generation: int


def build_plan(index, query: TwigQuery | str) -> QueryPlan:
    """Plan ``query`` against ``index`` (Algorithm 2, lines 1-5).

    Raises:
        IndexCoverageError: when the index cannot answer a pruning
            fragment without false negatives.
        UnsupportedQueryError: malformed queries (via the parser).
    """
    twig = query if isinstance(query, TwigQuery) else twig_of(query)
    fragments = decompose(twig)
    depth_limited = index.config.depth_limit > 0
    if depth_limited or len(fragments) == 1:
        # Depth-limited index: only the top twig prunes (descendant
        # fragments can match below the indexed horizon).
        prune_fragments = (fragments[0],)
    else:
        # Collection index: every fragment prunes; candidates intersect.
        prune_fragments = tuple(fragments)
    keys: list[FeatureKey] = []
    anchored: list[bool] = []
    for fragment in prune_fragments:
        index.ensure_covers(fragment)
        keys.append(index.query_features(fragment))
        anchored.append(depth_limited or fragment.leading_axis is Axis.CHILD)
    refined = twig
    root_filter = False
    if depth_limited:
        if twig.leading_axis is Axis.DESCENDANT:
            refined = twig.with_child_leading_axis()
        else:
            root_filter = True
    return QueryPlan(
        source=twig.source,
        twig=twig,
        fragments=prune_fragments,
        feature_keys=tuple(keys),
        anchored=tuple(anchored),
        refined=refined,
        root_filter=root_filter,
        generation=index.generation,
    )


class PlanCache:
    """Bounded LRU of :class:`QueryPlan`\\ s keyed by query source.

    A hit requires the cached plan's generation to equal the current
    index generation; stale plans are evicted on lookup.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"need a positive capacity, got {capacity}")
        self._capacity = capacity
        self._plans: "OrderedDict[str, QueryPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, source: str, generation: int) -> QueryPlan | None:
        """The cached plan for ``source``, if still valid."""
        plan = self._plans.get(source)
        if plan is None:
            self.misses += 1
            return None
        if plan.generation != generation:
            del self._plans[source]
            self.misses += 1
            return None
        self._plans.move_to_end(source)
        self.hits += 1
        return plan

    def put(self, plan: QueryPlan) -> None:
        """Cache ``plan`` (no-op for sourceless hand-built twigs)."""
        if not plan.source:
            return
        self._plans[plan.source] = plan
        self._plans.move_to_end(plan.source)
        while len(self._plans) > self._capacity:
            self._plans.popitem(last=False)

    def stats_dict(self) -> dict:
        """Size and hit/miss accounting, for metrics publication
        (``query.plan_cache.*`` in the ``repro.obs`` registry)."""
        lookups = self.hits + self.misses
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def publish(self, registry, prefix: str = "plan_cache.") -> None:
        """Sync the cache accounting into a ``repro.obs`` registry
        (idempotent delta-sync; the size is a gauge).

        The ``plan_cache.*`` namespace is cache-level: it counts every
        lookup, including standalone ``prune()``/``plan_for()`` calls.
        The per-*query* hit counters (``query.plan_cache.hits``/
        ``.misses``) are published by ``publish_query_metrics``.
        """
        registry.sync_counter(prefix + "hits", self.hits)
        registry.sync_counter(prefix + "misses", self.misses)
        registry.gauge(prefix + "plans").set(len(self._plans))

    def clear(self) -> None:
        self._plans.clear()

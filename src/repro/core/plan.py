"""Query plans and the per-processor plan cache.

Algorithm 2's lines 1-5 — parse the path expression, decompose it at
interior ``//`` edges, extract each pruning fragment's feature key —
are pure functions of the query text and the index's encoder, yet they
contain the query side's only O(n³) step (the eigensolve inside
:meth:`FixIndex.query_features`, which runs on the index's configured
spectral solver — the real-arithmetic kernel of :mod:`repro.spectral.kernel`
by default, so build- and query-side ranges come from the same
arithmetic).  A :class:`QueryPlan` captures that work once; a
:class:`PlanCache` memoizes plans per (query source, index
generation), so repeated queries pay only the pruning scan and the
refinement.

Plans are invalidated by *epoch*, scoped per root label: a plan records
the epoch it was computed under and the root labels of its pruning
fragments, and stays valid while no mutation has touched any of those
labels (``EpochSnapshot.max_epoch_over(plan.labels) <= plan.generation``).
This is sound because the encoder assigns edge-label codes in first-seen
order and never reassigns them — a cached plan's feature keys stay
byte-valid forever, so only entry-population changes (which a mutation
confines to the touched root labels) matter to plan freshness.  Legacy
callers that pass a plain ``int`` generation get the old exact-match
behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.query.ast import Axis
from repro.query.decompose import decompose
from repro.query.twig import TwigQuery, twig_of
from repro.spectral import FeatureKey


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """Everything the two-phase pipeline needs that is derivable from
    the query text alone (under one index generation)."""

    #: the query's surface syntax (cache key; may be empty for
    #: hand-built twigs, which are then never cached).
    source: str
    #: the parsed query tree.
    twig: TwigQuery
    #: the fragments that participate in pruning: only the top twig for
    #: depth-limited indexes, every decomposed fragment for collection
    #: indexes (Section 5).
    fragments: tuple[TwigQuery, ...]
    #: one feature key per pruning fragment.
    feature_keys: tuple[FeatureKey, ...]
    #: per-fragment: does the root label anchor the scan?
    anchored: tuple[bool, ...]
    #: the twig refinement runs (leading ``//`` rewritten to ``/`` for
    #: depth-limited indexes — Algorithm 2, line 8).
    refined: TwigQuery
    #: drop non-root candidates before refinement (``/``-rooted queries
    #: on depth-limited indexes, where subpattern entries exist for
    #: every element but only the document root can bind).
    root_filter: bool
    #: the index epoch the plan was computed under.
    generation: int
    #: root labels of the pruning fragments' feature keys — the plan's
    #: invalidation scope (a mutation touching none of them keeps the
    #: plan valid).
    labels: frozenset[str] = frozenset()


def build_plan(index, query: TwigQuery | str) -> QueryPlan:
    """Plan ``query`` against ``index`` (Algorithm 2, lines 1-5).

    Raises:
        IndexCoverageError: when the index cannot answer a pruning
            fragment without false negatives.
        UnsupportedQueryError: malformed queries (via the parser).
    """
    twig = query if isinstance(query, TwigQuery) else twig_of(query)
    fragments = decompose(twig)
    depth_limited = index.config.depth_limit > 0
    if depth_limited or len(fragments) == 1:
        # Depth-limited index: only the top twig prunes (descendant
        # fragments can match below the indexed horizon).
        prune_fragments = (fragments[0],)
    else:
        # Collection index: every fragment prunes; candidates intersect.
        prune_fragments = tuple(fragments)
    keys: list[FeatureKey] = []
    anchored: list[bool] = []
    for fragment in prune_fragments:
        index.ensure_covers(fragment)
        keys.append(index.query_features(fragment))
        anchored.append(depth_limited or fragment.leading_axis is Axis.CHILD)
    refined = twig
    root_filter = False
    if depth_limited:
        if twig.leading_axis is Axis.DESCENDANT:
            refined = twig.with_child_leading_axis()
        else:
            root_filter = True
    return QueryPlan(
        source=twig.source,
        twig=twig,
        fragments=prune_fragments,
        feature_keys=tuple(keys),
        anchored=tuple(anchored),
        refined=refined,
        root_filter=root_filter,
        generation=index.generation,
        labels=frozenset(key.root_label for key in keys),
    )


class PlanCache:
    """Bounded LRU of :class:`QueryPlan`\\ s keyed by query source.

    A hit requires the cached plan to still be *valid*: under an
    :class:`~repro.core.epoch.EpochSnapshot` (or manager) that means no
    mutation has touched the plan's root labels since it was computed —
    plans over untouched labels survive mutations to other labels.
    Under a plain ``int`` generation (legacy callers), validity is the
    old exact-match test.  Stale plans are evicted on lookup.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"need a positive capacity, got {capacity}")
        self._capacity = capacity
        self._plans: "OrderedDict[str, QueryPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: hits served *across* a global-epoch change because the plan's
        #: labels were untouched — the plans label scoping retained.
        self.scoped_retained = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, source: str, epochs) -> QueryPlan | None:
        """The cached plan for ``source``, if still valid under
        ``epochs`` — an :class:`EpochSnapshot`, an
        :class:`EpochManager`, or a legacy ``int`` generation."""
        plan = self._plans.get(source)
        if plan is None:
            self.misses += 1
            return None
        retained = False
        if isinstance(epochs, int):
            valid = plan.generation == epochs
        else:
            snapshot = getattr(epochs, "current", epochs)
            valid = (
                snapshot.max_epoch_over(plan.labels) <= plan.generation
            )
            retained = valid and snapshot.epoch != plan.generation
        if not valid:
            del self._plans[source]
            self.misses += 1
            return None
        self._plans.move_to_end(source)
        self.hits += 1
        if retained:
            self.scoped_retained += 1
        return plan

    def put(self, plan: QueryPlan) -> None:
        """Cache ``plan`` (no-op for sourceless hand-built twigs)."""
        if not plan.source:
            return
        self._plans[plan.source] = plan
        self._plans.move_to_end(plan.source)
        while len(self._plans) > self._capacity:
            self._plans.popitem(last=False)

    def stats_dict(self) -> dict:
        """Size and hit/miss accounting, for metrics publication
        (``query.plan_cache.*`` in the ``repro.obs`` registry)."""
        lookups = self.hits + self.misses
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "scoped_retained": self.scoped_retained,
        }

    def publish(self, registry, prefix: str = "plan_cache.") -> None:
        """Sync the cache accounting into a ``repro.obs`` registry
        (idempotent delta-sync; the size is a gauge).

        The ``plan_cache.*`` namespace is cache-level: it counts every
        lookup, including standalone ``prune()``/``plan_for()`` calls.
        The per-*query* hit counters (``query.plan_cache.hits``/
        ``.misses``) are published by ``publish_query_metrics``.
        """
        registry.sync_counter(prefix + "hits", self.hits)
        registry.sync_counter(prefix + "misses", self.misses)
        registry.sync_counter(prefix + "scoped_retained", self.scoped_retained)
        # The ISSUE's epoch-layer accounting: plans kept alive across
        # mutations by label scoping.
        registry.sync_counter("epoch.plans_retained", self.scoped_retained)
        registry.gauge(prefix + "plans").set(len(self._plans))

    def clear(self) -> None:
        self._plans.clear()

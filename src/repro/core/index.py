"""The FIX index (Section 4).

A :class:`FixIndex` ties together every substrate: the primary store the
documents live in, the shared edge-label encoder, the entry generator of
Algorithm 1, the B-tree the feature keys go into, and — for the
clustered variant — the key-ordered copy store of Figure 4.

Key format in the B-tree: ``encode_feature_key(label, λ_max, λ_min)``
(:mod:`repro.btree.keys`); λ_max is the secondary sort component, which
makes the pruning scan of Algorithm 2 a single contiguous range per
label.  Values:

* unclustered — the 8-byte packed :class:`NodePointer` into primary
  storage;
* clustered  — the 8-byte packed :class:`RecordPointer` into the copy
  store, followed by the packed ``NodePointer`` (the primary pointer is
  retained so queries that outgrow the copy's depth horizon — decomposed
  ``//`` fragments — can still refine against the original document).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.btree import BPlusTree, encode_feature_key, label_upper_bound
from repro.btree.keys import decode_feature_key
from repro.core.construction import (
    ConstructionStats,
    EntryGenerator,
    PhaseTimings,
    seed_encoder,
)
from repro.core.epoch import EpochManager, EpochSnapshot
from repro.core.values import ValueHasher
from repro.errors import IndexCoverageError, UnsupportedQueryError
from repro.obs import Obs, ObsConfig
from repro.query.ast import Axis
from repro.query.twig import TwigQuery
from repro.spectral import (
    DEFAULT_GUARD_BAND,
    EdgeLabelEncoder,
    FeatureCache,
    FeatureKey,
    FeatureRange,
    pattern_features,
    resolve_solver,
)
from repro.errors import PatternTooLargeError
from repro.spectral.features import ALL_COVERING_RANGE
from repro.storage import (
    ClusteredStore,
    NodePointer,
    PrimaryXMLStore,
    RecordPointer,
)


@dataclass(frozen=True, slots=True)
class FixIndexConfig:
    """Construction-time parameters.

    Attributes:
        depth_limit: the ``L`` of Algorithm 1.  ``0`` indexes each
            document as one unit (the collection scenario); ``k > 0``
            enumerates depth-``k`` subpatterns of deeper documents
            (the single-large-document scenario; the paper uses 6).
        clustered: build the Figure 4 clustered variant.
        value_buckets: ``β`` of Section 4.6; ``None`` for the pure
            structural index.
        max_pattern_vertices: eigen-decomposition size cap; larger
            patterns fall back to the all-covering range (the paper's
            ~3000-edge fallback).
        max_unfolding_opens: cap on a depth-limited unfolding's size.
        guard_band: numerical slack for the containment predicate.
        workers: processes for the build's document fan-out.  ``1``
            builds in-process; ``k > 1`` stages documents across ``k``
            workers with a byte-identical-to-serial guarantee
            (DESIGN.md §7).
        feature_cache: consult the cross-document spectral feature
            cache during construction (on by default; disable to
            measure the uncached baseline).
        prune_backend: default pruning scan backend for query
            processors over this index — ``"btree"`` (the paper's
            range scan) or ``"rtree"`` (per-label R-trees answering
            the containment predicate as a 2-D dominance query,
            DESIGN.md §8).  Both produce identical candidate sets.
        eigen_solver: spectral solver for build- and query-side
            feature extraction — ``"real"`` (the batched real-arithmetic
            kernel, DESIGN.md §9) or ``"legacy"`` (the seed's
            per-pattern complex Hermitian ``eigvalsh``, kept for A/B
            verification).  ``None`` resolves the process default
            (``REPRO_SPECTRAL_SOLVER`` environment variable, else
            ``"real"``).  Both solvers agree within 1e-9, inside the
            guard band, so answers are identical either way.
        obs: observability settings (:class:`~repro.obs.ObsConfig`,
            DESIGN.md §10).  ``None`` means the metrics registry is
            live but span tracing is off; with ``ObsConfig(trace=True)``
            the build and every query over the index capture
            hierarchical spans (worker pools included, merged
            deterministically) for JSONL export via ``Obs.flush``.
            Tracing observes the pipelines without perturbing them:
            the built index is byte-identical and query results are
            pointer-identical with tracing on or off.  Runtime-only —
            never persisted with the index.
        shards: number of independent index shards (DESIGN.md §11).
            ``1`` is a plain single index; ``k > 1`` is interpreted by
            :class:`~repro.core.sharding.ShardedFixIndex` — a
            :class:`FixIndex` itself always manages one shard's worth
            of data and ignores this field.
        shard_affinity: document-routing policy for sharded indexes —
            ``"hash"`` (stable content hash, the default) or
            ``"root-label"`` (documents sharing a root label land in
            the same shard, which makes anchored queries skip whole
            shards).
        shard_workers: processes for the sharded coordinator's
            per-shard build fan-out, and the thread bound for the
            concurrent scatter-gather scan (DESIGN.md §11).  ``1``
            builds/scans shards one at a time; ``k > 1`` stages up to
            ``k`` shards concurrently.  On-disk shard bytes, traces,
            and query answers are identical for any value.  A plain
            :class:`FixIndex` ignores this field.
        page_cache_pages: buffer-pool capacity, in pages, for every
            file-backed pager this index (or its shards) opens.
        spill_dir: directory for out-of-core build state.  ``None``
            (default) builds fully in memory — byte-for-byte the
            historical behavior.  A path makes the B-tree file-backed
            under the ``page_cache_pages`` pool (shards spill under
            ``spill_dir/shard-<i>/``).
        btree_node_cache: bound on parsed B-tree nodes kept resident
            (``None`` = unbounded, the in-memory default).
    """

    depth_limit: int = 0
    clustered: bool = False
    value_buckets: int | None = None
    max_pattern_vertices: int = 800
    max_unfolding_opens: int = 20000
    guard_band: float = DEFAULT_GUARD_BAND
    workers: int = 1
    feature_cache: bool = True
    prune_backend: str = "btree"
    eigen_solver: str | None = None
    obs: ObsConfig | None = None
    shards: int = 1
    shard_affinity: str = "hash"
    shard_workers: int = 1
    page_cache_pages: int = 256
    spill_dir: str | None = None
    btree_node_cache: int | None = None

    def __post_init__(self) -> None:
        if self.prune_backend not in ("btree", "rtree"):
            raise ValueError(
                f"unknown prune backend {self.prune_backend!r} "
                "(expected 'btree' or 'rtree')"
            )
        if self.eigen_solver is not None:
            resolve_solver(self.eigen_solver)  # validates the name
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.shard_affinity not in ("hash", "root-label"):
            raise ValueError(
                f"unknown shard affinity {self.shard_affinity!r} "
                "(expected 'hash' or 'root-label')"
            )
        if self.shard_workers < 1:
            raise ValueError(
                f"need at least one shard worker, got {self.shard_workers}"
            )
        if self.clustered and self.shards > 1:
            raise ValueError(
                "clustered indexes cannot be sharded (the copy store is "
                "laid out in global key order)"
            )
        if self.clustered and self.spill_dir is not None:
            raise ValueError("clustered indexes build in memory; no spill_dir")
        if self.page_cache_pages < 1:
            raise ValueError(
                f"need at least one cache page, got {self.page_cache_pages}"
            )
        if self.btree_node_cache is not None and self.btree_node_cache < 1:
            raise ValueError(
                f"btree_node_cache must be >= 1, got {self.btree_node_cache}"
            )


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """A decoded candidate returned by the pruning phase."""

    key: FeatureKey
    pointer: NodePointer
    record: RecordPointer | None = None


@dataclass(frozen=True, slots=True)
class StagedMutation:
    """One document's mutation delta, computed *outside* the write latch.

    Entry generation (parse, bisimulation, eigensolve) touches nothing a
    reader scans, so it runs concurrently with queries; only the B-tree
    delta in ``entries`` needs the exclusive apply window of
    :meth:`EpochManager.mutation`.  ``labels`` is the touched root-label
    set — the invalidation scope the epoch layer publishes.
    """

    doc_id: int
    #: ``(encoded feature key, packed NodePointer value)`` pairs.
    entries: tuple[tuple[bytes, bytes], ...]
    #: root labels of the document's entries (the invalidation scope).
    labels: frozenset[str]
    #: the shadow generator's statistics (cache hits, eigensolves, ...).
    stats: ConstructionStats
    #: wall-clock seconds spent staging.
    seconds: float


@dataclass
class BuildReport:
    """What a build did: Algorithm 1's observable costs.

    Under the ``repro.obs`` layer this is a view over the index's
    metrics registry: ``timings`` reads the ``build.phase_seconds.*``
    counters, and :meth:`cache_summary` / :meth:`as_dict` assemble the
    cache and batch statistics the registry (and therefore any JSONL
    trace of the build) carries.
    """

    seconds: float = 0.0
    stats: ConstructionStats = field(default_factory=ConstructionStats)
    #: per-phase wall-clock breakdown (aggregate CPU-seconds per phase
    #: for parallel builds, where worker time overlaps).
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    btree_bytes: int = 0
    clustered_bytes: int = 0
    #: the resolved spectral solver the build ran under ("real" or
    #: "legacy"); batch counts live in ``stats.eigen_batches`` /
    #: ``stats.eigen_batch_sizes``.
    eigen_solver: str = "real"
    #: distinct patterns held by the cross-document spectral feature
    #: cache at the end of the build (0 when the cache is disabled).
    feature_cache_patterns: int = 0

    def cache_summary(self) -> dict:
        """Spectral-feature-cache state: size, hits, misses, hit rate
        (the PR 1 cache the ``repro stats`` command surfaces)."""
        lookups = self.stats.cache_hits + self.stats.cache_misses
        return {
            "patterns": self.feature_cache_patterns,
            "hits": self.stats.cache_hits,
            "misses": self.stats.cache_misses,
            "hit_rate": self.stats.cache_hits / lookups if lookups else 0.0,
        }

    def as_dict(self) -> dict:
        """JSON-friendly dump (persistence, ``repro stats``, traces)."""
        return {
            "seconds": self.seconds,
            "entries": self.stats.entries,
            "oversized_patterns": self.stats.oversized_patterns,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
            "feature_cache_patterns": self.feature_cache_patterns,
            "eigen_solver": self.eigen_solver,
            "eigen_batches": self.stats.eigen_batches,
            "eigen_batch_sizes": {
                str(size): count
                for size, count in sorted(self.stats.eigen_batch_sizes.items())
            },
            "phases": self.timings.as_dict(),
            "btree_bytes": self.btree_bytes,
            "clustered_bytes": self.clustered_bytes,
        }


class FixIndex:
    """The feature-based index over a primary store."""

    def __init__(
        self,
        store: PrimaryXMLStore,
        config: FixIndexConfig | None = None,
        *,
        encoder: EdgeLabelEncoder | None = None,
        feature_cache: FeatureCache | None = None,
        obs: Obs | None = None,
    ) -> None:
        """``encoder``/``feature_cache``/``obs`` are injection points
        for a :class:`~repro.core.sharding.ShardedFixIndex` coordinator,
        which shares one encoder (and optionally one spectral cache)
        across every shard so feature keys agree index-wide.  Left as
        ``None`` (the default) each index owns private instances."""
        self.store = store
        self.config = config or FixIndexConfig()
        self.encoder = encoder if encoder is not None else EdgeLabelEncoder()
        self.btree = BPlusTree(
            self._fresh_btree_pager(), node_cache=self.config.btree_node_cache
        )
        self.value_hasher = (
            ValueHasher(self.config.value_buckets)
            if self.config.value_buckets is not None
            else None
        )
        self.clustered_store = ClusteredStore() if self.config.clustered else None
        if feature_cache is not None:
            self.feature_cache: FeatureCache | None = feature_cache
        else:
            self.feature_cache = (
                FeatureCache() if self.config.feature_cache else None
            )
        #: the resolved spectral solver (config choice, else the
        #: process default), shared by build and query feature paths.
        self.eigen_solver = resolve_solver(self.config.eigen_solver)
        #: the observability context (DESIGN.md §10): the metrics
        #: registry every view over this index reads, plus the span
        #: tracer (enabled via ``config.obs``).  Shared by the entry
        #: generator and, by default, every processor over this index.
        self.obs = obs if obs is not None else Obs.from_config(self.config.obs)
        self._generator = EntryGenerator(
            self.encoder,
            self.config.depth_limit,
            text_label=self.value_hasher,
            max_pattern_vertices=self.config.max_pattern_vertices,
            max_unfolding_opens=self.config.max_unfolding_opens,
            cache=self.feature_cache,
            solver=self.eigen_solver,
            obs=self.obs,
        )
        self.report = BuildReport(
            stats=self._generator.stats,
            timings=self._generator.timings,
            eigen_solver=self.eigen_solver,
        )
        #: the epoch layer: readers pin snapshots, mutations publish
        #: per-root-label epochs, and every cached view (plans,
        #: histograms, spatial partitions) validates against it.
        self.epochs = EpochManager()
        self._spatial_view = None
        self._spatial_snapshot: EpochSnapshot | None = None
        #: incremental-maintenance accounting, kept apart from the batch
        #: build's stats so Table-1 phase totals never drift after
        #: mutations (published under ``build.incremental.*``).
        self._incremental_stats = ConstructionStats()
        self._documents_removed = 0
        self._entries_removed = 0

    @property
    def generation(self) -> int:
        """The global epoch — the legacy single-counter view.  Bumped by
        every mutation; per-label validity lives on :attr:`epochs`."""
        return self.epochs.epoch

    # ------------------------------------------------------------------ #
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        store: PrimaryXMLStore,
        config: FixIndexConfig | None = None,
    ) -> "FixIndex":
        """CONSTRUCT-INDEX over every document in ``store``.

        The pipeline is stage → sort → load: entry generation stages
        ``(encoded key, doc_id, node_id)`` triples (in-process, or
        fanned out across ``config.workers`` processes), then the B-tree
        is bulk-loaded from the key-sorted entries.  The staged order —
        and therefore the built tree's exact contents, duplicate order
        included — is independent of the worker count (DESIGN.md §7).
        """
        index = cls(store, config)
        index.rebuild()
        return index

    def rebuild(self, *, seed: bool = True) -> None:
        """Run the full construction pipeline over the current store.

        ``seed=False`` skips the deterministic encoder pre-pass — the
        caller (a sharded coordinator) has already registered every
        edge-label pair in global document order, so re-seeding here
        would only re-parse every document for nothing.
        """
        started = time.perf_counter()
        with self.obs.span(
            "build",
            depth_limit=self.config.depth_limit,
            workers=self.config.workers,
            solver=self.eigen_solver,
            clustered=self.config.clustered,
        ) as build_span:
            with self.obs.span("build.stage") as stage_span:
                staged = self._stage_entries(seed=seed)
                stage_span.set(
                    entries=len(staged),
                    documents=self.report.stats.documents,
                )
            insert_started = time.perf_counter()
            with self.obs.span("build.insert", entries=len(staged)):
                if self.config.clustered:
                    self._load_clustered(staged)
                else:
                    self._load_unclustered(staged)
            self.report.timings.insert += time.perf_counter() - insert_started
            build_span.set(entries=len(staged))
        self.report.seconds = time.perf_counter() - started
        self.report.btree_bytes = self.btree.size_bytes()
        if self.clustered_store is not None:
            self.report.clustered_bytes = self.clustered_store.size_bytes()
        self.epochs.rebuild()  # full invalidation: every label moved
        self._publish_build_metrics()

    def rebuild_from_staged(self, staged) -> None:
        """Load the B-tree from an externally staged entry list (a
        :class:`~repro.core.parallel.StagedBuild` produced by a sharded
        coordinator's per-shard build worker).

        The insert path is exactly :meth:`rebuild`'s, so the on-disk
        tree is byte-identical to a serial ``rebuild(seed=False)`` over
        the same documents; the worker's stats and phase timings are
        folded into this index's report (aggregate CPU-seconds per
        phase, the parallel-build convention).  ``report.seconds``
        covers only the coordinator-side merge + insert — staging ran
        in the worker, overlapped with other shards.
        """
        if self.config.clustered:
            from repro.errors import StorageError

            raise StorageError("clustered indexes cannot load staged entries")
        started = time.perf_counter()
        self._generator.stats.merge(staged.stats)
        self._generator.timings.merge(staged.timings)
        self.obs.registry.merge_sketch_states(staged.sketches)
        insert_started = time.perf_counter()
        with self.obs.span("build.insert", entries=len(staged.entries)):
            self._load_unclustered(staged.entries)
        self.report.timings.insert += time.perf_counter() - insert_started
        self.report.seconds = time.perf_counter() - started
        self.report.btree_bytes = self.btree.size_bytes()
        self.epochs.rebuild()
        self._publish_build_metrics()

    def _fresh_btree_pager(self):
        """A pager for a new B-tree: in-memory by default, file-backed
        under ``spill_dir`` (with the configured buffer pool) for
        out-of-core builds.  Any stale spill file is discarded — a
        fresh tree starts from page zero."""
        if self.config.spill_dir is None:
            return None
        import os

        os.makedirs(self.config.spill_dir, exist_ok=True)
        path = os.path.join(self.config.spill_dir, "btree.pages")
        if os.path.exists(path):
            os.remove(path)
        from repro.storage import Pager

        return Pager(path, cache_pages=self.config.page_cache_pages)

    def _publish_build_metrics(self) -> None:
        """Sync construction stats and sizes into the obs registry (the
        idempotent delta-sync of ``ConstructionStats.publish``), so a
        registry snapshot — or a flushed trace — carries the full
        Table-1 accounting without hot-path counter traffic."""
        registry = self.obs.registry
        self._generator.stats.publish(registry)
        self.pager_stats().publish(registry)
        registry.gauge("index.entries").set(self.entry_count)
        registry.gauge("index.btree_bytes").set(self.btree.size_bytes())
        registry.gauge("index.generation").set(self.generation)
        if self.feature_cache is not None:
            cache = self.feature_cache.stats_dict()
            self.report.feature_cache_patterns = cache["patterns"]
            registry.gauge("build.cache.patterns").set(cache["patterns"])
        if self.clustered_store is not None:
            registry.gauge("index.clustered_bytes").set(
                self.clustered_store.size_bytes()
            )

    def _stage_entries(self, seed: bool = True) -> list[tuple[bytes, int, int]]:
        """Generate ``(encoded key, doc_id, node_id)`` for every entry,
        in document order (generation order within a document)."""
        timings = self._generator.timings
        doc_ids = []
        # Deterministic encoder pre-pass: register every edge-label pair
        # in doc_id/document order before any feature is computed, so
        # code assignment (hence every eigenvalue) is independent of the
        # staging strategy.  See DESIGN.md §7.  A sharded coordinator
        # seeds the shared encoder globally instead (``seed=False``).
        for doc_id in self.store.doc_ids():
            doc_ids.append(doc_id)
            if not seed:
                continue
            started = time.perf_counter()
            document = self.store.get_document(doc_id)
            timings.parse += time.perf_counter() - started
            started = time.perf_counter()
            seed_encoder(self.encoder, document, text_label=self.value_hasher)
            timings.encode += time.perf_counter() - started

        if self.config.workers > 1 and len(doc_ids) > 1:
            from repro.core.parallel import parallel_stage

            staged = parallel_stage(
                self.store,
                self.encoder,
                self.config.depth_limit,
                self.config.workers,
                value_buckets=self.config.value_buckets,
                max_pattern_vertices=self.config.max_pattern_vertices,
                max_unfolding_opens=self.config.max_unfolding_opens,
                feature_cache=self.config.feature_cache,
                doc_ids=doc_ids,
                eigen_solver=self.eigen_solver,
                trace=self.obs.tracing,
            )
            self._generator.stats.merge(staged.stats)
            self._generator.timings.merge(staged.timings)
            # Worker span streams arrive in chunk order (the same order
            # the staged entries are concatenated in), so the merged
            # trace is deterministic for any worker count.
            self.obs.tracer.absorb(
                staged.trace_events, parent_id=self.obs.tracer.current_id
            )
            # Per-doc build sketches, pre-merged in chunk order by
            # parallel_stage — for short streams byte-identical to what
            # the serial loop below would have observed.
            self.obs.registry.merge_sketch_states(staged.sketches)
            return staged.entries

        staged: list[tuple[bytes, int, int]] = []
        unfold_before = timings.unfold
        matrix_before = timings.matrix
        eigen_before = timings.eigen
        doc_seconds = self.obs.registry.sketch("build.doc_seconds")
        doc_entries = self.obs.registry.sketch("build.doc_entries")
        generate_seconds = 0.0
        for doc_id in doc_ids:
            started = time.perf_counter()
            document = self.store.get_document(doc_id)
            timings.parse += time.perf_counter() - started
            started = time.perf_counter()
            with self.obs.span("build.doc", doc=doc_id) as span:
                entries_before = len(staged)
                for entry in self._generator.entries_for(document):
                    staged.append(
                        (self._encode_key(entry.key), doc_id, entry.node_id)
                    )
                span.set(entries=len(staged) - entries_before)
            doc_elapsed = time.perf_counter() - started
            generate_seconds += doc_elapsed
            doc_seconds.observe(doc_elapsed)
            doc_entries.observe(float(len(staged) - entries_before))
        timings.bisim += max(
            0.0,
            generate_seconds
            - (timings.unfold - unfold_before)
            - (timings.matrix - matrix_before)
            - (timings.eigen - eigen_before),
        )
        return staged

    def _load_unclustered(self, staged: list[tuple[bytes, int, int]]) -> None:
        # Stable sort: duplicates keep their staging (document) order,
        # matching what a per-entry insert loop would have produced —
        # but loaded bottom-up like the clustered path, which packs
        # pages tighter and skips per-entry root-to-leaf descents.
        pairs = [
            (key, NodePointer(doc_id, node_id).pack())
            for key, doc_id, node_id in staged
        ]
        pairs.sort(key=lambda pair: pair[0])
        if not self.btree.pager.in_memory:
            self.btree.pager.close()  # release the stale spill file
        self.btree = BPlusTree.bulk_load(
            pairs,
            pager=self._fresh_btree_pager(),
            node_cache=self.config.btree_node_cache,
        )

    def _load_clustered(self, staged: list[tuple[bytes, int, int]]) -> None:
        # Clustering requires the copies laid out in key order: sort the
        # staged entries, then copy + load sequentially.
        assert self.clustered_store is not None
        staged = sorted(staged, key=lambda item: item[0])
        # Fetch each document once up front — the copy loop visits
        # documents in key order, which interleaves them arbitrarily, so
        # going through the store's bounded LRU per entry can re-parse
        # the same document O(entries) times on large collections.
        documents = {
            doc_id: self.store.get_document(doc_id)
            for doc_id in sorted({doc_id for _, doc_id, _ in staged})
        }
        copy_depth = self.config.depth_limit
        pairs: list[tuple[bytes, bytes]] = []
        for key, doc_id, node_id in staged:
            element = documents[doc_id].element_at(node_id)
            record = self.clustered_store.add_unit(element, depth_limit=copy_depth)
            pairs.append((key, record.pack() + NodePointer(doc_id, node_id).pack()))
        # The entries are already key-sorted (that is the clustering
        # contract), so the B-tree can be bulk-loaded bottom-up.
        self.btree = BPlusTree.bulk_load(pairs)

    def _encode_key(self, key: FeatureKey) -> bytes:
        return encode_feature_key(key.root_label, key.range.lmax, key.range.lmin)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def add_document(self, document) -> int:
        """Store a new document and index it incrementally.

        This is FIX's structural advantage over the clustering indexes
        the introduction criticizes: a new document only appends its own
        entries; nothing existing is touched (the shared encoder grows
        monotonically, so existing keys stay valid).  Only the
        unclustered variant supports it — the clustered copy store is
        laid out in global key order and needs a rebuild, matching the
        paper's positioning of the clustered index as build-once.

        Returns the new ``doc_id``.

        Raises:
            UnsupportedQueryError: never; ``ReproError`` via
                :class:`~repro.errors.StorageError` when clustered.
        """
        self._require_unclustered()
        doc_id = self.store.add_document(document)
        self.index_document(doc_id, document)
        return doc_id

    def index_document(self, doc_id: int, document) -> StagedMutation:
        """Generate and insert the index entries for an already-stored
        document (the indexing half of :meth:`add_document` — a sharded
        coordinator stores under a global id first, then indexes here).
        Returns the applied :class:`StagedMutation`.
        """
        self._require_unclustered()
        staged = self.stage_document(doc_id, document)
        self.apply_staged_add(staged)
        return staged

    def _shadow_generator(self) -> EntryGenerator:
        """A throwaway generator for one mutation: it shares the encoder
        (so keys come out identical) and routes explicitly through the
        content-addressed spectral feature cache (so a re-staged
        document's eigensolves are cache hits), but keeps its own stats
        — the batch build's Table-1 accounting is never touched by the
        incremental path."""
        return EntryGenerator(
            self.encoder,
            self.config.depth_limit,
            text_label=self.value_hasher,
            max_pattern_vertices=self.config.max_pattern_vertices,
            max_unfolding_opens=self.config.max_unfolding_opens,
            cache=self.feature_cache,
            solver=self.eigen_solver,
        )

    def stage_document(self, doc_id: int, document) -> StagedMutation:
        """Compute one document's insertion delta without touching any
        shared structure a reader scans — safe to run concurrently with
        pinned queries; only :meth:`apply_staged_add` needs the
        exclusive epoch window."""
        self._require_unclustered()
        started = time.perf_counter()
        shadow = self._shadow_generator()
        entries: list[tuple[bytes, bytes]] = []
        labels: set[str] = set()
        for entry in shadow.entries_for(document):
            labels.add(entry.key.root_label)
            entries.append(
                (
                    self._encode_key(entry.key),
                    NodePointer(doc_id, entry.node_id).pack(),
                )
            )
        return StagedMutation(
            doc_id=doc_id,
            entries=tuple(entries),
            labels=frozenset(labels),
            stats=shadow.stats,
            seconds=time.perf_counter() - started,
        )

    def apply_staged_add(self, staged: StagedMutation) -> None:
        """Insert a staged document delta under the exclusive epoch
        window, publishing a new snapshot scoped to its root labels."""
        with self.obs.span(
            "index.add_document", doc=staged.doc_id
        ) as span:
            apply_started = time.perf_counter()
            with self.epochs.mutation(staged.labels):
                for key, value in staged.entries:
                    self.btree.insert(key, value)
            apply_seconds = time.perf_counter() - apply_started
            span.set(
                entries=len(staged.entries),
                labels=len(staged.labels),
                cache_hits=staged.stats.cache_hits,
            )
        self._observe_mutation_latency(staged.seconds, apply_seconds)
        self._incremental_stats.merge(staged.stats)
        self.report.btree_bytes = self.btree.size_bytes()
        self._publish_incremental_metrics()

    def _require_unclustered(self) -> None:
        from repro.errors import StorageError

        if self.config.clustered:
            raise StorageError(
                "clustered FIX indexes are build-once (the copy store is "
                "key-ordered); rebuild instead"
            )

    def remove_document(self, doc_id: int) -> int:
        """Remove a document and all of its index entries.

        The document's entries are regenerated (deterministically — same
        encoder, and through the content-addressed feature cache, so the
        eigensolves staging paid are cache hits here) to find their
        keys, then deleted pairwise from the B-tree under the exclusive
        epoch window.  Returns the number of entries removed.
        """
        self._require_unclustered()
        staged = self.stage_removal(doc_id)
        return self.apply_staged_removal(staged)

    def stage_removal(self, doc_id: int) -> StagedMutation:
        """Regenerate a stored document's entry delta for deletion —
        like :meth:`stage_document`, outside the write latch."""
        self._require_unclustered()
        started = time.perf_counter()
        document = self.store.get_document(doc_id)
        shadow = self._shadow_generator()
        entries: list[tuple[bytes, bytes]] = []
        labels: set[str] = set()
        for entry in shadow.entries_for(document):
            labels.add(entry.key.root_label)
            entries.append(
                (
                    self._encode_key(entry.key),
                    NodePointer(doc_id, entry.node_id).pack(),
                )
            )
        return StagedMutation(
            doc_id=doc_id,
            entries=tuple(entries),
            labels=frozenset(labels),
            stats=shadow.stats,
            seconds=time.perf_counter() - started,
        )

    def apply_staged_removal(self, staged: StagedMutation) -> int:
        """Delete a staged document delta (entries *and* the stored
        document, atomically under the epoch window — a pinned reader
        never sees entries whose document is gone, or vice versa)."""
        removed = 0
        with self.obs.span(
            "index.remove_document", doc=staged.doc_id
        ) as span:
            apply_started = time.perf_counter()
            with self.epochs.mutation(staged.labels):
                for key, value in staged.entries:
                    if self.btree.delete(key, value):
                        removed += 1
                self.store.remove_document(staged.doc_id)
            apply_seconds = time.perf_counter() - apply_started
            span.set(
                removed=removed,
                labels=len(staged.labels),
                cache_hits=staged.stats.cache_hits,
            )
        self._observe_mutation_latency(staged.seconds, apply_seconds)
        self._incremental_stats.merge(staged.stats)
        self._documents_removed += 1
        self._entries_removed += removed
        self.report.btree_bytes = self.btree.size_bytes()
        self._publish_incremental_metrics()
        return removed

    def _observe_mutation_latency(
        self, stage_seconds: float, apply_seconds: float
    ) -> None:
        """One mutation's stage/apply split into the latency sketches
        (DESIGN.md §13): staging runs outside the latch (the expensive
        eigensolve half), apply is the exclusive epoch window whose
        duration bounds how long it can stall new reader pins."""
        registry = self.obs.registry
        registry.sketch("mutation.stage_seconds").observe(stage_seconds)
        registry.sketch("mutation.apply_seconds").observe(apply_seconds)

    def _publish_incremental_metrics(self) -> None:
        """The mutation path's registry sync: its own accumulator under
        ``build.incremental.*`` (never the batch-build ``build.*``
        phases, which must keep matching the Table-1 report), refreshed
        index gauges, and the ``epoch.*`` counters."""
        registry = self.obs.registry
        self._incremental_stats.publish(registry, prefix="build.incremental.")
        registry.sync_counter(
            "build.incremental.documents_removed", self._documents_removed
        )
        registry.sync_counter(
            "build.incremental.entries_removed", self._entries_removed
        )
        self.pager_stats().publish(registry)
        registry.gauge("index.entries").set(self.entry_count)
        registry.gauge("index.btree_bytes").set(self.btree.size_bytes())
        registry.gauge("index.generation").set(self.generation)
        if self.feature_cache is not None:
            cache = self.feature_cache.stats_dict()
            self.report.feature_cache_patterns = cache["patterns"]
            registry.gauge("build.cache.patterns").set(cache["patterns"])
        self.epochs.publish(registry)

    # ------------------------------------------------------------------ #
    # Coverage and query features (Algorithm 2, lines 1-5)
    # ------------------------------------------------------------------ #

    def covers(self, twig: TwigQuery) -> bool:
        """Can this index answer ``twig`` without false negatives
        (up to the Theorem 5 caveat of DESIGN.md §5a)?"""
        if twig.has_values() and self.value_hasher is None:
            return False
        if self.config.depth_limit <= 0:
            return True
        # A value-extended index truncates patterns at the *extended*
        # depth (text nodes occupy a level), so value queries must fit
        # including their literal level.
        depth = (
            twig.root.extended_depth() if self.value_hasher else twig.depth()
        )
        return depth <= self.config.depth_limit

    def query_features(self, twig: TwigQuery) -> FeatureKey:
        """The twig pattern's feature key under the index's encoder."""
        if not twig.is_twig():
            raise UnsupportedQueryError(
                "query has interior '//' edges; decompose before feature "
                "extraction"
            )
        pattern = twig.pattern(text_label=self.value_hasher)
        try:
            return pattern_features(
                pattern,
                self.encoder,
                max_vertices=self.config.max_pattern_vertices,
                solver=self.eigen_solver,
            )
        except PatternTooLargeError:
            # An absurdly large query: fall back to the always-covered
            # degenerate range so the scan degrades to a label scan.
            return FeatureKey(pattern.root.label, FeatureRange(0.0, 0.0))

    # ------------------------------------------------------------------ #
    # Pruning scan (Algorithm 2, line 6)
    # ------------------------------------------------------------------ #

    def ensure_covers(self, twig: TwigQuery) -> None:
        """Raise :class:`IndexCoverageError` when :meth:`covers` is false."""
        if not self.covers(twig):
            raise IndexCoverageError(
                f"index (depth limit {self.config.depth_limit}, values "
                f"{'on' if self.value_hasher else 'off'}) does not cover "
                f"query {twig.source or twig.root_label!r} "
                f"(depth {twig.depth()}, values "
                f"{'yes' if twig.has_values() else 'no'})"
            )

    def candidates(self, twig: TwigQuery) -> Iterator[IndexEntry]:
        """All index entries whose key covers the twig's feature key.

        Raises:
            IndexCoverageError: when :meth:`covers` is false.
        """
        self.ensure_covers(twig)
        query_key = self.query_features(twig)
        # Root-label pruning is only sound when the query root must bind
        # the unit root.  That is always true for subpattern entries (one
        # per element, keyed by that element's label) but for whole-
        # document units it requires a '/'-anchored query; a '//' query
        # can match anywhere inside a unit whose root label is unrelated,
        # so only λ-range containment prunes (the paper's own Section 5
        # collection discussion uses range containment alone).
        anchored = self.config.depth_limit > 0 or twig.leading_axis is Axis.CHILD
        yield from self.candidates_for_key(query_key, anchored=anchored)

    def candidates_for_key(
        self, query_key: FeatureKey, anchored: bool = True
    ) -> Iterator[IndexEntry]:
        """Pruning scan for a precomputed feature key.

        ``anchored=False`` drops the root-label condition and scans every
        label's range (collection-mode ``//`` queries).
        """
        guard = self.config.guard_band
        if anchored:
            label = query_key.root_label
            start = encode_feature_key(
                label, query_key.range.lmax - guard, float("-inf")
            )
            end = label_upper_bound(label)
        else:
            start = None
            end = None
        for raw_key, raw_value in self.btree.scan(start=start, end=end):
            stored_label, lmax, lmin = decode_feature_key(raw_key)
            if lmax < query_key.range.lmax - guard:
                continue  # only reachable in unanchored scans
            if lmin > query_key.range.lmin + guard:
                continue  # λ_min not contained
            key = FeatureKey(stored_label, FeatureRange(lmin, lmax))
            yield self._decode_entry(key, raw_value)

    def _decode_entry(self, key: FeatureKey, raw_value: bytes) -> IndexEntry:
        if self.config.clustered:
            record = RecordPointer.unpack(raw_value[:8])
            pointer = NodePointer.unpack(raw_value[8:16])
            return IndexEntry(key, pointer, record)
        return IndexEntry(key, NodePointer.unpack(raw_value))

    def pager_stats(self):
        """Combined access counters of every pager this index touches
        (B-tree pages, primary store, clustered copies).

        Returns:
            :class:`~repro.storage.pager.PagerStats` (a summed copy).
        """
        from repro.storage.pager import PagerStats

        sources = [self.btree.pager.stats, self.store.pager.stats]
        if self.clustered_store is not None:
            sources.append(self.clustered_store.pager.stats)
        return PagerStats.combine(sources)

    def publish_scan_stats(self, registry) -> None:
        """Sync the scan-side counters — B-tree visits plus buffer-pool
        hits/misses/evictions (``pager.*``) — into a metrics registry.
        The processor calls this after every query, so ``repro stats``
        and flushed traces carry pool residency behaviour."""
        self.btree.stats.publish(registry)
        self.pager_stats().publish(registry)

    def spatial_view(self):
        """The per-label R-tree view of this index's feature points,
        maintained *incrementally*: a mutation only re-bulk-loads the
        partitions of the root labels it touched (read back through a
        per-label B-tree range scan); untouched labels keep their trees
        pointer-identical.  A full invalidation (rebuild) still replaces
        the view wholesale.

        Returns:
            :class:`~repro.spatial.feature_index.SpatialFeatureIndex`.
        """
        # Imported here: repro.spatial.feature_index imports this
        # module for the IndexEntry type.
        from repro.spatial.feature_index import SpatialFeatureIndex

        snapshot = self.epochs.current
        if self._spatial_view is None or self._spatial_snapshot is None:
            self._spatial_view = SpatialFeatureIndex(self)
            self._spatial_snapshot = snapshot
        elif self._spatial_snapshot.epoch != snapshot.epoch:
            stale = snapshot.changed_labels_since(self._spatial_snapshot.epoch)
            if stale is None:
                self._spatial_view = SpatialFeatureIndex(self)
                self.epochs.note_full_refresh()
            elif stale:
                self._spatial_view.refresh(stale)
                self.epochs.note_scoped_refresh(len(stale))
            self._spatial_snapshot = snapshot
        return self._spatial_view

    def iter_label_entries(self, label: str) -> Iterator[IndexEntry]:
        """Every entry carrying ``label``, in key order — the per-label
        slice scoped refreshes (histogram slices, spatial partitions)
        rebuild from."""
        start = encode_feature_key(label, float("-inf"), float("-inf"))
        for raw_key, raw_value in self.btree.scan(
            start=start, end=label_upper_bound(label)
        ):
            stored_label, lmax, lmin = decode_feature_key(raw_key)
            key = FeatureKey(stored_label, FeatureRange(lmin, lmax))
            yield self._decode_entry(key, raw_value)

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #

    @property
    def entry_count(self) -> int:
        """Total entries — the ``ent`` of the Section 6.2 metrics."""
        return len(self.btree)

    def size_bytes(self) -> int:
        """B-tree footprint (the ``|UIdx|`` column of Table 1)."""
        return self.btree.size_bytes()

    def total_size_bytes(self) -> int:
        """B-tree plus clustered copies (``|CIdx|``)."""
        total = self.btree.size_bytes()
        if self.clustered_store is not None:
            total += self.clustered_store.size_bytes()
        return total

    def iter_entries(self) -> Iterator[IndexEntry]:
        """Every entry in key order (for stats and histograms)."""
        for raw_key, raw_value in self.btree.items():
            label, lmax, lmin = decode_feature_key(raw_key)
            key = FeatureKey(label, FeatureRange(lmin, lmax))
            yield self._decode_entry(key, raw_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "clustered" if self.config.clustered else "unclustered"
        values = f", beta={self.config.value_buckets}" if self.value_hasher else ""
        return (
            f"FixIndex({kind}, depth_limit={self.config.depth_limit}, "
            f"entries={self.entry_count}{values})"
        )

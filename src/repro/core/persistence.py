"""Index persistence: save a built :class:`FixIndex` to a directory and
reattach to it later.

Layout of an index directory::

    meta.json        # config, encoder, B-tree root/entry count, report
    btree.pages      # the B+tree, one page per node
    clustered.pages  # the key-ordered unit copies (clustered indexes only)

The primary store is *not* part of the index (same as the paper's
unclustered design: the index references primary storage, it does not
own it), so :func:`load_index` takes the store as an argument.  Feature
keys remain valid across processes because the edge-label encoder and
the CRC-based value hash are both persisted/deterministic.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.btree import BPlusTree
from repro.core.index import FixIndex, FixIndexConfig
from repro.errors import StorageError
from repro.spectral import EdgeLabelEncoder
from repro.storage import ClusteredStore, Pager, PrimaryXMLStore

_META_FILE = "meta.json"
_BTREE_FILE = "btree.pages"
_CLUSTERED_FILE = "clustered.pages"
_FORMAT_VERSION = 1


def save_index(index: FixIndex, directory: str) -> None:
    """Persist ``index`` into ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    index.btree.flush()
    index.btree.pager.copy_to(os.path.join(directory, _BTREE_FILE))
    clustered_units = 0
    if index.clustered_store is not None:
        index.clustered_store.pager.copy_to(
            os.path.join(directory, _CLUSTERED_FILE)
        )
        clustered_units = index.clustered_store.unit_count
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "depth_limit": index.config.depth_limit,
            "clustered": index.config.clustered,
            "value_buckets": index.config.value_buckets,
            "max_pattern_vertices": index.config.max_pattern_vertices,
            "max_unfolding_opens": index.config.max_unfolding_opens,
            "guard_band": index.config.guard_band,
            "workers": index.config.workers,
            "feature_cache": index.config.feature_cache,
            "prune_backend": index.config.prune_backend,
            "eigen_solver": index.config.eigen_solver,
            "shards": index.config.shards,
            "shard_affinity": index.config.shard_affinity,
            "shard_workers": index.config.shard_workers,
            "page_cache_pages": index.config.page_cache_pages,
            # spill_dir is a build-time location, not an index property:
            # a reattached index reads its pages from the save directory.
            "spill_dir": None,
            "btree_node_cache": index.config.btree_node_cache,
        },
        "encoder": index.encoder.to_dict(),
        "btree": {
            "root_page": index.btree.root_page,
            "entry_count": len(index.btree),
            "page_size": index.btree.pager.page_size,
        },
        "clustered_units": clustered_units,
        "report": {
            "seconds": index.report.seconds,
            "entries": index.report.stats.entries,
            "oversized_patterns": index.report.stats.oversized_patterns,
            "cache_hits": index.report.stats.cache_hits,
            "cache_misses": index.report.stats.cache_misses,
            "feature_cache_patterns": index.report.feature_cache_patterns,
            "eigen_solver": index.report.eigen_solver,
            "eigen_batches": index.report.stats.eigen_batches,
            "eigen_batch_sizes": {
                str(size): count
                for size, count in sorted(
                    index.report.stats.eigen_batch_sizes.items()
                )
            },
            "phases": index.report.timings.as_dict(),
        },
    }
    with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)


def load_index(
    directory: str,
    store: PrimaryXMLStore,
    *,
    page_cache_pages: int | None = None,
) -> FixIndex:
    """Reattach to an index previously saved with :func:`save_index`.

    Args:
        directory: the saved index directory.
        store: the primary store the index was built over.  The caller is
            responsible for it containing the same documents; entries
            point into it by ``(doc_id, node_id)``.
        page_cache_pages: override the saved buffer-pool bound for this
            session (the on-disk config is not modified).

    Raises:
        StorageError: missing/unreadable directory or format mismatch.
    """
    meta_path = os.path.join(directory, _META_FILE)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"no saved index at {directory!r}") from exc
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt index metadata at {meta_path!r}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"index format version {meta.get('format_version')} is not "
            f"supported (expected {_FORMAT_VERSION})"
        )

    config = FixIndexConfig(**meta["config"])
    if page_cache_pages is not None:
        config = dataclasses.replace(config, page_cache_pages=page_cache_pages)
    index = FixIndex(store, config)
    index.encoder = EdgeLabelEncoder.from_dict(meta["encoder"])
    index._generator.encoder = index.encoder

    btree_meta = meta["btree"]
    pager = Pager(
        os.path.join(directory, _BTREE_FILE),
        page_size=btree_meta["page_size"],
        cache_pages=config.page_cache_pages,
    )
    index.btree = BPlusTree.open(
        pager,
        btree_meta["root_page"],
        btree_meta["entry_count"],
        node_cache=config.btree_node_cache,
    )
    if config.clustered:
        clustered_path = os.path.join(directory, _CLUSTERED_FILE)
        if not os.path.exists(clustered_path):
            raise StorageError(
                f"clustered index at {directory!r} is missing its copy pages"
            )
        index.clustered_store = ClusteredStore(
            Pager(clustered_path), preloaded_units=meta["clustered_units"]
        )
    report = meta["report"]
    index.report.seconds = report["seconds"]
    index.report.stats.entries = report["entries"]
    index.report.stats.oversized_patterns = report["oversized_patterns"]
    # Additive report fields (absent in indexes saved by older builds).
    index.report.stats.cache_hits = report.get("cache_hits", 0)
    index.report.stats.cache_misses = report.get("cache_misses", 0)
    index.report.feature_cache_patterns = report.get("feature_cache_patterns", 0)
    index.report.eigen_solver = report.get("eigen_solver", index.eigen_solver)
    index.report.stats.eigen_batches = report.get("eigen_batches", 0)
    index.report.stats.eigen_batch_sizes = {
        int(size): count
        for size, count in report.get("eigen_batch_sizes", {}).items()
    }
    for phase, seconds in report.get("phases", {}).items():
        setattr(index.report.timings, phase, seconds)
    index.report.btree_bytes = index.btree.size_bytes()
    # Republish the restored stats so the metrics registry agrees with
    # the report views (phase counters were restored just above).
    index.report.stats.publish(index.obs.registry)
    index.obs.registry.gauge("index.entries").set(index.report.stats.entries)
    index.obs.registry.gauge("index.btree_bytes").set(index.report.btree_bytes)
    return index

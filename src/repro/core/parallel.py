"""Parallel document fan-out for index construction and query
refinement (DESIGN.md §7 and §8).

``FixIndex.build`` stages one ``(encoded key, doc_id, node_id)`` triple
per index entry before loading the B-tree; this module produces the same
staged list using a pool of ``multiprocessing`` workers, one chunk of
documents per worker, with a **byte-identical guarantee**: the staged
list — and therefore the bulk-loaded B-tree's exact ``items()`` sequence
— is the same as the serial build's, for any worker count.

:func:`parallel_refine` applies the same pattern to Algorithm 2's
refinement phase: the query processor groups candidates by the document
(or clustered copy unit) they refine against, and the groups are fanned
out across workers.  Each candidate's verdict is a pure function of
(query, its unit's tree), so the surviving set — and the final
pointer-ordered result list — is identical for any worker count.

The guarantee rests on three invariants:

1. **Encoder pre-seeding.**  The coordinator registers every edge-label
   pair of every document with the shared encoder *before* fan-out
   (:func:`~repro.core.construction.seed_encoder`, walked in ``doc_id``
   /document order).  Each worker receives a snapshot of this complete
   encoder, so every feature is computed under identical edge weights
   regardless of which worker sees which document first.  On collection
   the worker encoders are merged back and any drift — a pair a worker
   assigned that the coordinator didn't know, or a conflicting code —
   fails loudly (:meth:`EdgeLabelEncoder.merge`).
2. **Deterministic generation.**  Entry generation itself is
   deterministic per document (vid-ordered traversals throughout), so a
   document's entry list does not depend on the worker that produced it.
   Worker-local feature caches change *when* an eigenproblem is solved,
   never its result.
3. **Order-preserving collection.**  Documents are partitioned into
   contiguous chunks in ``doc_id`` order and results are concatenated in
   chunk order, reproducing the serial staging order exactly (the
   B-tree's duplicate-key order is the staging order, because the
   loader's sort is stable).

Workers ship documents as serialized XML (re-parsed in the worker) so the
fan-out does not depend on tree objects being picklable; the re-parse is
charged to the worker's ``parse`` phase.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.btree import encode_feature_key
from repro.core.construction import (
    ConstructionStats,
    EntryGenerator,
    PhaseTimings,
)
from repro.core.values import ValueHasher
from repro.obs import Obs
from repro.spectral import EdgeLabelEncoder, FeatureCache, resolve_solver
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

#: One staged index entry: (encoded B-tree key, doc_id, node_id).
StagedEntry = tuple[bytes, int, int]


@dataclass
class StagedBuild:
    """Everything a staging pass (serial or parallel) produces."""

    entries: list[StagedEntry] = field(default_factory=list)
    stats: ConstructionStats = field(default_factory=ConstructionStats)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: a worker's final encoder state, returned for the drift check.
    encoder_state: dict[str, int] | None = None
    #: closed span events from the worker tracers (empty unless the
    #: coordinator asked for tracing), concatenated in chunk order so
    #: the merged trace is deterministic for any worker count.
    trace_events: list[dict] = field(default_factory=list)
    #: the worker's quantile-sketch states (``build.doc_seconds``,
    #: ``build.doc_entries``), shipped whole and merged by the
    #: coordinator in chunk order.  A worker's stream is a pure
    #: arrival-order log below the sketch capacity, so the chunk-order
    #: merge replays the serial observation order exactly (see
    #: :class:`~repro.obs.sketch.QuantileSketch`).
    sketches: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class _WorkerTask:
    """Pickled per-worker payload."""

    encoder: dict[str, int]
    depth_limit: int
    value_buckets: int | None
    max_pattern_vertices: int
    max_unfolding_opens: int
    feature_cache: bool
    #: resolved spectral solver ("real"/"legacy"); resolved by the
    #: coordinator so every worker ignores its own environment.
    eigen_solver: str
    #: capture spans in the worker (the coordinator's tracing state).
    trace: bool
    #: the worker's position in the chunk sequence (its ``proc`` tag).
    worker_id: int
    #: (doc_id, serialized XML) in doc_id order.
    documents: tuple[tuple[int, str], ...]


def _stage_documents(task, documents, proc: str) -> StagedBuild:
    """Stage an iterable of ``(doc_id, source)`` pairs under ``task``'s
    generator settings.

    The one staging loop shared by the chunked document fan-out
    (:func:`parallel_stage`) and the per-shard build workers
    (:func:`parallel_shard_stage`) — ``task`` only needs the common
    generator-config fields, ``proc`` tags the worker's spans.
    """
    encoder = EdgeLabelEncoder.from_dict(task.encoder)
    hasher = (
        ValueHasher(task.value_buckets) if task.value_buckets is not None else None
    )
    obs = Obs(trace=task.trace, proc=proc)
    generator = EntryGenerator(
        encoder,
        task.depth_limit,
        text_label=hasher,
        max_pattern_vertices=task.max_pattern_vertices,
        max_unfolding_opens=task.max_unfolding_opens,
        cache=FeatureCache() if task.feature_cache else None,
        solver=task.eigen_solver,
        obs=obs,
    )
    entries: list[StagedEntry] = []
    doc_seconds = obs.registry.sketch("build.doc_seconds")
    doc_entries = obs.registry.sketch("build.doc_entries")
    generate_seconds = 0.0
    for doc_id, source in documents:
        started = time.perf_counter()
        document = parse_xml(source, doc_id=doc_id)
        generator.timings.parse += time.perf_counter() - started
        started = time.perf_counter()
        with obs.span("build.doc", doc=doc_id) as span:
            entries_before = len(entries)
            for entry in generator.entries_for(document):
                entries.append(
                    (
                        encode_feature_key(
                            entry.key.root_label,
                            entry.key.range.lmax,
                            entry.key.range.lmin,
                        ),
                        doc_id,
                        entry.node_id,
                    )
                )
            span.set(entries=len(entries) - entries_before)
        doc_elapsed = time.perf_counter() - started
        generate_seconds += doc_elapsed
        doc_seconds.observe(doc_elapsed)
        doc_entries.observe(float(len(entries) - entries_before))
    generator.timings.bisim += max(
        0.0,
        generate_seconds
        - generator.timings.unfold
        - generator.timings.matrix
        - generator.timings.eigen,
    )
    # Returning the worker's encoder lets the coordinator verify the
    # no-drift invariant; a complete pre-seed makes this a no-op merge.
    return StagedBuild(
        entries,
        generator.stats,
        generator.timings,
        generator.encoder.to_dict(),
        trace_events=obs.tracer.events,
        sketches=obs.registry.snapshot()["sketches"],
    )


def _stage_worker(task: _WorkerTask) -> StagedBuild:
    """Stage one chunk of documents (runs in a worker process)."""
    return _stage_documents(task, task.documents, proc=f"worker-{task.worker_id}")


def parallel_stage(
    store: PrimaryXMLStore,
    encoder: EdgeLabelEncoder,
    depth_limit: int,
    workers: int,
    value_buckets: int | None = None,
    max_pattern_vertices: int = 800,
    max_unfolding_opens: int = 20000,
    feature_cache: bool = True,
    doc_ids: list[int] | None = None,
    eigen_solver: str | None = None,
    trace: bool = False,
) -> StagedBuild:
    """Stage every document of ``store`` across ``workers`` processes.

    ``encoder`` must already be fully seeded over the documents (the
    coordinator's pre-pass); workers receive snapshots of it and their
    end states are merged back, so conflicting assignments raise
    :class:`~repro.errors.FeatureError` instead of corrupting keys.

    Returns a :class:`StagedBuild` whose entry list is identical to the
    serial staging order (doc_id order, generation order within a doc).
    """
    ids = list(store.doc_ids()) if doc_ids is None else list(doc_ids)
    solver = resolve_solver(eigen_solver)
    workers = max(1, min(workers, len(ids)))
    chunk_size = (len(ids) + workers - 1) // workers
    chunks = [ids[i : i + chunk_size] for i in range(0, len(ids), chunk_size)]
    tasks = []
    serialize_started = time.perf_counter()
    for worker_id, chunk in enumerate(chunks):
        documents = tuple(
            (doc_id, store.get_source(doc_id)) for doc_id in chunk
        )
        tasks.append(
            _WorkerTask(
                encoder=encoder.to_dict(),
                depth_limit=depth_limit,
                value_buckets=value_buckets,
                max_pattern_vertices=max_pattern_vertices,
                max_unfolding_opens=max_unfolding_opens,
                feature_cache=feature_cache,
                eigen_solver=solver,
                trace=trace,
                worker_id=worker_id,
                documents=documents,
            )
        )
    serialize_seconds = time.perf_counter() - serialize_started

    if len(tasks) == 1:
        results = [_stage_worker(tasks[0])]
    else:
        context = multiprocessing.get_context()
        with context.Pool(processes=len(tasks)) as pool:
            results = pool.map(_stage_worker, tasks)

    merged = StagedBuild()
    merged.timings.parse += serialize_seconds
    from repro.obs import MetricsRegistry

    sketch_registry = MetricsRegistry()
    for result in results:
        merged.entries.extend(result.entries)
        merged.stats.merge(result.stats)
        merged.timings.merge(result.timings)
        merged.trace_events.extend(result.trace_events)
        # Chunk order — the same order the entries concatenate in — is
        # what makes the merged sketch state deterministic (and, for
        # short worker streams, identical to the serial build's).
        sketch_registry.merge_sketch_states(result.sketches)
        if result.encoder_state is not None:
            encoder.merge(EdgeLabelEncoder.from_dict(result.encoder_state))
    merged.sketches = sketch_registry.snapshot()["sketches"]
    return merged


# --------------------------------------------------------------------- #
# Per-shard build fan-out (DESIGN.md §11)
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class ShardStoreRef:
    """How a build worker reattaches to a spilled shard store: the
    flushed pages file plus the live record directory.  Shipping this
    instead of the sources keeps the task pickle O(documents), not
    O(corpus bytes) — the out-of-core property survives the fan-out."""

    pages_path: str
    page_size: int
    page_cache_pages: int
    #: (doc_id, page_id, slot) in doc_id order
    #: (:meth:`~repro.storage.PrimaryXMLStore.record_locations`).
    records: tuple[tuple[int, int, int], ...]


@dataclass(frozen=True, slots=True)
class ShardBuildTask:
    """Pickled per-shard build payload.  Exactly one of ``documents``
    (in-memory shard: inline sources) and ``store_ref`` (spilled shard:
    reattach and read) is set."""

    shard_id: int
    encoder: dict[str, int]
    depth_limit: int
    value_buckets: int | None
    max_pattern_vertices: int
    max_unfolding_opens: int
    feature_cache: bool
    eigen_solver: str
    trace: bool
    documents: tuple[tuple[int, str], ...] | None = None
    store_ref: ShardStoreRef | None = None


def _shard_build_worker(
    task: ShardBuildTask,
) -> tuple[int, StagedBuild | None, str | None]:
    """Stage one whole shard (runs in a worker process, or in-process
    for ``shard_workers=1``).

    Never raises: a failure comes back as a ``(shard_id, None,
    "ExcType: message")`` marker so the coordinator can raise a typed
    :class:`~repro.errors.ShardError` naming the shard instead of a raw
    pool traceback crossing the process boundary.
    """
    try:
        if task.store_ref is not None:
            from repro.storage import PrimaryXMLStore

            ref = task.store_ref
            store = PrimaryXMLStore.attach(
                ref.pages_path,
                ref.page_size,
                ref.records,
                page_cache_pages=ref.page_cache_pages,
            )
            try:
                staged = _stage_documents(
                    task,
                    (
                        (doc_id, store.get_source(doc_id))
                        for doc_id, _, _ in ref.records
                    ),
                    proc=f"shard-{task.shard_id}",
                )
            finally:
                store.pager.close()
        else:
            staged = _stage_documents(
                task, task.documents, proc=f"shard-{task.shard_id}"
            )
        return task.shard_id, staged, None
    except Exception as exc:  # noqa: BLE001 - marshalled to a ShardError
        return task.shard_id, None, f"{type(exc).__name__}: {exc}"


# Shard-build pools persist across rebuilds for the same reason the
# refinement pools do (one spawn cost per process lifetime, not per
# build); tasks are self-contained — encoder snapshot, store reference,
# solver — so reuse cannot leak state between coordinators.
_SHARD_POOLS: dict[int, "multiprocessing.pool.Pool"] = {}


def _shard_pool(processes: int) -> "multiprocessing.pool.Pool":
    pool = _SHARD_POOLS.get(processes)
    if pool is None:
        pool = multiprocessing.get_context().Pool(processes=processes)
        _SHARD_POOLS[processes] = pool
    return pool


@atexit.register
def _shutdown_shard_pools() -> None:
    while _SHARD_POOLS:
        _, pool = _SHARD_POOLS.popitem()
        pool.terminate()
        pool.join()


def parallel_shard_stage(tasks: "list[ShardBuildTask]", workers: int):
    """Stage every shard of ``tasks`` across ``workers`` processes,
    yielding ``(shard_id, StagedBuild)`` strictly in task order.

    Ordered streaming (``imap``): the coordinator bulk-loads shard *k*'s
    B-tree while later shards are still staging, and absorbs stats and
    span events in shard order — so traces and reports are identical
    for any worker count.  ``shard_workers=1`` routes through the same
    worker function in-process, keeping every code path (and therefore
    every stat) identical to the pooled one.

    Raises:
        ShardError: a worker failed; names the shard.
    """
    from repro.errors import ShardError

    workers = max(1, min(workers, len(tasks)))
    if workers == 1:
        results = map(_shard_build_worker, tasks)
    else:
        results = _shard_pool(workers).imap(_shard_build_worker, tasks)
    for shard_id, staged, error in results:
        if error is not None:
            raise ShardError(
                f"shard {shard_id}: build failed: {error}", shard=shard_id
            )
        yield shard_id, staged


# Concurrent scatter-gather runs per-shard scans on threads, not
# processes: a scan is pager I/O plus key decoding over the shard's own
# B-tree/pager/store objects (disjoint per shard, so no locking), and
# the results must come back as live IndexEntry objects.  Executors are
# keyed by worker count and reused across queries.
_SCAN_EXECUTORS: dict[int, "ThreadPoolExecutor"] = {}


def scan_executor(workers: int) -> "ThreadPoolExecutor":
    """The shared scatter-gather thread pool for ``workers`` threads."""
    executor = _SCAN_EXECUTORS.get(workers)
    if executor is None:
        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard-scan"
        )
        _SCAN_EXECUTORS[workers] = executor
    return executor


@atexit.register
def _shutdown_scan_executors() -> None:
    while _SCAN_EXECUTORS:
        _, executor = _SCAN_EXECUTORS.popitem()
        executor.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------- #
# Query refinement fan-out (DESIGN.md §8)
# --------------------------------------------------------------------- #

#: One refinement unit: candidates sharing a parsed tree.  ``kind`` is
#: ``"doc"`` (a primary document; candidates address elements by
#: node_id) or ``"copy"`` (a clustered unit copy; the single candidate
#: binds the copy root).  ``candidates`` pairs each candidate's opaque
#: sequence number with its node id.
RefineGroup = tuple[str, str, tuple[tuple[int, int], ...]]


@dataclass(frozen=True, slots=True)
class _RefineTask:
    """Pickled per-worker refinement payload."""

    twig: object  # TwigQuery (already leading-axis-rewritten)
    refiner: str  # "navigational" | "structural_join"
    groups: tuple[RefineGroup, ...]
    #: capture a span per worker chunk (the coordinator's tracing state).
    trace: bool = False
    #: the worker's position in the chunk sequence (its ``proc`` tag).
    worker_id: int = 0


def _make_refiner(kind: str):
    from repro.engine.navigational import NavigationalEngine
    from repro.engine.structural_join import StructuralJoinEngine
    from repro.storage.primary import PrimaryXMLStore

    # Refinement never touches the store (it works on parsed trees), so
    # workers get an empty placeholder.
    if kind == "structural_join":
        return StructuralJoinEngine(PrimaryXMLStore())
    return NavigationalEngine(PrimaryXMLStore())


def refine_groups(refiner, twig, groups: "list[RefineGroup] | tuple[RefineGroup, ...]") -> list[int]:
    """Refine ``groups`` with ``refiner``; returns surviving sequence
    numbers.  Shared by the in-worker path and (for a single worker or
    pre-parsed documents) the coordinator."""
    from repro.query.ast import Axis
    from repro.xmltree import parse_xml

    surviving: list[int] = []
    for kind, source, candidates in groups:
        document = parse_xml(source)
        if twig.leading_axis is Axis.CHILD:
            if kind == "copy":
                if refiner.refine(twig, document.root):
                    surviving.extend(seq for seq, _ in candidates)
            else:
                flags = refiner.refine_group(
                    twig, document, [node_id for _, node_id in candidates]
                )
                surviving.extend(
                    seq for (seq, _), ok in zip(candidates, flags) if ok
                )
        # A '//'-leading twig reaches this path only on collection
        # indexes, where a unit survives iff the query matches anywhere
        # inside it — one evaluation answers the whole group.
        elif refiner.evaluate_document(twig, document):
            surviving.extend(seq for seq, _ in candidates)
    return surviving


def _refine_worker(task: _RefineTask) -> tuple[list[int], list[dict]]:
    """Refine one chunk of groups (runs in a worker process).

    Returns the surviving sequence numbers plus the worker's closed
    span events (empty unless the coordinator traces).
    """
    obs = Obs(trace=task.trace, proc=f"worker-{task.worker_id}")
    with obs.span("query.refine.chunk", groups=len(task.groups)) as span:
        surviving = refine_groups(
            _make_refiner(task.refiner), task.twig, task.groups
        )
        span.set(survivors=len(surviving))
    return surviving, obs.tracer.events


# Query refinement is latency-sensitive (one fan-out per query, unlike
# the build's single fan-out per index), so pools are kept alive and
# reused across queries instead of being spawned per call.  Workers are
# stateless — every task ships its own query and serialized trees — so
# reuse cannot leak state between queries or indexes.
_REFINE_POOLS: dict[int, "multiprocessing.pool.Pool"] = {}


def _refine_pool(processes: int) -> "multiprocessing.pool.Pool":
    pool = _REFINE_POOLS.get(processes)
    if pool is None:
        pool = multiprocessing.get_context().Pool(processes=processes)
        _REFINE_POOLS[processes] = pool
    return pool


@atexit.register
def _shutdown_refine_pools() -> None:
    while _REFINE_POOLS:
        _, pool = _REFINE_POOLS.popitem()
        pool.terminate()
        pool.join()


def parallel_refine(
    groups: list[RefineGroup],
    twig,
    refiner_kind: str,
    workers: int,
    trace: bool = False,
) -> tuple[list[int], list[dict]]:
    """Refine ``groups`` across ``workers`` processes.

    Groups are partitioned into contiguous chunks (they arrive in
    copy-then-doc_id order from the processor); the surviving sequence
    numbers — and, when ``trace`` is set, the workers' span events —
    are concatenated in chunk order, so both outputs are independent of
    the worker count.
    """
    workers = max(1, min(workers, len(groups)))
    chunk_size = (len(groups) + workers - 1) // workers
    tasks = [
        _RefineTask(
            twig,
            refiner_kind,
            tuple(groups[i : i + chunk_size]),
            trace=trace,
            worker_id=worker_id,
        )
        for worker_id, i in enumerate(range(0, len(groups), chunk_size))
    ]
    if len(tasks) == 1:
        results = [_refine_worker(tasks[0])]
    else:
        results = _refine_pool(len(tasks)).map(_refine_worker, tasks)
    surviving: list[int] = []
    trace_events: list[dict] = []
    for chunk_surviving, chunk_events in results:
        surviving.extend(chunk_surviving)
        trace_events.extend(chunk_events)
    return surviving, trace_events

"""Access-path selection (the Section 5 cost discussion, made concrete).

The paper sketches the optimizer's job: check index coverage, then
estimate the candidate count from a histogram on the primary sort key
(λ_max) to decide whether the index is worth using.  This module
implements that decision:

* coverage check (depth limit, value support) — a non-covered query must
  fall back to a full scan;
* candidate-count estimation via
  :class:`~repro.core.stats.FeatureHistogram`;
* a simple cost model::

      cost(index scan) = descent + cdt_estimate * candidate_cost
      cost(full scan)  = total_units * scan_cost

  with ``candidate_cost > scan_cost`` reflecting that refining a
  candidate through a pointer (random access + verification) is more
  expensive per unit than streaming past it in document order;
* an :class:`ExplainedPlan` that records the decision and its inputs —
  the EXPLAIN output — and executes either path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from repro.core.index import FixIndex
from repro.core.processor import FixQueryProcessor, FixQueryResult
from repro.core.stats import FeatureHistogram
from repro.engine.navigational import NavigationalEngine
from repro.query.decompose import decompose
from repro.query.twig import TwigQuery, twig_of


class AccessPath(Enum):
    """The two available plans."""

    INDEX_SCAN = "index-scan"
    FULL_SCAN = "full-scan"


@dataclass(frozen=True, slots=True)
class CostModel:
    """Relative per-unit costs (dimensionless; only ratios matter).

    Defaults encode the paper's qualitative story: following a pointer
    and running refinement on a candidate costs several times a
    sequential scan step, plus a fixed B-tree descent charge.
    """

    descent_cost: float = 30.0
    candidate_cost: float = 6.0
    scan_cost: float = 1.0


def shard_scan_cost(
    histogram: FeatureHistogram,
    query_key,
    anchored: bool = True,
    model: CostModel | None = None,
) -> float:
    """Estimated cost of running one shard's pruning scan for a query
    feature key: a B-tree descent plus the histogram's candidate
    estimate, under the same :class:`CostModel` the access-path chooser
    uses.  A sharded coordinator orders its scatter most-selective-
    shard-first by this number (DESIGN.md §11)."""
    model = model or CostModel()
    estimate = histogram.estimate_candidates(query_key, anchored=anchored)
    return model.descent_cost + estimate * model.candidate_cost


@dataclass
class ExplainedPlan:
    """A chosen plan plus everything that went into choosing it."""

    query: TwigQuery
    path: AccessPath
    covered: bool
    estimated_candidates: float
    total_units: int
    index_cost: float
    scan_cost: float
    reason: str

    def describe(self) -> str:
        """A human-readable EXPLAIN string."""
        return (
            f"plan: {self.path.value}\n"
            f"  covered by index:     {self.covered}\n"
            f"  total units:          {self.total_units}\n"
            f"  estimated candidates: {self.estimated_candidates:.0f}\n"
            f"  est. index cost:      {self.index_cost:.0f}\n"
            f"  est. full-scan cost:  {self.scan_cost:.0f}\n"
            f"  reason:               {self.reason}"
        )


class QueryOptimizer:
    """Choose and run the cheaper access path for each query."""

    def __init__(
        self,
        index: FixIndex,
        histogram: FeatureHistogram | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.index = index
        self.histogram = histogram or FeatureHistogram(index)
        self.cost_model = cost_model or CostModel()
        self._processor = FixQueryProcessor(index)
        self._scanner = NavigationalEngine(index.store)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(self, query: TwigQuery | str) -> ExplainedPlan:
        """Pick an access path without executing anything."""
        twig = query if isinstance(query, TwigQuery) else twig_of(query)
        total_units = self.index.entry_count
        model = self.cost_model
        scan_cost = total_units * model.scan_cost

        if not self.index.covers(twig):
            return ExplainedPlan(
                query=twig,
                path=AccessPath.FULL_SCAN,
                covered=False,
                estimated_candidates=float(total_units),
                total_units=total_units,
                index_cost=float("inf"),
                scan_cost=scan_cost,
                reason=(
                    "query not covered by the index (depth or value "
                    "support) — the index could miss answers"
                ),
            )

        top = decompose(twig)[0]
        estimate = self.histogram.estimate_candidates(
            self.index.query_features(top)
        )
        index_cost = model.descent_cost + estimate * model.candidate_cost
        if index_cost <= scan_cost:
            path = AccessPath.INDEX_SCAN
            reason = (
                f"estimated {estimate:.0f} candidates; index cost "
                f"{index_cost:.0f} <= scan cost {scan_cost:.0f}"
            )
        else:
            path = AccessPath.FULL_SCAN
            reason = (
                f"estimated {estimate:.0f} candidates; pruning too weak "
                f"(index cost {index_cost:.0f} > scan cost {scan_cost:.0f})"
            )
        return ExplainedPlan(
            query=twig,
            path=path,
            covered=True,
            estimated_candidates=estimate,
            total_units=total_units,
            index_cost=index_cost,
            scan_cost=scan_cost,
            reason=reason,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, query: TwigQuery | str) -> tuple[ExplainedPlan, FixQueryResult]:
        """Plan and run; both paths return the same result shape."""
        plan = self.plan(query)
        if plan.path is AccessPath.INDEX_SCAN:
            return plan, self._processor.query(plan.query)
        started = time.perf_counter()
        pointers = self._scan(plan.query)
        elapsed = time.perf_counter() - started
        result = FixQueryResult(
            results=pointers,
            candidate_count=plan.total_units,
            prune_seconds=0.0,
            refine_seconds=elapsed,
        )
        return plan, result

    def _scan(self, twig: TwigQuery):
        """Full navigational evaluation, shaped like index results.

        For a collection index the unit is the document (return one
        pointer per matching document root); for a subpattern index the
        unit is the element (return every binding).
        """
        pointers = self._scanner.evaluate(twig)
        if self.index.config.depth_limit <= 0:
            from repro.storage import NodePointer

            seen: set[int] = set()
            units = []
            for pointer in pointers:
                if pointer.doc_id not in seen:
                    seen.add(pointer.doc_id)
                    units.append(NodePointer(pointer.doc_id, 0))
            return units
        return pointers

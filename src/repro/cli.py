"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``  — load XML files (or generate a named data set) into a
  primary store, build a FIX index, and save both to a directory.
* ``query``  — run a path expression against a saved index; prints the
  matched units and the phase breakdown.
* ``add``    — incrementally index new XML files into a saved index
  (label-scoped invalidation; no rebuild).
* ``remove`` — remove documents (and their entries) from a saved index.
* ``stats``  — summarize a saved index (entries, sizes, labels, caches).
* ``datasets`` — list the built-in synthetic data sets.
* ``bench``  — regenerate one of the paper's tables/figures.
* ``trace``  — aggregate a JSONL trace (``--trace`` on build/query)
  into the per-phase / per-query breakdown (``--slow`` lists captured
  slow-query exemplars).
* ``metrics`` — render the metrics of a trace file or a saved index as
  Prometheus text or JSON (DESIGN.md §13).
* ``top``    — live terminal dashboard tailing a trace file
  (``--once`` renders a single plain frame, for CI and saved traces).

Examples::

    python -m repro build --dataset xmark --scale 0.3 --out /tmp/idx \\
        --depth-limit 6 --trace /tmp/idx/trace.jsonl
    python -m repro query /tmp/idx "//item[name]/mailbox" \\
        --trace /tmp/idx/trace.jsonl
    python -m repro trace /tmp/idx/trace.jsonl
    python -m repro metrics /tmp/idx/trace.jsonl --format prometheus
    python -m repro top /tmp/idx/trace.jsonl --once
    python -m repro stats /tmp/idx
    python -m repro bench table2 --scale 0.3
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    ShardedFixIndex,
    evaluate_pruning,
    load_index,
    save_index,
)
from repro.errors import ReproError
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FIX: feature-based XML indexing (paper reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and save a FIX index")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument("--xml", nargs="+", metavar="FILE", help="XML input files")
    source.add_argument(
        "--dataset", choices=["xbench", "dblp", "xmark", "treebank"],
        help="generate a built-in synthetic data set instead",
    )
    build.add_argument("--scale", type=float, default=0.3, help="data-set scale")
    build.add_argument("--seed", type=int, default=42, help="data-set seed")
    build.add_argument("--out", required=True, metavar="DIR", help="output directory")
    build.add_argument(
        "--depth-limit", type=int, default=None,
        help="pattern depth limit L (default: data set's suggested value, "
        "or 0 for XML files)",
    )
    build.add_argument("--clustered", action="store_true", help="clustered variant")
    build.add_argument(
        "--beta", type=int, default=None, metavar="B",
        help="enable the value extension with B hash buckets",
    )
    build.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="build worker processes (N>1 fans documents out across N "
        "processes; results are byte-identical to the serial build)",
    )
    build.add_argument(
        "--no-cache", action="store_true",
        help="disable the cross-document spectral feature cache",
    )
    build.add_argument(
        "--eigen-solver", choices=["real", "legacy"], default=None,
        help="spectral solver: 'real' (batched real-arithmetic kernel, the "
        "default) or 'legacy' (per-pattern complex eigvalsh, for A/B "
        "verification); default honours REPRO_SPECTRAL_SOLVER",
    )
    build.add_argument(
        "--prune-backend", choices=["btree", "rtree"], default="btree",
        help="default pruning backend baked into the index config",
    )
    build.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a JSONL span trace of the build to PATH "
        "(overwrites; inspect with 'repro trace PATH')",
    )
    build.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition documents into N independent shards (N>1 saves "
        "a sharded index; query answers are pointer-identical to the "
        "single-index build)",
    )
    build.add_argument(
        "--shard-affinity", choices=["hash", "root-label"], default="hash",
        help="shard routing: stable document hash (default) or root "
        "label (clusters look-alike documents, enabling shard skipping "
        "on anchored queries)",
    )
    build.add_argument(
        "--shard-workers", type=int, default=1, metavar="N",
        help="shard build worker processes: each shard's staging runs in "
        "the pool, N shards at a time (on-disk bytes identical to the "
        "serial build); also the saved scan-concurrency bound",
    )
    build.add_argument(
        "--page-cache-pages", type=int, default=None, metavar="P",
        help="buffer-pool bound, in pages, for every file-backed pager "
        "(default 256; only file-backed pagers evict)",
    )
    build.add_argument(
        "--spill-dir", metavar="DIR", default=None,
        help="build out-of-core: shard stores and B-trees go straight "
        "to files under DIR instead of memory (sharded builds only)",
    )

    query = commands.add_parser("query", help="query a saved index")
    query.add_argument("index_dir", metavar="DIR")
    query.add_argument("expression", metavar="QUERY")
    query.add_argument(
        "--metrics", action="store_true",
        help="also compute sel/pp/fpr against the brute-force ground truth",
    )
    query.add_argument(
        "--limit", type=int, default=20, help="max result pointers to print"
    )
    query.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="refinement worker processes (N>1 fans document groups out "
        "across N processes; results are identical to serial)",
    )
    query.add_argument(
        "--prune-backend", choices=["btree", "rtree"], default=None,
        help="pruning backend (default: the index config's choice)",
    )
    query.add_argument(
        "--no-plan-cache", action="store_true",
        help="re-plan (parse/decompose/eigensolve) on every repetition",
    )
    query.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help="run the query K times (repetitions after the first hit "
        "the plan cache); timings are reported per run",
    )
    query.add_argument(
        "--trace", metavar="PATH", default=None,
        help="append a JSONL span trace of the run to PATH (build and "
        "query traces can share one file)",
    )
    query.add_argument(
        "--page-cache-pages", type=int, default=None, metavar="P",
        help="override the saved buffer-pool bound for this session",
    )
    query.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="override the saved shard scan-concurrency bound for this "
        "session (sharded indexes only)",
    )
    query.add_argument(
        "--pushdown", action="store_true",
        help="sharded indexes: run prune+refine inside each shard that "
        "can hold a candidate and merge only verified matches (answers "
        "identical to the scatter-gather path)",
    )
    query.add_argument(
        "--slow-log", metavar="PATH", default=None,
        help="capture slow-query exemplars to a bounded JSONL ring at "
        "PATH (threshold p99-derived unless --slow-threshold-ms)",
    )
    query.add_argument(
        "--slow-threshold-ms", type=float, default=None, metavar="MS",
        help="fixed slow-query threshold in milliseconds (enables "
        "capture even without --slow-log; exemplars then ride the "
        "trace only)",
    )

    add = commands.add_parser(
        "add", help="add documents to a saved index incrementally"
    )
    add.add_argument("index_dir", metavar="DIR")
    add.add_argument(
        "--xml", nargs="+", required=True, metavar="FILE",
        help="XML files to store and index",
    )

    remove = commands.add_parser(
        "remove", help="remove documents from a saved index"
    )
    remove.add_argument("index_dir", metavar="DIR")
    remove.add_argument(
        "doc_ids", nargs="+", type=int, metavar="DOC_ID",
        help="document ids to remove (see 'repro query' output)",
    )

    stats = commands.add_parser("stats", help="summarize a saved index")
    stats.add_argument("index_dir", metavar="DIR")

    trace = commands.add_parser(
        "trace", help="aggregate a JSONL trace into a breakdown"
    )
    trace.add_argument("trace_file", metavar="TRACE")
    trace.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="slowest queries to list (default 10)",
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON"
    )
    trace.add_argument(
        "--slow", action="store_true",
        help="list captured slow-query exemplars instead of the "
        "aggregate breakdown (reads trace files and slow-log rings)",
    )
    trace.add_argument(
        "--strict", action="store_true",
        help="fail on malformed trace lines instead of skipping them",
    )

    metrics = commands.add_parser(
        "metrics", help="render metrics as Prometheus text or JSON"
    )
    metrics.add_argument(
        "source", metavar="SOURCE",
        help="a JSONL trace file, or a saved index directory",
    )
    metrics.add_argument(
        "--format", dest="format", choices=["prometheus", "json"],
        default="prometheus", help="exposition format (default prometheus)",
    )

    top = commands.add_parser(
        "top", help="live terminal dashboard over a JSONL trace file"
    )
    top.add_argument("trace_file", metavar="TRACE")
    top.add_argument(
        "--once", action="store_true",
        help="render one plain frame and exit (CI / saved traces; "
        "'now' is the newest event timestamp in the file)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds (default 1.0)",
    )
    top.add_argument(
        "--window", type=float, default=60.0, metavar="S",
        help="rolling-statistics window in seconds (default 60)",
    )

    verify = commands.add_parser("verify", help="consistency-check a saved index")
    verify.add_argument("index_dir", metavar="DIR")
    verify.add_argument(
        "--fast", action="store_true",
        help="skip feature-key recomputation (structural checks only)",
    )

    commands.add_parser("datasets", help="list built-in data sets")

    bench = commands.add_parser("bench", help="regenerate a paper exhibit")
    bench.add_argument(
        "exhibit",
        choices=["table1", "table2", "figure5", "figure6", "figure7",
                 "ablation-features", "ablation-beta"],
    )
    bench.add_argument("--scale", type=float, default=0.3)
    bench.add_argument("--seed", type=int, default=42)
    return parser


# --------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------- #


def _cmd_build(args: argparse.Namespace) -> int:
    store = PrimaryXMLStore()
    depth_limit = args.depth_limit
    if args.dataset:
        from repro.datasets import load_dataset

        bundle = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        for document in bundle.documents:
            store.add_document(document)
        if depth_limit is None:
            depth_limit = bundle.depth_limit
        print(f"generated {bundle.description}")
    else:
        for path in args.xml:
            store.add_document(parse_xml_file(path))
            print(f"loaded {path}")
        if depth_limit is None:
            depth_limit = 0
    from repro.obs import ObsConfig

    overrides = {}
    if args.page_cache_pages is not None:
        overrides["page_cache_pages"] = args.page_cache_pages
    config = FixIndexConfig(
        depth_limit=depth_limit,
        clustered=args.clustered,
        value_buckets=args.beta,
        workers=args.workers,
        feature_cache=not args.no_cache,
        prune_backend=args.prune_backend,
        eigen_solver=args.eigen_solver,
        shards=args.shards,
        shard_affinity=args.shard_affinity,
        shard_workers=args.shard_workers,
        spill_dir=args.spill_dir,
        obs=ObsConfig(trace=bool(args.trace), trace_path=args.trace),
        **overrides,
    )
    started = time.perf_counter()
    if args.shards > 1:
        index = ShardedFixIndex.build(store, config)
        seconds = time.perf_counter() - started
        index.save(args.out)
        print(
            f"built {index!r} in {seconds:.2f}s -> {args.out} "
            f"({index.size_bytes() / 1e6:.2f} MB B-trees)"
        )
        entries = " ".join(
            f"shard{shard_id}={shard.entry_count}"
            for shard_id, shard in enumerate(index.shards)
        )
        print(f"  entries: {entries}")
        pager = index.pager_stats()
        print(
            f"  pager: {pager.logical_reads} reads, "
            f"{pager.hit_rate:.1%} cache hit rate, "
            f"{pager.evictions} evictions"
        )
    else:
        index = FixIndex.build(store, config)
        seconds = time.perf_counter() - started
        store.save(os.path.join(args.out, "store"))
        save_index(index, args.out)
        print(
            f"built {index!r} in {seconds:.2f}s -> {args.out} "
            f"({index.size_bytes() / 1e6:.2f} MB B-tree)"
        )
        stats = index.report.stats
        phases = " ".join(
            f"{phase}={seconds:.2f}s"
            for phase, seconds in index.report.timings.as_dict().items()
        )
        print(f"  phases: {phases}")
        print(
            f"  eigen: {stats.eigen_computations} solved "
            f"(solver={index.report.eigen_solver}), "
            f"{stats.cache_hits} cache hits, "
            f"{stats.oversized_patterns} oversized"
        )
        if stats.eigen_batches:
            sizes = sorted(stats.eigen_batch_sizes.items())
            histogram = " ".join(f"{size}x{count}" for size, count in sizes)
            print(
                f"  eigen batches: {stats.eigen_batches} stacked solves "
                f"(size x calls: {histogram})"
            )
    if args.trace:
        written = index.obs.flush(args.trace)
        print(f"  trace: {written} event(s) -> {args.trace}")
    return 0


def _open(
    index_dir: str,
    page_cache_pages: int | None = None,
    shard_workers: int | None = None,
):
    """Reattach to a saved index — sharded (``sharded.json`` manifest)
    or single — returning ``(store, index)``."""
    if ShardedFixIndex.is_sharded(index_dir):
        index = ShardedFixIndex.load(
            index_dir,
            page_cache_pages=page_cache_pages,
            shard_workers=shard_workers,
        )
        return index.store, index
    store = PrimaryXMLStore.load(os.path.join(index_dir, "store"))
    return store, load_index(
        index_dir, store, page_cache_pages=page_cache_pages
    )


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core import QueryMetricsLog
    from repro.obs import Obs

    store, index = _open(
        args.index_dir, args.page_cache_pages, args.shard_workers
    )
    obs = Obs(trace=bool(args.trace))
    log = QueryMetricsLog(registry=obs.registry)
    slow_log = None
    if args.slow_log or args.slow_threshold_ms is not None:
        from repro.obs import SlowQueryLog

        slow_log = SlowQueryLog(
            path=args.slow_log,
            threshold=(
                args.slow_threshold_ms / 1000.0
                if args.slow_threshold_ms is not None
                else None
            ),
        )
    processor = FixQueryProcessor(
        index,
        workers=args.workers,
        plan_cache=not args.no_plan_cache,
        prune_backend=args.prune_backend,
        pushdown=args.pushdown,
        metrics_log=log,
        slow_log=slow_log,
        obs=obs,
    )
    twig = twig_of(args.expression)
    for _ in range(max(1, args.repeat)):
        result = processor.query(twig)
    cached = " (plan cached)" if result.plan_cached else ""
    print(
        f"candidates={result.candidate_count} results={result.result_count} "
        f"plan={result.plan_seconds * 1000:.2f}ms{cached} "
        f"prune={result.prune_seconds * 1000:.2f}ms "
        f"refine={result.refine_seconds * 1000:.2f}ms "
        f"[backend={result.backend} workers={result.workers} "
        f"docs_fetched={result.documents_fetched}"
        f"{' pushdown' if result.pushdown else ''}]"
    )
    if args.repeat > 1:
        summary = log.summary()
        print(
            f"  over {summary['queries']} runs: "
            f"plan={summary['plan_seconds'] * 1000:.2f}ms "
            f"prune={summary['prune_seconds'] * 1000:.2f}ms "
            f"refine={summary['refine_seconds'] * 1000:.2f}ms "
            f"plan_cache_hit_rate={summary['plan_cache_hit_rate']:.0%}"
        )
    for pointer in result.results[: args.limit]:
        element = store.resolve(pointer)
        print(f"  doc {pointer.doc_id} node {pointer.node_id} <{element.tag}>")
    if result.result_count > args.limit:
        print(f"  ... and {result.result_count - args.limit} more")
    if args.metrics:
        metrics = evaluate_pruning(index, twig, processor=processor)
        print(
            f"sel={metrics.sel:.2%} pp={metrics.pp:.2%} fpr={metrics.fpr:.2%} "
            f"false_negatives={metrics.false_negatives}"
        )
    if slow_log is not None:
        where = f" -> {slow_log.path}" if slow_log.path else ""
        print(
            f"slow log: {slow_log.captured}/{slow_log.considered} "
            f"captured{where}"
        )
    if args.trace:
        written = obs.flush(args.trace, append=True)
        print(f"trace: appended {written} event(s) -> {args.trace}")
    return 0


def _save_mutated(index, store, index_dir: str) -> None:
    """Persist an index mutated in place by ``add``/``remove``."""
    if isinstance(index, ShardedFixIndex):
        index.save(index_dir)
    else:
        store.save(os.path.join(index_dir, "store"))
        save_index(index, index_dir)


def _cmd_add(args: argparse.Namespace) -> int:
    store, index = _open(args.index_dir)
    for path in args.xml:
        started = time.perf_counter()
        doc_id = index.add_document(parse_xml_file(path))
        seconds = time.perf_counter() - started
        print(
            f"added {path} as doc {doc_id} in {seconds * 1000:.1f}ms "
            f"(epoch {index.generation})"
        )
    _save_mutated(index, store, args.index_dir)
    print(f"saved -> {args.index_dir} ({index.entry_count} entries)")
    return 0


def _cmd_remove(args: argparse.Namespace) -> int:
    store, index = _open(args.index_dir)
    for doc_id in args.doc_ids:
        started = time.perf_counter()
        removed = index.remove_document(doc_id)
        seconds = time.perf_counter() - started
        print(
            f"removed doc {doc_id} ({removed} entries) in "
            f"{seconds * 1000:.1f}ms (epoch {index.generation})"
        )
    _save_mutated(index, store, args.index_dir)
    print(f"saved -> {args.index_dir} ({index.entry_count} entries)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    _, index = _open(args.index_dir)
    config = index.config
    sharded = isinstance(index, ShardedFixIndex)
    print(f"{index!r}")
    print(f"  entries:        {index.entry_count}")
    if sharded:
        heights = "/".join(
            str(shard.btree.height()) for shard in index.shards
        )
        print(f"  shards:         {index.shard_count} "
              f"(affinity {config.shard_affinity}, "
              f"{config.shard_workers} worker(s))")
        print(f"  B-trees:        {index.size_bytes() / 1e6:.2f} MB, "
              f"heights {heights}")
        for shard_id, shard in enumerate(index.shards):
            print(f"    shard {shard_id}: {shard.entry_count} entries, "
                  f"{shard.store.document_count} documents")
        balance = index.balance()
        skew = balance["skew"]
        skew_text = "inf" if skew == float("inf") else f"{skew:.2f}"
        print(f"  balance:        skew {skew_text} "
              f"(max/min shard entries)")
        if balance["empty_shards"] and any(balance["entries"]):
            empty = ", ".join(str(s) for s in balance["empty_shards"])
            if config.shard_affinity == "root-label":
                why = ("root-label affinity cannot fill more shards than "
                       "the corpus has distinct root labels; consider "
                       "fewer shards or 'hash' affinity")
            else:
                why = "consider fewer shards"
            print(f"  warning: shard(s) {empty} hold no entries — {why}")
    else:
        print(f"  B-tree:         {index.size_bytes() / 1e6:.2f} MB, "
              f"height {index.btree.height()}")
    if index.clustered_store is not None:
        print(f"  clustered copy: {index.clustered_store.size_bytes() / 1e6:.2f} MB, "
              f"{index.clustered_store.unit_count} units")
    print(f"  depth limit:    {config.depth_limit}")
    print(f"  value buckets:  {config.value_buckets}")
    print(f"  edge labels:    {len(index.encoder)}")
    pager = index.pager_stats()
    print(
        f"  buffer pool:    {config.page_cache_pages} pages per pager, "
        f"{pager.hit_rate:.1%} hit rate "
        f"({pager.cache_hits}/{pager.logical_reads} reads), "
        f"{pager.evictions} evictions this process"
    )
    if sharded:
        hits = sum(s.report.stats.cache_hits for s in index.shards)
        misses = sum(s.report.stats.cache_misses for s in index.shards)
        lookups = hits + misses
        print(
            f"  spectral cache: {hits}/{lookups} hits "
            f"({hits / lookups if lookups else 0.0:.1%})"
        )
    else:
        cache = index.report.cache_summary()
        lookups = cache["hits"] + cache["misses"]
        print(
            f"  spectral cache: {cache['patterns']} patterns, "
            f"{cache['hits']}/{lookups} hits ({cache['hit_rate']:.1%})"
        )
    index.epochs.publish(index.obs.registry)
    snapshot = index.obs.registry.snapshot()
    counters = snapshot["counters"]
    plan_hits = counters.get("query.plan_cache.hits", 0.0)
    plan_lookups = plan_hits + counters.get("query.plan_cache.misses", 0.0)
    print(
        f"  plan cache:     {plan_hits:.0f}/{plan_lookups:.0f} hits "
        f"({plan_hits / plan_lookups if plan_lookups else 0.0:.1%} "
        "this process)"
    )
    print(
        f"  epochs:         current {snapshot['gauges'].get('epoch.current', 0):.0f}, "
        f"{counters.get('epoch.pins', 0):.0f} pins, "
        f"{counters.get('epoch.mutations', 0):.0f} mutations, "
        f"invalidations {counters.get('epoch.invalidations.scoped', 0):.0f} "
        f"scoped / {counters.get('epoch.invalidations.full', 0):.0f} full"
    )
    registry = index.obs.registry
    for name in registry.sketch_names():
        sketch = registry.sketch(name)
        if not sketch.count:
            continue
        p50, p99 = sketch.quantiles((0.5, 0.99))
        print(
            f"  {name:14s}: p50 {p50 * 1e3:.2f}ms  p99 {p99 * 1e3:.2f}ms "
            f"(n={sketch.count}, ±{sketch.rank_error_bound():.3f} rank)"
        )
    labels: dict[str, int] = {}
    for entry in index.iter_entries():
        labels[entry.key.root_label] = labels.get(entry.key.root_label, 0) + 1
    top = sorted(labels.items(), key=lambda kv: -kv[1])[:10]
    print("  top root labels:")
    for label, count in top:
        print(f"    {label:24s} {count}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        format_slow_queries,
        format_trace_report,
        summarize_trace_file,
    )

    try:
        summary = summarize_trace_file(args.trace_file, strict=args.strict)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.slow:
        if args.json:
            print(json.dumps(summary.slow_queries, indent=2, sort_keys=True))
        else:
            print(format_slow_queries(summary, top=args.top))
    elif args.json:
        print(json.dumps(summary.as_dict(args.top), indent=2, sort_keys=True))
    else:
        print(format_trace_report(summary, top=args.top))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.expo import (
        render_json,
        render_prometheus,
        snapshot_from_trace,
    )

    if os.path.isdir(args.source):
        # A saved index: open it, take one resource sample so the
        # process/pager/epoch gauges are fresh, and render its registry.
        from repro.obs import ResourceSampler

        _, index = _open(args.source)
        ResourceSampler(index.obs.registry, index=index).sample_once()
        snapshot = index.obs.registry.snapshot()
    else:
        try:
            snapshot = snapshot_from_trace(args.source)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    text = (
        render_prometheus(snapshot)
        if args.format == "prometheus"
        else render_json(snapshot) + "\n"
    )
    sys.stdout.write(text)
    sys.stdout.flush()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    if not os.path.exists(args.trace_file):
        print(f"error: no such trace file: {args.trace_file}", file=sys.stderr)
        return 1
    return run_top(
        args.trace_file,
        once=args.once,
        interval=args.interval,
        window_seconds=args.window,
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.verify import verify_index

    _, index = _open(args.index_dir)
    if isinstance(index, ShardedFixIndex):
        ok = True
        for shard_id, shard in enumerate(index.shards):
            report = verify_index(shard, recompute_keys=not args.fast)
            print(f"shard {shard_id}: {report.summary()}")
            for problem in report.problems:
                print(f"  {problem}")
            ok = ok and report.ok
        return 0 if ok else 1
    report = verify_index(index, recompute_keys=not args.fast)
    print(report.summary())
    for problem in report.problems:
        print(f"  {problem}")
    return 0 if report.ok else 1


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.datasets import dataset_names, load_dataset

    for name in dataset_names():
        bundle = load_dataset(name, scale=0.05)
        print(f"{name:9s} L={bundle.depth_limit}  {bundle.description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        run_beta_sweep,
        run_feature_ablation,
        run_figure5,
        run_figure6,
        run_figure7,
        run_table1,
        run_table2,
    )
    from repro.bench.ablation import print_beta_sweep, print_feature_ablation
    from repro.bench.figure5 import print_figure5
    from repro.bench.figure6 import print_figure6
    from repro.bench.figure7 import print_figure7
    from repro.bench.table1 import print_table1
    from repro.bench.table2 import print_table2

    scale, seed = args.scale, args.seed
    if args.exhibit == "table1":
        print_table1(run_table1(scale=scale, seed=seed))
    elif args.exhibit == "table2":
        print_table2(run_table2(scale=scale, seed=seed))
    elif args.exhibit == "figure5":
        print_figure5(run_figure5(scale=scale, seed=seed, queries=60))
    elif args.exhibit == "figure6":
        print_figure6(run_figure6(scale=scale, seed=seed))
    elif args.exhibit == "figure7":
        print_figure7(run_figure7(scale=scale, seed=seed))
    elif args.exhibit == "ablation-features":
        print_feature_ablation(run_feature_ablation(scale=scale, seed=seed))
    elif args.exhibit == "ablation-beta":
        print_beta_sweep(run_beta_sweep(scale=scale, seed=seed))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "query": _cmd_query,
        "add": _cmd_add,
        "remove": _cmd_remove,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "top": _cmd_top,
        "verify": _cmd_verify,
        "datasets": _cmd_datasets,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # A downstream reader hanging up (`repro trace | head`) is a
        # normal end, not an error; detach stdout so the interpreter's
        # shutdown flush doesn't trip over the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

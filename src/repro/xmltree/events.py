"""SAX-style event streams.

Algorithm 1 of the paper (CONSTRUCT-ENTRIES) is specified over an *event
stream* ``X``: a sequence of open and close events, each open event
carrying the element label and a pointer into primary storage
(``x.start_ptr``).  We model that contract directly:

* :class:`OpenEvent` — start of an element; carries ``label`` and
  ``start_ptr`` (the element's preorder id, which is what our primary
  store uses as a pointer).
* :class:`TextEvent` — character data; carries the string value and the
  text node's pointer.  The value-extension of Section 4.6 turns these
  into synthetic open/close pairs with hashed labels; the pure structural
  index ignores them.
* :class:`CloseEvent` — end of an element.

Any iterable of events is a valid stream.  :func:`tree_events` adapts an
in-memory tree; the XML parser and the bisimulation traveler produce the
same event types.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Union

from repro.xmltree.model import Element, Text


class OpenEvent:
    """Start of an element with tag ``label`` at storage pointer ``start_ptr``."""

    __slots__ = ("label", "start_ptr")

    def __init__(self, label: str, start_ptr: int = -1) -> None:
        self.label = label
        self.start_ptr = start_ptr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Open({self.label!r}@{self.start_ptr})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OpenEvent)
            and other.label == self.label
            and other.start_ptr == self.start_ptr
        )

    def __hash__(self) -> int:
        return hash((OpenEvent, self.label, self.start_ptr))


class CloseEvent:
    """End of the most recently opened element with tag ``label``."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Close({self.label!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CloseEvent) and other.label == self.label

    def __hash__(self) -> int:
        return hash((CloseEvent, self.label))


class TextEvent:
    """Character data ``value`` belonging to the currently open element."""

    __slots__ = ("value", "start_ptr")

    def __init__(self, value: str, start_ptr: int = -1) -> None:
        self.value = value
        self.start_ptr = start_ptr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.value if len(self.value) <= 24 else self.value[:21] + "..."
        return f"Text({shown!r}@{self.start_ptr})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TextEvent)
            and other.value == self.value
            and other.start_ptr == self.start_ptr
        )

    def __hash__(self) -> int:
        return hash((TextEvent, self.value, self.start_ptr))


Event = Union[OpenEvent, CloseEvent, TextEvent]


def tree_events(root: Element, include_text: bool = True) -> Iterator[Event]:
    """Walk the subtree rooted at ``root`` and yield its event stream.

    Events appear in document order: ``OpenEvent`` on entering an element,
    ``TextEvent`` for each text child in place, ``CloseEvent`` on leaving.
    ``start_ptr`` of each event is the node's preorder id, so a consumer
    can map events back into the primary store.

    Args:
        root: subtree root.
        include_text: when ``False`` text nodes are skipped (the pure
            structural index does not care about them).
    """
    # Explicit stack; ``None`` sentinel marks a pending close.
    stack: list[Element | None] = [root]
    open_labels: list[str] = []
    while stack:
        node = stack.pop()
        if node is None:
            yield CloseEvent(open_labels.pop())
            continue
        yield OpenEvent(node.tag, node.node_id)
        open_labels.append(node.tag)
        stack.append(None)
        for child in reversed(node.children):
            if isinstance(child, Element):
                stack.append(child)
        if include_text:
            # Text events are emitted immediately after the open event, in
            # document order relative to each other.  (Exact interleaving
            # with element children does not matter to any consumer in
            # this package: the bisimulation builder treats text children
            # as an unordered set just like element children.)
            for child in node.children:
                if isinstance(child, Text):
                    yield TextEvent(child.value, child.node_id)


def validate_events(events: Iterator[Event]) -> Iterator[Event]:
    """Pass events through, checking well-formedness.

    Raises :class:`repro.errors.BisimulationError` on a close event whose
    label does not match the innermost open element, on a close with no
    open element, or on a stream that ends with unclosed elements.
    Useful when consuming untrusted streams.
    """
    from repro.errors import BisimulationError

    depth_stack: list[str] = []
    for event in events:
        if isinstance(event, OpenEvent):
            depth_stack.append(event.label)
        elif isinstance(event, CloseEvent):
            if not depth_stack:
                raise BisimulationError(
                    f"close event {event.label!r} with no open element"
                )
            expected = depth_stack.pop()
            if expected != event.label:
                raise BisimulationError(
                    f"close event {event.label!r} does not match open "
                    f"element {expected!r}"
                )
        elif isinstance(event, TextEvent):
            if not depth_stack:
                raise BisimulationError("text event outside any element")
        yield event
    if depth_stack:
        raise BisimulationError(
            f"event stream ended with {len(depth_stack)} unclosed element(s)"
        )

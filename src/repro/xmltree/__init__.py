"""In-memory XML data model, parser, and SAX-style event streams.

This subpackage is the substrate that the rest of the reproduction is built
on.  The paper's index-construction algorithm (Algorithm 1) is a single-pass
algorithm over an *event stream* — a sequence of open/text/close events like
the ones a SAX parser emits — so the event abstraction
(:mod:`repro.xmltree.events`) is first-class here: trees, files, and the
bisimulation-graph "traveler" of Section 4.4 all produce the same stream
type and are interchangeable as inputs to the bisimulation builder.

Public surface:

* :class:`~repro.xmltree.model.Element`, :class:`~repro.xmltree.model.Text`,
  :class:`~repro.xmltree.model.Document` — the node types.
* :func:`~repro.xmltree.parser.parse_xml` / ``parse_xml_file`` — a
  dependency-free XML parser (elements, attributes, text, CDATA, comments,
  processing instructions, the five predefined entities, and numeric
  character references).
* :func:`~repro.xmltree.serialize.serialize` — the inverse of the parser.
* :func:`~repro.xmltree.events.tree_events` — walk a tree as events.
* :class:`~repro.xmltree.builder.TreeBuilder` — assemble a tree from events.
"""

from repro.xmltree.builder import TreeBuilder, tree_from_events
from repro.xmltree.events import (
    CloseEvent,
    Event,
    OpenEvent,
    TextEvent,
    tree_events,
)
from repro.xmltree.model import Document, Element, Node, Text
from repro.xmltree.parser import parse_xml, parse_xml_events, parse_xml_file
from repro.xmltree.serialize import serialize, serialize_fragment

__all__ = [
    "CloseEvent",
    "Document",
    "Element",
    "Event",
    "Node",
    "OpenEvent",
    "Text",
    "TextEvent",
    "TreeBuilder",
    "parse_xml",
    "parse_xml_events",
    "parse_xml_file",
    "serialize",
    "serialize_fragment",
    "tree_events",
    "tree_from_events",
]

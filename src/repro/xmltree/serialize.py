"""Serialize the in-memory model back to XML text.

``parse_xml(serialize(doc))`` reproduces ``doc`` structurally (tags,
attributes, stripped text) — this round-trip is property-tested.  The
serializer is also what the primary storage engine uses to persist
documents and subtrees as byte records.
"""

from __future__ import annotations

from repro.xmltree.model import Document, Element, Node, Text

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, escaped in _ATTR_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def serialize_fragment(root: Element, indent: int | None = None) -> str:
    """Serialize the subtree rooted at ``root`` (no XML declaration).

    Args:
        root: subtree root element.
        indent: when given, pretty-print with this many spaces per level;
            when ``None`` (default) produce compact output with no
            inter-element whitespace, which round-trips exactly because
            the parser strips whitespace-only text.
    """
    parts: list[str] = []
    _write(root, parts, 0, indent)
    return "".join(parts)


def serialize(document: Document, indent: int | None = None) -> str:
    """Serialize a whole document, prefixed with an XML declaration."""
    body = serialize_fragment(document.root, indent=indent)
    newline = "\n" if indent is not None else ""
    return f'<?xml version="1.0" encoding="UTF-8"?>{newline}{body}'


def _write(node: Node, parts: list[str], level: int, indent: int | None) -> None:
    pad = " " * (indent * level) if indent is not None else ""
    newline = "\n" if indent is not None else ""
    if isinstance(node, Text):
        parts.append(f"{pad}{escape_text(node.value)}{newline}")
        return
    assert isinstance(node, Element)
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _write(child, parts, level + 1, indent)
    parts.append(f"{pad}</{node.tag}>{newline}")

"""A dependency-free, event-producing XML parser.

Covers the subset of XML needed by the reproduction (and by the paper's
data sets): elements, attributes, character data, CDATA sections,
comments, processing instructions, an optional XML declaration and
DOCTYPE (both skipped), the five predefined entities, and decimal /
hexadecimal character references.  Namespaces are treated lexically
(prefixed names are kept verbatim as tags), matching how the paper
treats labels.

The parser is written as a generator of events
(:func:`parse_xml_events`), mirroring a SAX push parser; the tree API
(:func:`parse_xml`) is a thin :class:`~repro.xmltree.builder.TreeBuilder`
on top.  Whitespace-only text between elements is dropped — the paper's
data model has no use for indentation text nodes, and keeping them would
distort element/text statistics.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

from repro.errors import XMLSyntaxError
from repro.xmltree.builder import tree_from_events
from repro.xmltree.events import CloseEvent, Event, OpenEvent, TextEvent
from repro.xmltree.model import Document

# XML names: the practical superset — ASCII name chars plus everything
# above U+0080 (the spec's NameStartChar ranges are almost exactly that).
_NAME_RE = re.compile(r"[A-Za-z_:\u0080-\U0010FFFF][-A-Za-z0-9._:\u0080-\U0010FFFF]*")
_ATTR_RE = re.compile(
    r"""\s+([A-Za-z_:\u0080-\U0010FFFF][-A-Za-z0-9._:\u0080-\U0010FFFF]*)"""
    r"""\s*=\s*("([^"]*)"|'([^']*)')"""
)
_ENTITY_RE = re.compile(r"&(#x[0-9a-fA-F]+|#[0-9]+|[A-Za-z]+);")

_PREDEFINED = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def _expand_entities(text: str, base_pos: int) -> str:
    """Expand predefined and numeric character references in ``text``."""

    def repl(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _PREDEFINED[body]
        except KeyError:
            raise XMLSyntaxError(
                f"unknown entity &{body};", base_pos + match.start()
            ) from None

    if "&" not in text:
        return text
    return _ENTITY_RE.sub(repl, text)


def parse_xml_events(source: str) -> Iterator[Event]:
    """Tokenize ``source`` and yield open/text/close events.

    ``start_ptr`` on the emitted events is a running preorder counter
    assigned in document order (elements and text nodes share the
    sequence), so it agrees with the ids :meth:`Document.renumber` would
    assign to the resulting tree.

    Raises:
        XMLSyntaxError: on malformed input.
    """
    pos = 0
    length = len(source)
    counter = 0
    stack: list[str] = []
    seen_root = False

    while pos < length:
        lt = source.find("<", pos)
        if lt == -1:
            trailing = source[pos:]
            if trailing.strip():
                raise XMLSyntaxError("character data after document end", pos)
            break
        # Character data before the next markup.
        if lt > pos:
            raw = source[pos:lt]
            if raw.strip():
                if not stack:
                    raise XMLSyntaxError("character data outside root element", pos)
                yield TextEvent(_expand_entities(raw.strip(), pos), counter)
                counter += 1
        pos = lt
        if source.startswith("<!--", pos):
            end = source.find("-->", pos + 4)
            if end == -1:
                raise XMLSyntaxError("unterminated comment", pos)
            pos = end + 3
            continue
        if source.startswith("<![CDATA[", pos):
            end = source.find("]]>", pos + 9)
            if end == -1:
                raise XMLSyntaxError("unterminated CDATA section", pos)
            if not stack:
                raise XMLSyntaxError("CDATA outside root element", pos)
            value = source[pos + 9 : end]
            if value.strip():
                yield TextEvent(value.strip(), counter)
                counter += 1
            pos = end + 3
            continue
        if source.startswith("<!DOCTYPE", pos):
            pos = _skip_doctype(source, pos)
            continue
        if source.startswith("<?", pos):
            end = source.find("?>", pos + 2)
            if end == -1:
                raise XMLSyntaxError("unterminated processing instruction", pos)
            pos = end + 2
            continue
        if source.startswith("</", pos):
            match = _NAME_RE.match(source, pos + 2)
            if match is None:
                raise XMLSyntaxError("malformed end tag", pos)
            name = match.group(0)
            close = source.find(">", match.end())
            if close == -1:
                raise XMLSyntaxError("unterminated end tag", pos)
            if source[match.end() : close].strip():
                raise XMLSyntaxError("junk in end tag", match.end())
            if not stack:
                raise XMLSyntaxError(f"end tag </{name}> with no open element", pos)
            expected = stack.pop()
            if expected != name:
                raise XMLSyntaxError(
                    f"end tag </{name}> does not match <{expected}>", pos
                )
            yield CloseEvent(name)
            pos = close + 1
            continue
        # Start tag (possibly self-closing).
        match = _NAME_RE.match(source, pos + 1)
        if match is None:
            raise XMLSyntaxError("malformed start tag", pos)
        name = match.group(0)
        if seen_root and not stack:
            raise XMLSyntaxError("multiple root elements", pos)
        scan = match.end()
        attributes: dict[str, str] = {}
        while True:
            attr = _ATTR_RE.match(source, scan)
            if attr is None:
                break
            value = attr.group(3) if attr.group(3) is not None else attr.group(4)
            attributes[attr.group(1)] = _expand_entities(value, scan)
            scan = attr.end()
        tail = source.find(">", scan)
        if tail == -1:
            raise XMLSyntaxError("unterminated start tag", pos)
        between = source[scan:tail].strip()
        self_closing = between == "/" or source[tail - 1] == "/"
        if between not in ("", "/"):
            raise XMLSyntaxError(f"junk in start tag <{name}>", scan)
        event = OpenEvent(name, counter)
        event_attrs = attributes  # attached below via builder protocol
        counter += 1
        seen_root = True
        yield _with_attributes(event, event_attrs)
        if self_closing:
            yield CloseEvent(name)
        else:
            stack.append(name)
        pos = tail + 1

    if stack:
        raise XMLSyntaxError(
            f"document ended with {len(stack)} unclosed element(s): "
            f"<{stack[-1]}> still open",
            length,
        )
    if not seen_root:
        raise XMLSyntaxError("no root element found", 0)


class OpenEventWithAttributes(OpenEvent):
    """An :class:`OpenEvent` that also carries parsed attributes.

    Consumers that do not care about attributes (everything except the
    tree builder) treat this exactly like a plain ``OpenEvent``.
    """

    __slots__ = ("attributes",)

    def __init__(self, label: str, start_ptr: int, attributes: dict[str, str]) -> None:
        super().__init__(label, start_ptr)
        self.attributes = attributes


def _with_attributes(event: OpenEvent, attributes: dict[str, str]) -> OpenEvent:
    if not attributes:
        return event
    return OpenEventWithAttributes(event.label, event.start_ptr, attributes)


def _skip_doctype(source: str, pos: int) -> int:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    i = pos
    while i < len(source):
        ch = source[i]
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return i + 1
        i += 1
    raise XMLSyntaxError("unterminated DOCTYPE", pos)


def parse_xml(source: str, doc_id: int = 0) -> Document:
    """Parse an XML string into a :class:`Document`."""
    return tree_from_events(parse_xml_events(source), doc_id=doc_id)


def parse_xml_file(path: str, doc_id: int = 0, encoding: str = "utf-8") -> Document:
    """Parse the XML file at ``path`` into a :class:`Document`."""
    with open(path, encoding=encoding) as handle:
        return parse_xml(handle.read(), doc_id=doc_id)

"""XML tree node types.

The model is deliberately small: elements, text nodes, and a document
wrapper.  Two design points matter for the rest of the system:

* Every node carries a **preorder identifier** (``node_id``), assigned by
  :meth:`Document.renumber`.  Preorder ids double as *storage pointers*
  into the primary store (the ``start_ptr`` of the paper's Algorithm 1) and
  as region-encoding ``start`` values for the structural-join baseline.
* Elements also carry the matching ``end`` preorder bound and their
  ``level`` (depth below the document node), which together form the
  classic ``(start, end, level)`` region encoding used by structural joins
  and by ancestor/descendant tests.

Attributes are parsed and preserved for round-tripping but are *not* part
of the structural model that FIX indexes (the paper indexes element and,
optionally, text nodes only).
"""

from __future__ import annotations

from collections.abc import Iterator


class Node:
    """Common base for :class:`Element` and :class:`Text`."""

    __slots__ = ("parent", "node_id")

    def __init__(self) -> None:
        self.parent: Element | None = None
        self.node_id: int = -1

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the parent upward to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class Text(Node):
    """A text node.  ``value`` is the (whitespace-stripped) character data."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.value if len(self.value) <= 24 else self.value[:21] + "..."
        return f"Text({shown!r})"


class Element(Node):
    """An element node with a tag, optional attributes, and children.

    Children are ordered and may be a mix of :class:`Element` and
    :class:`Text` nodes.  ``end`` and ``level`` are filled in by
    :meth:`Document.renumber`.
    """

    __slots__ = ("tag", "attributes", "children", "end", "level")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = attributes or {}
        self.children: list[Node] = []
        self.end: int = -1
        self.level: int = -1

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def add_element(self, tag: str, attributes: dict[str, str] | None = None) -> "Element":
        """Create, attach, and return a new child element."""
        child = Element(tag, attributes)
        self.append(child)
        return child

    def add_text(self, value: str) -> Text:
        """Create, attach, and return a new text child."""
        child = Text(value)
        self.append(child)
        return child

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def child_elements(self) -> Iterator["Element"]:
        """Yield element children only, in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def text_children(self) -> Iterator[Text]:
        """Yield text children only, in document order."""
        for child in self.children:
            if isinstance(child, Text):
                yield child

    def text(self) -> str:
        """Concatenated text of the *direct* text children."""
        return "".join(t.value for t in self.text_children())

    def iter(self) -> Iterator["Element"]:
        """Preorder traversal of this element and all descendant elements."""
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            yield node
            # Push children reversed so the leftmost child is visited first.
            stack.extend(reversed(list(node.child_elements())))

    def descendants(self) -> Iterator["Element"]:
        """Preorder traversal of descendant elements, excluding ``self``."""
        it = self.iter()
        next(it)  # drop self
        yield from it

    def find_all(self, tag: str) -> Iterator["Element"]:
        """Yield ``self`` and descendants whose tag equals ``tag``."""
        for node in self.iter():
            if node.tag == tag:
                yield node

    def contains(self, other: "Element") -> bool:
        """Region-encoding ancestor-or-self test.

        Requires :meth:`Document.renumber` to have been run.
        """
        return self.node_id <= other.node_id and other.node_id <= self.end

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #

    def depth(self) -> int:
        """Height of the subtree rooted here, counting this node as 1.

        A leaf element has depth 1.  This is the quantity the paper's
        depth-limit parameter ``L`` is compared against.
        """
        best = 1
        stack: list[tuple[Element, int]] = [(self, 1)]
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            for child in node.child_elements():
                stack.append((child, d + 1))
        return best

    def size(self) -> int:
        """Number of element nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


class Document:
    """A parsed XML document: a root element plus id bookkeeping.

    The *document node* of the XPath data model (the invisible parent of
    the root element) is represented by the Document object itself; twig
    queries whose first axis is ``/`` or ``//`` are anchored at it.
    """

    __slots__ = ("root", "doc_id", "_count", "_max_depth", "_by_id")

    def __init__(self, root: Element, doc_id: int = 0) -> None:
        self.root = root
        self.doc_id = doc_id
        self._count = -1
        self._max_depth = -1
        self._by_id: list[Element] | None = None
        self.renumber()

    # ------------------------------------------------------------------ #
    # Numbering
    # ------------------------------------------------------------------ #

    def renumber(self) -> None:
        """(Re)assign preorder ids, region bounds, and levels.

        Element ids are consecutive preorder integers starting at 0 for the
        root.  Text nodes receive ids in the same sequence (they occupy
        preorder slots) so that a text node can also be addressed by a
        storage pointer.  ``end`` of an element is the largest id in its
        subtree.
        """
        counter = 0
        max_depth = 0
        by_id: list[Element] = []
        # Iterative preorder with explicit post-visit actions to set `end`.
        stack: list[tuple[Node, int, bool]] = [(self.root, 1, False)]
        while stack:
            node, level, done = stack.pop()
            if done:
                assert isinstance(node, Element)
                # All descendants have been numbered; counter-1 is the last.
                node.end = counter - 1
                continue
            node.node_id = counter
            counter += 1
            if isinstance(node, Element):
                node.level = level
                by_id.append(node)
                if level > max_depth:
                    max_depth = level
                stack.append((node, level, True))
                for child in reversed(node.children):
                    stack.append((child, level + 1, False))
        self._count = counter
        self._max_depth = max_depth
        self._by_id = by_id

    # ------------------------------------------------------------------ #
    # Lookups and measurements
    # ------------------------------------------------------------------ #

    def element_count(self) -> int:
        """Number of element nodes in the document."""
        assert self._by_id is not None
        return len(self._by_id)

    def node_count(self) -> int:
        """Number of element plus text nodes."""
        return self._count

    def max_depth(self) -> int:
        """Depth of the deepest element (root is at depth 1)."""
        return self._max_depth

    def elements(self) -> Iterator[Element]:
        """All elements in document (preorder) order."""
        assert self._by_id is not None
        return iter(self._by_id)

    def element_at(self, node_id: int) -> Element:
        """Return the element with preorder id ``node_id``.

        Raises :class:`KeyError` if ``node_id`` does not name an element
        (it may name a text node or be out of range).
        """
        assert self._by_id is not None
        # `_by_id` is sorted by node_id; binary search.
        lo, hi = 0, len(self._by_id)
        while lo < hi:
            mid = (lo + hi) // 2
            mid_id = self._by_id[mid].node_id
            if mid_id == node_id:
                return self._by_id[mid]
            if mid_id < node_id:
                lo = mid + 1
            else:
                hi = mid
        raise KeyError(f"no element with node_id {node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Document(doc_id={self.doc_id}, elements={self.element_count()}, "
            f"depth={self.max_depth()})"
        )

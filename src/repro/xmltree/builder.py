"""Assemble an in-memory tree from an event stream.

The builder is the inverse of :func:`repro.xmltree.events.tree_events`
and the back half of the parser.  It is also used by the bisimulation
traveler tests to materialize depth-limited unfoldings.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import XMLSyntaxError
from repro.xmltree.events import CloseEvent, Event, OpenEvent, TextEvent
from repro.xmltree.model import Document, Element


class TreeBuilder:
    """Incremental tree construction from push-style events.

    Feed events with :meth:`feed` (or drive a whole iterable through
    :meth:`feed_all`) and call :meth:`finish` to obtain the
    :class:`Document`.
    """

    def __init__(self, doc_id: int = 0) -> None:
        self._doc_id = doc_id
        self._stack: list[Element] = []
        self._root: Element | None = None

    def feed(self, event: Event) -> None:
        """Consume a single event."""
        if isinstance(event, OpenEvent):
            attributes = getattr(event, "attributes", None)
            element = Element(event.label, dict(attributes) if attributes else None)
            if self._stack:
                self._stack[-1].append(element)
            elif self._root is None:
                self._root = element
            else:
                raise XMLSyntaxError("multiple root elements in event stream")
            self._stack.append(element)
        elif isinstance(event, CloseEvent):
            if not self._stack:
                raise XMLSyntaxError(
                    f"close event {event.label!r} with no open element"
                )
            top = self._stack.pop()
            if top.tag != event.label:
                raise XMLSyntaxError(
                    f"close event {event.label!r} does not match open "
                    f"element {top.tag!r}"
                )
        elif isinstance(event, TextEvent):
            if not self._stack:
                raise XMLSyntaxError("text event outside any element")
            self._stack[-1].add_text(event.value)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event type: {event!r}")

    def feed_all(self, events: Iterable[Event]) -> "TreeBuilder":
        """Consume every event in ``events`` and return ``self``."""
        for event in events:
            self.feed(event)
        return self

    def finish(self) -> Document:
        """Validate completeness and return the built document."""
        if self._stack:
            raise XMLSyntaxError(
                f"event stream ended with {len(self._stack)} unclosed element(s)"
            )
        if self._root is None:
            raise XMLSyntaxError("event stream contained no elements")
        return Document(self._root, doc_id=self._doc_id)


def tree_from_events(events: Iterable[Event], doc_id: int = 0) -> Document:
    """Build a :class:`Document` from a complete event stream."""
    return TreeBuilder(doc_id=doc_id).feed_all(events).finish()

"""Figure 5: average sel / pp / fpr over random-query batches.

The paper uses 1000 random queries per data set, dropping queries of
selectivity exactly 0 or 1.  The batch size scales down with the data
(the default benchmark run uses 100 per set; pass ``queries=1000`` for
the full-fidelity version — it is only minutes of CPU)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import format_table, percent
from repro.core import FixIndex, FixIndexConfig, evaluate_pruning
from repro.core.metrics import MetricAverages
from repro.datasets import RandomQueryGenerator, dataset_names, load_dataset


@dataclass
class Figure5Row:
    """One data-set bar group of Figure 5."""

    dataset: str
    queries: int
    avg_sel: float
    avg_pp: float
    avg_fpr: float
    false_negatives: int


def run_figure5(
    scale: float = 1.0,
    seed: int = 42,
    queries: int = 100,
    datasets: list[str] | None = None,
) -> list[Figure5Row]:
    """Generate random batches per data set and average the metrics."""
    rows: list[Figure5Row] = []
    for name in datasets or dataset_names():
        bundle = load_dataset(name, scale=scale, seed=seed)
        index = FixIndex.build(
            bundle.store(), FixIndexConfig(depth_limit=bundle.depth_limit)
        )
        generator = RandomQueryGenerator(bundle.documents, seed=seed)
        averages = MetricAverages()

        def keep(generated) -> bool:
            metrics = evaluate_pruning(index, generated.twig)
            # The paper's filter: drop selectivity exactly 0 or 1.
            if metrics.rst == 0 or metrics.rst == metrics.ent:
                return False
            averages.add(metrics)
            return True

        generator.batch(queries, keep=keep)
        rows.append(
            Figure5Row(
                dataset=name,
                queries=averages.queries,
                avg_sel=averages.avg_sel,
                avg_pp=averages.avg_pp,
                avg_fpr=averages.avg_fpr,
                false_negatives=averages.false_negatives,
            )
        )
    return rows


def print_figure5(rows: list[Figure5Row]) -> str:
    """Render the Figure 5 bar values as a table."""
    table = format_table(
        ["data set", "queries", "avg sel", "avg pp", "avg fpr", "FN"],
        [
            (
                row.dataset,
                row.queries,
                percent(row.avg_sel),
                percent(row.avg_pp),
                percent(row.avg_fpr),
                row.false_negatives,
            )
            for row in rows
        ],
        title="Figure 5: averages over random query batches",
    )
    print(table)
    return table

"""Quantifying the Theorem 5 completeness gap (reproduction contribution).

DESIGN.md §5a documents that FIX as published can prune true matches
when a label pair repeats along a path while a sibling shares the deeper
equivalence class.  This experiment measures *how often* that actually
happens as a function of structural recursion:

* documents are XMark-``parlist``-style: alternating ``parlist`` /
  ``listitem`` nests of random depth up to ``max_nesting``, with random
  sibling branches (the sharing that creates the extra bisimulation
  edges);
* queries are the alternating chains ``//parlist/listitem/...`` of every
  length the index covers;
* for each (nesting, chain length) cell we report the number of true
  result units and how many of them the feature key loses.

The paper's own data sets sit at the two ends of this sweep: DBLP/XBench
have no qualifying recursion (0% loss everywhere), while XMark's
``parlist`` recursion reaches the lossy cells (Figure 5's measured 264
false negatives).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.reporting import format_table, percent
from repro.core import FixIndex, FixIndexConfig
from repro.core.metrics import evaluate_pruning
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element


@dataclass
class GapRow:
    """One (nesting level, query length) cell of the sweep."""

    max_nesting: int
    chain_length: int
    true_results: int
    false_negatives: int

    @property
    def loss_rate(self) -> float:
        """Fraction of true results the index prunes."""
        return (
            self.false_negatives / self.true_results if self.true_results else 0.0
        )


def _recursive_document(
    rng: random.Random, count: int, max_nesting: int
) -> Document:
    """A forest of parlist/listitem nests with sibling sharing."""
    root = Element("doc")
    for _ in range(count):
        root.append(_nest(rng, depth=1, max_nesting=max_nesting))
    return Document(root)


def _nest(rng: random.Random, depth: int, max_nesting: int) -> Element:
    parlist = Element("parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = parlist.add_element("listitem")
        if depth < max_nesting and rng.random() < 0.6:
            listitem.append(_nest(rng, depth + 1, max_nesting))
        else:
            listitem.add_element("text")
    return parlist


def run_gap_sweep(
    nestings: tuple[int, ...] = (1, 2, 3, 4),
    documents: int = 120,
    depth_limit: int = 8,
    seed: int = 42,
) -> list[GapRow]:
    """Measure false-negative rates across the recursion sweep."""
    rows: list[GapRow] = []
    for max_nesting in nestings:
        rng = random.Random(seed)
        store = PrimaryXMLStore()
        store.add_document(_recursive_document(rng, documents, max_nesting))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=depth_limit))
        for chain_length in range(1, max_nesting + 1):
            steps = []
            for position in range(chain_length * 2):
                steps.append("parlist" if position % 2 == 0 else "listitem")
            query = "//" + "/".join(steps)
            twig = twig_of(query)
            if not index.covers(twig):
                continue
            metrics = evaluate_pruning(index, twig)
            rows.append(
                GapRow(
                    max_nesting=max_nesting,
                    chain_length=len(steps),
                    true_results=metrics.rst,
                    false_negatives=metrics.false_negatives,
                )
            )
    return rows


def print_gap_sweep(rows: list[GapRow]) -> str:
    """Render the sweep as a loss-rate table."""
    table = format_table(
        ["max nesting", "query chain", "true results", "lost (FN)", "loss rate"],
        [
            (
                row.max_nesting,
                row.chain_length,
                row.true_results,
                row.false_negatives,
                percent(row.loss_rate),
            )
            for row in rows
        ],
        title="Theorem 5 gap: answers lost vs structural recursion",
    )
    print(table)
    return table

"""The paper's published query workloads, adapted verbatim where the
generated schemas carry the same names (they were designed to).

Three groups:

* ``TABLE2_QUERIES`` — the Section 6.2 representative queries, one
  (dataset, hi|md|lo) triple each.
* ``FIGURE6_QUERIES`` — the Section 6.3 runtime queries,
  {hi, lo} × {simple path, branching path} per large data set.
* ``FIGURE7_QUERIES`` — the Section 6.4 DBLP value queries.
"""

from __future__ import annotations

# (dataset, selectivity class, query)
TABLE2_QUERIES: list[tuple[str, str, str]] = [
    ("xbench", "hi", "/article/epilog[acknoledgements]/references/a_id"),
    ("xbench", "md", "/article/prolog[keywords]/authors/author/contact[phone]"),
    ("xbench", "lo", "/article[epilog]/prolog/authors/author"),
    ("dblp", "hi", "//proceedings[booktitle]/title[sup][i]"),
    ("dblp", "md", "//article[number]/author"),
    ("dblp", "lo", "//inproceedings[url]/title"),
    ("xmark", "hi", "//category/description[parlist]/parlist/listitem/text"),
    ("xmark", "md", "//closed_auction/annotation/description/text"),
    ("xmark", "lo", "//open_auction[seller]/annotation/description/text"),
    ("treebank", "hi", "//EMPTY/S/NP[PP]/NP"),
    ("treebank", "md", "//S[VP]/NP/NP/PP/NP"),
    ("treebank", "lo", "//EMPTY/S[VP]/NP"),
]

# (dataset, query id, query)
FIGURE6_QUERIES: list[tuple[str, str, str]] = [
    ("xmark", "hi_sp", "//item/mailbox/mail/text/emph/keyword"),
    ("xmark", "lo_sp", "//description/parlist/listitem"),
    ("xmark", "hi_bp", "//item[name]/mailbox/mail[to]/text[bold]/emph/bold"),
    (
        "xmark",
        "lo_bp",
        "//item[payment][quantity][shipping][mailbox/mail/text]"
        "/description/parlist",
    ),
    ("treebank", "hi_sp", "//EMPTY/S/NP/NP/PP"),
    ("treebank", "lo_sp", "//EMPTY/S/VP"),
    ("treebank", "hi_bp", "//EMPTY/S/NP[PP]/NP"),
    ("treebank", "lo_bp", "//EMPTY/S[VP]/NP"),
    ("dblp", "hi_sp", "//inproceedings/title/i"),
    ("dblp", "lo_sp", "//dblp/inproceedings/author"),
    ("dblp", "hi_bp", "//inproceedings[url]/title[sub][i]"),
    ("dblp", "lo_bp", "//article[number]/author"),
]

# (query id, query) — all on DBLP
FIGURE7_QUERIES: list[tuple[str, str]] = [
    ("vl_hi", '//proceedings[publisher = "Springer"][title]'),
    ("vl_lo", '//inproceedings[year = "1998"][title]/author'),
]

"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table.

    Floats are shown with 4 significant digits; percentages should be
    pre-formatted by the caller.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def percent(value: float) -> str:
    """Format a ratio as the paper prints metrics: two-decimal percent."""
    return f"{value * 100:.2f}%"


def megabytes(size_bytes: int) -> str:
    """Format bytes as MB with two decimals."""
    return f"{size_bytes / 1e6:.2f} MB"

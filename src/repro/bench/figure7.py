"""Figure 7: the value-extended index on DBLP.

(a) implementation-independent metrics of the value queries against the
value-extended FIX index, and (b) runtime of clustered FIX-with-values
vs. the F&B index (also built with value blocks, refined for hash
collisions so both report true results)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from repro.bench.paper_queries import FIGURE7_QUERIES
from repro.bench.reporting import format_table, percent
from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor, evaluate_pruning
from repro.datasets import load_dataset
from repro.fb import FBEvaluator, FBIndex
from repro.query import matches_at, twig_of


@dataclass
class Figure7Row:
    """One value query: metrics plus the two timed systems."""

    query_id: str
    query: str
    sel: float
    pp: float
    fpr: float
    false_negatives: int
    fb_seconds: float
    fix_clustered_seconds: float
    result_count: int


@dataclass
class Figure7Report:
    rows: list[Figure7Row]
    #: construction-cost comparison the paper quotes (~30x time, ~10x
    #: memory at beta=10): value-extended vs pure structural.
    structural_build_seconds: float
    value_build_seconds: float
    structural_bytes: int
    value_bytes: int
    beta: int


def run_figure7(
    scale: float = 1.0,
    seed: int = 42,
    beta: int = 10,
    repeats: int = 3,
) -> Figure7Report:
    """Run the DBLP value-query experiment."""
    bundle = load_dataset("dblp", scale=scale, seed=seed)
    store = bundle.store()
    document = store.get_document(0)

    structural = FixIndex.build(
        store, FixIndexConfig(depth_limit=bundle.depth_limit)
    )
    value_index = FixIndex.build(
        store,
        FixIndexConfig(
            depth_limit=bundle.depth_limit, value_buckets=beta, clustered=True
        ),
    )
    processor = FixQueryProcessor(value_index)
    fb_index = FBIndex(document, text_label=value_index.value_hasher)
    fb = FBEvaluator(fb_index)

    def fb_query(twig) -> list[int]:
        # F&B with hashed value blocks returns candidates (collisions);
        # refine against the document for true results, as the harness
        # does for FIX, so both sides report the same answer.
        memo: dict[tuple[int, int], bool] = {}
        return [
            node_id
            for node_id in fb.evaluate(twig)
            if matches_at(twig.root, document.element_at(node_id), memo)
        ]

    rows: list[Figure7Row] = []
    for query_id, query in FIGURE7_QUERIES:
        twig = twig_of(query)
        metrics = evaluate_pruning(value_index, twig, processor=processor)

        def timed(action) -> float:
            samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                action()
                samples.append(time.perf_counter() - started)
            return statistics.median(samples)

        result = processor.query(twig)
        rows.append(
            Figure7Row(
                query_id=f"DBLP_{query_id}",
                query=query,
                sel=metrics.sel,
                pp=metrics.pp,
                fpr=metrics.fpr,
                false_negatives=metrics.false_negatives,
                fb_seconds=timed(lambda: fb_query(twig)),
                fix_clustered_seconds=timed(lambda: processor.query(twig)),
                result_count=result.result_count,
            )
        )
    return Figure7Report(
        rows=rows,
        structural_build_seconds=structural.report.seconds,
        value_build_seconds=value_index.report.seconds,
        structural_bytes=structural.size_bytes(),
        value_bytes=value_index.size_bytes(),
        beta=beta,
    )


def print_figure7(report: Figure7Report) -> str:
    """Render both Figure 7 panels plus the construction-cost note."""
    metrics_table = format_table(
        ["query", "sel", "pp", "fpr", "FN"],
        [
            (row.query_id, percent(row.sel), percent(row.pp), percent(row.fpr),
             row.false_negatives)
            for row in report.rows
        ],
        title="Figure 7a: value-index metrics on DBLP",
    )
    runtime_table = format_table(
        ["query", "F&B (ms)", "FIX clustered+values (ms)", "results"],
        [
            (
                row.query_id,
                f"{row.fb_seconds * 1000:.2f}",
                f"{row.fix_clustered_seconds * 1000:.2f}",
                row.result_count,
            )
            for row in report.rows
        ],
        title="Figure 7b: runtime, F&B vs clustered FIX with values",
    )
    time_factor = (
        report.value_build_seconds / report.structural_build_seconds
        if report.structural_build_seconds
        else float("nan")
    )
    size_factor = (
        report.value_bytes / report.structural_bytes
        if report.structural_bytes
        else float("nan")
    )
    note = (
        f"value index construction cost (beta={report.beta}): "
        f"{time_factor:.1f}x time, {size_factor:.1f}x B-tree size vs pure "
        "structural"
    )
    output = "\n\n".join([metrics_table, runtime_table, note])
    print(output)
    return output

"""Table 2: implementation-independent metrics for the representative
queries (one hi/md/lo triple per data set)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.paper_queries import TABLE2_QUERIES
from repro.bench.reporting import format_table, percent
from repro.core import FixIndex, FixIndexConfig, evaluate_pruning
from repro.datasets import load_dataset


@dataclass
class Table2Row:
    """One query row of Table 2 (plus this reproduction's FN column)."""

    query_id: str
    query: str
    sel: float
    pp: float
    fpr: float
    false_negatives: int


def run_table2(scale: float = 1.0, seed: int = 42) -> list[Table2Row]:
    """Evaluate sel/pp/fpr for each representative query."""
    rows: list[Table2Row] = []
    indexes: dict[str, FixIndex] = {}
    for dataset, selectivity, query in TABLE2_QUERIES:
        index = indexes.get(dataset)
        if index is None:
            bundle = load_dataset(dataset, scale=scale, seed=seed)
            index = FixIndex.build(
                bundle.store(), FixIndexConfig(depth_limit=bundle.depth_limit)
            )
            indexes[dataset] = index
        metrics = evaluate_pruning(index, query)
        label = {"xbench": "TCMD", "dblp": "DBLP", "xmark": "XMark", "treebank": "TrBnk"}[
            dataset
        ]
        rows.append(
            Table2Row(
                query_id=f"{label}_{selectivity}",
                query=query,
                sel=metrics.sel,
                pp=metrics.pp,
                fpr=metrics.fpr,
                false_negatives=metrics.false_negatives,
            )
        )
    return rows


def print_table2(rows: list[Table2Row]) -> str:
    """Render rows in the paper's Table 2 layout."""
    table = format_table(
        ["query", "sel", "pp", "fpr", "FN"],
        [
            (row.query_id, percent(row.sel), percent(row.pp), percent(row.fpr),
             row.false_negatives)
            for row in rows
        ],
        title="Table 2: implementation-independent metrics, representative queries",
    )
    print(table)
    return table

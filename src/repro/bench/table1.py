"""Table 1: data-set characteristics, index construction time, and the
unclustered vs. clustered index sizes.

Beyond the paper's columns, each row carries the per-phase breakdown of
the construction time (parse / encode / bisim / unfold / matrix / eigen
/ insert,
see :class:`~repro.core.construction.PhaseTimings`) so the dominant cost
— eigen-decomposition — is visible next to the headline ICT number."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import format_table, megabytes
from repro.core import FixIndex, FixIndexConfig
from repro.datasets import dataset_names, load_dataset


@dataclass
class Table1Row:
    """One data-set row of Table 1."""

    dataset: str
    size_bytes: int
    elements: int
    depth_limit: int
    construction_seconds: float
    unclustered_bytes: int
    clustered_bytes: int
    oversized_patterns: int
    #: phase name -> seconds for the unclustered build.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: spectral solver the build ran under and its batching profile
    #: (stacked kernel dispatches; batch size -> stacked-call count).
    eigen_solver: str = "real"
    eigen_batches: int = 0
    eigen_batch_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def eigen_share(self) -> float:
        """Fraction of the phase-accounted time spent in the eigensolve
        proper (matrix assembly is accounted separately as ``matrix``)."""
        total = sum(self.phase_seconds.values())
        return self.phase_seconds.get("eigen", 0.0) / total if total else 0.0


def run_table1(
    scale: float = 1.0,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> list[Table1Row]:
    """Build both index variants on every data set and measure."""
    rows: list[Table1Row] = []
    for name in datasets or dataset_names():
        bundle = load_dataset(name, scale=scale, seed=seed)
        store = bundle.store()
        unclustered = FixIndex.build(
            store, FixIndexConfig(depth_limit=bundle.depth_limit)
        )
        clustered = FixIndex.build(
            store, FixIndexConfig(depth_limit=bundle.depth_limit, clustered=True)
        )
        rows.append(
            Table1Row(
                dataset=name,
                size_bytes=bundle.size_bytes(),
                elements=bundle.element_count(),
                depth_limit=bundle.depth_limit,
                construction_seconds=unclustered.report.seconds,
                unclustered_bytes=unclustered.size_bytes(),
                clustered_bytes=clustered.total_size_bytes(),
                oversized_patterns=unclustered.report.stats.oversized_patterns,
                phase_seconds=unclustered.report.timings.as_dict(),
                eigen_solver=unclustered.report.eigen_solver,
                eigen_batches=unclustered.report.stats.eigen_batches,
                eigen_batch_sizes=dict(
                    unclustered.report.stats.eigen_batch_sizes
                ),
            )
        )
    return rows


def print_table1(rows: list[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout."""
    table = format_table(
        ["data set", "size", "# elements", "L", "ICT", "eigen %",
         "|UIdx|", "|CIdx|", "oversized"],
        [
            (
                row.dataset,
                megabytes(row.size_bytes),
                row.elements,
                row.depth_limit,
                f"{row.construction_seconds:.2f} s",
                f"{row.eigen_share:.0%}",
                megabytes(row.unclustered_bytes),
                megabytes(row.clustered_bytes),
                row.oversized_patterns,
            )
            for row in rows
        ],
        title="Table 1: data sets, construction time, index sizes",
    )
    print(table)
    for row in rows:
        phases = "  ".join(
            f"{phase}={seconds:.2f}s"
            for phase, seconds in row.phase_seconds.items()
        )
        print(
            f"  {row.dataset:9s} phases: {phases}  "
            f"[solver={row.eigen_solver}, {row.eigen_batches} batches]"
        )
    return table

"""Ablation studies for DESIGN.md §5's design decisions.

1. **Feature ablation** — how much pruning each feature component buys:

   * ``label`` — root label only (λ ignored);
   * ``range`` — the paper's ``(root label, λ_min, λ_max)`` key;
   * ``spectrum`` — the stronger full-spectrum multiset-subset test the
     paper sketches but rejects for engineering reasons (Section 3.3).

   Because real anti-symmetric spectra are symmetric, the λ-pair carries
   one scalar; the spectrum variant shows what the discarded information
   was worth.  Spectra come from the real-SVD kernel's full-spectrum
   path (:func:`repro.spectral.kernel.real_spectrum`, via
   :func:`~repro.spectral.eigen.graph_spectrum`): the ``±σ`` pairs of
   the pattern's singular values, exactly symmetric by construction.

2. **β sweep** — the Section 4.6 trade-off: value-hash bucket count vs.
   index size, construction time, and value-query false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.paper_queries import FIGURE7_QUERIES, TABLE2_QUERIES
from repro.bench.reporting import format_table, percent
from repro.core import FixIndex, FixIndexConfig, evaluate_pruning
from repro.core.metrics import true_result_units
from repro.datasets import load_dataset
from repro.query import twig_of
from repro.spectral import spectrum_contains
from repro.spectral.eigen import graph_spectrum
from repro.bisim import depth_limited_graph
from repro.xmltree import Document


# --------------------------------------------------------------------- #
# Feature ablation
# --------------------------------------------------------------------- #


@dataclass
class FeatureAblationRow:
    """Candidate counts per feature variant for one query."""

    dataset: str
    query: str
    ent: int
    rst: int
    cdt_label_only: int
    cdt_range: int
    cdt_spectrum: int


def run_feature_ablation(
    scale: float = 0.5,
    seed: int = 42,
    datasets: list[str] | None = None,
) -> list[FeatureAblationRow]:
    """Compare pruning of label-only vs λ-range vs full-spectrum keys."""
    wanted = set(datasets or ["xmark", "treebank"])
    rows: list[FeatureAblationRow] = []
    bundles = {}
    for dataset, _, query in TABLE2_QUERIES:
        if dataset not in wanted:
            continue
        if dataset not in bundles:
            bundle = load_dataset(dataset, scale=scale, seed=seed)
            store = bundle.store()
            index = FixIndex.build(
                store, FixIndexConfig(depth_limit=bundle.depth_limit)
            )
            # Precompute per-vertex spectra for the spectrum variant.
            spectra = _index_spectra(index, bundle.documents[0])
            bundles[dataset] = (bundle, index, spectra)
        bundle, index, spectra = bundles[dataset]
        twig = twig_of(query)
        query_key = index.query_features(twig)
        query_spectrum = graph_spectrum(
            twig.pattern(text_label=index.value_hasher), index.encoder
        )

        label_only = 0
        range_based = 0
        spectrum_based = 0
        for entry in index.iter_entries():
            if entry.key.root_label != query_key.root_label:
                continue
            label_only += 1
            if entry.key.range.contains(query_key.range, guard=index.config.guard_band):
                range_based += 1
                indexed_spectrum = spectra.get(entry.pointer.node_id)
                if indexed_spectrum is None or spectrum_contains(
                    indexed_spectrum, query_spectrum
                ):
                    spectrum_based += 1
        truth = true_result_units(index, twig)
        rows.append(
            FeatureAblationRow(
                dataset=dataset,
                query=query,
                ent=index.entry_count,
                rst=len(truth),
                cdt_label_only=label_only,
                cdt_range=range_based,
                cdt_spectrum=spectrum_based,
            )
        )
    return rows


def _index_spectra(index: FixIndex, document: Document) -> dict[int, np.ndarray]:
    """Full spectrum per element (by its bisimulation class), for the
    spectrum-subset ablation variant."""
    from repro.bisim import BisimGraphBuilder
    from repro.xmltree import tree_events

    builder = BisimGraphBuilder(text_label=index.value_hasher)
    spectra: dict[int, np.ndarray] = {}
    per_vertex: dict[int, np.ndarray] = {}
    for event in tree_events(
        document.root, include_text=index.value_hasher is not None
    ):
        closed = builder.feed(event)
        if closed is None:
            continue
        vertex, start_ptr = closed
        cached = per_vertex.get(vertex.vid)
        if cached is None:
            try:
                pattern = depth_limited_graph(
                    vertex,
                    index.config.depth_limit,
                    max_opens=index.config.max_unfolding_opens,
                )
                cached = graph_spectrum(pattern, index.encoder)
            except Exception:
                cached = np.zeros(0)  # treat as all-covering
            per_vertex[vertex.vid] = cached
        if cached.size:
            spectra[start_ptr] = cached
    builder.finish()
    return spectra


def print_feature_ablation(rows: list[FeatureAblationRow]) -> str:
    """Render the ablation as per-variant pruning powers."""
    table = format_table(
        ["dataset", "query", "rst", "pp label", "pp range", "pp spectrum"],
        [
            (
                row.dataset,
                row.query if len(row.query) < 45 else row.query[:42] + "...",
                row.rst,
                percent(1 - row.cdt_label_only / row.ent),
                percent(1 - row.cdt_range / row.ent),
                percent(1 - row.cdt_spectrum / row.ent),
            )
            for row in rows
        ],
        title="Feature ablation: pruning power per key variant",
    )
    print(table)
    return table


# --------------------------------------------------------------------- #
# β sweep
# --------------------------------------------------------------------- #


@dataclass
class BetaSweepRow:
    """Costs and benefits of one β setting."""

    beta: int
    build_seconds: float
    btree_bytes: int
    encoder_size: int
    avg_fpr: float
    false_negatives: int


def run_beta_sweep(
    scale: float = 0.3,
    seed: int = 42,
    betas: tuple[int, ...] = (2, 4, 10, 32, 128),
) -> list[BetaSweepRow]:
    """Sweep the value-hash domain size on the DBLP value queries."""
    bundle = load_dataset("dblp", scale=scale, seed=seed)
    store = bundle.store()
    rows: list[BetaSweepRow] = []
    for beta in betas:
        index = FixIndex.build(
            store,
            FixIndexConfig(depth_limit=bundle.depth_limit, value_buckets=beta),
        )
        fpr_sum = 0.0
        false_negatives = 0
        for _, query in FIGURE7_QUERIES:
            metrics = evaluate_pruning(index, query)
            fpr_sum += metrics.fpr
            false_negatives += metrics.false_negatives
        rows.append(
            BetaSweepRow(
                beta=beta,
                build_seconds=index.report.seconds,
                btree_bytes=index.size_bytes(),
                encoder_size=len(index.encoder),
                avg_fpr=fpr_sum / len(FIGURE7_QUERIES),
                false_negatives=false_negatives,
            )
        )
    return rows


def print_beta_sweep(rows: list[BetaSweepRow]) -> str:
    """Render the β trade-off table."""
    table = format_table(
        ["beta", "build (s)", "B-tree", "edge labels", "avg fpr", "FN"],
        [
            (
                row.beta,
                f"{row.build_seconds:.2f}",
                f"{row.btree_bytes / 1e6:.2f} MB",
                row.encoder_size,
                percent(row.avg_fpr),
                row.false_negatives,
            )
            for row in rows
        ],
        title="Section 4.6 beta sweep: value-hash domain size trade-off",
    )
    print(table)
    return table

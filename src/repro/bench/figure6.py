"""Figure 6: runtime comparison of the four systems on the three large
data sets — NoK-style navigation without index support, unclustered FIX
(+ the same navigational refiner), the F&B covering index, and clustered
FIX.

Times are wall-clock medians over ``repeats`` runs of the *query* phase
(index construction excluded, as in the paper).  Absolute numbers are a
pure-Python simulator's, not a C++ prototype's; the comparisons the
paper draws — FIX beating no-index navigation, clustered FIX beating F&B
on structure-rich data, F&B winning on regular/shallow DBLP — are what
EXPERIMENTS.md checks."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from collections.abc import Callable

from repro.bench.paper_queries import FIGURE6_QUERIES
from repro.bench.reporting import format_table
from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.datasets import load_dataset
from repro.engine import NavigationalEngine
from repro.fb import FBEvaluator, FBIndex
from repro.query import twig_of


@dataclass
class Figure6Row:
    """One query group of Figure 6 (four bars), with both wall-clock and
    cost-model I/O.

    Wall time in a memory-resident Python run does not see the disk
    behaviour the paper's numbers are made of (random pointer chasing
    for the unclustered index vs. a sequential candidate range for the
    clustered one), so each row also carries the Section 4/5 cost-model
    page counts: NoK reads the whole data set sequentially; unclustered
    FIX performs one random page access per candidate; clustered FIX
    reads the candidates' (redundant) copies sequentially; F&B reads its
    block tree."""

    dataset: str
    query_id: str
    query: str
    nok_seconds: float
    fix_unclustered_seconds: float
    fb_seconds: float
    fix_clustered_seconds: float
    result_count: int
    candidate_count: int = 0
    nok_pages_sequential: int = 0
    fix_u_pages_random: int = 0
    fb_pages_sequential: int = 0
    fix_c_pages_sequential: int = 0


@dataclass
class _DatasetSystems:
    store: object
    nok: NavigationalEngine
    unclustered: FixQueryProcessor
    clustered: FixQueryProcessor
    fb: FBEvaluator
    bundle_bytes: int = 0
    fb_bytes: int = 0


def _timed(action: Callable[[], object], repeats: int) -> float:
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def run_figure6(
    scale: float = 1.0,
    seed: int = 42,
    repeats: int = 3,
    datasets: list[str] | None = None,
) -> list[Figure6Row]:
    """Time all four systems on every Figure 6 query."""
    wanted = datasets or ["xmark", "treebank", "dblp"]
    systems: dict[str, _DatasetSystems] = {}
    for name in wanted:
        bundle = load_dataset(name, scale=scale, seed=seed)
        store = bundle.store()
        unclustered_index = FixIndex.build(
            store, FixIndexConfig(depth_limit=bundle.depth_limit)
        )
        clustered_index = FixIndex.build(
            store, FixIndexConfig(depth_limit=bundle.depth_limit, clustered=True)
        )
        fb_index = FBIndex(store.get_document(0))
        systems[name] = _DatasetSystems(
            store=store,
            nok=NavigationalEngine(store),
            unclustered=FixQueryProcessor(unclustered_index),
            clustered=FixQueryProcessor(clustered_index),
            fb=FBEvaluator(fb_index),
            bundle_bytes=bundle.size_bytes(),
            fb_bytes=fb_index.size_bytes(),
        )

    rows: list[Figure6Row] = []
    page = 4096
    for dataset, query_id, query in FIGURE6_QUERIES:
        if dataset not in systems:
            continue
        sys = systems[dataset]
        twig = twig_of(query)
        result = sys.unclustered.query(twig)
        candidates = list(sys.clustered.index.candidates(twig))
        copy_bytes = 0
        for entry in candidates:
            unit = sys.clustered.index.clustered_store.get_unit(entry.record)
            copy_bytes += unit.element_count() * 32  # serialized estimate
        dataset_bytes = sys.bundle_bytes
        rows.append(
            Figure6Row(
                dataset=dataset,
                query_id=query_id,
                query=query,
                nok_seconds=_timed(lambda: sys.nok.evaluate(twig), repeats),
                fix_unclustered_seconds=_timed(
                    lambda: sys.unclustered.query(twig), repeats
                ),
                fb_seconds=_timed(lambda: sys.fb.evaluate(twig), repeats),
                fix_clustered_seconds=_timed(
                    lambda: sys.clustered.query(twig), repeats
                ),
                result_count=result.result_count,
                candidate_count=len(candidates),
                nok_pages_sequential=-(-dataset_bytes // page),
                fix_u_pages_random=len(candidates),
                fb_pages_sequential=-(-sys.fb_bytes // page),
                fix_c_pages_sequential=-(-copy_bytes // page) if copy_bytes else 0,
            )
        )
    return rows


def print_figure6(rows: list[Figure6Row]) -> str:
    """Render the four bars per query, in milliseconds (log-scale plots
    in the paper; the ordering is what matters)."""

    def ms(seconds: float) -> str:
        return f"{seconds * 1000:.2f}"

    timing = format_table(
        ["query", "NoK (ms)", "FIX-U (ms)", "F&B (ms)", "FIX-C (ms)", "results"],
        [
            (
                f"{row.dataset}_{row.query_id}",
                ms(row.nok_seconds),
                ms(row.fix_unclustered_seconds),
                ms(row.fb_seconds),
                ms(row.fix_clustered_seconds),
                row.result_count,
            )
            for row in rows
        ],
        title="Figure 6: runtime comparison (NoK vs FIX-U vs F&B vs FIX-C)",
    )
    io = format_table(
        [
            "query",
            "cdt",
            "NoK seq pages",
            "FIX-U random pages",
            "F&B seq pages",
            "FIX-C seq pages",
        ],
        [
            (
                f"{row.dataset}_{row.query_id}",
                row.candidate_count,
                row.nok_pages_sequential,
                row.fix_u_pages_random,
                row.fb_pages_sequential,
                row.fix_c_pages_sequential,
            )
            for row in rows
        ],
        title="Figure 6 (cost model): page accesses per system",
    )
    output = timing + "\n\n" + io
    print(output)
    return output

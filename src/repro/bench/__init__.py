"""Experiment harness: one runner per table/figure of the paper.

Each ``run_*`` function regenerates one exhibit of the evaluation
section — same rows, same series — over the synthetic data sets, and
returns structured results so callers (the pytest-benchmark wrappers in
``benchmarks/``, the examples, EXPERIMENTS.md generation) can render or
compare them.  ``print_*`` helpers produce the paper-style text tables.

==================== =======================================
Exhibit              Runner
==================== =======================================
Table 1              :func:`~repro.bench.table1.run_table1`
Table 2              :func:`~repro.bench.table2.run_table2`
Figure 5             :func:`~repro.bench.figure5.run_figure5`
Figure 6 (a,b,c)     :func:`~repro.bench.figure6.run_figure6`
Figure 7 (a,b)       :func:`~repro.bench.figure7.run_figure7`
Feature ablation     :func:`~repro.bench.ablation.run_feature_ablation`
β sweep              :func:`~repro.bench.ablation.run_beta_sweep`
==================== =======================================
"""

from repro.bench.ablation import run_beta_sweep, run_feature_ablation
from repro.bench.figure5 import run_figure5
from repro.bench.figure6 import run_figure6
from repro.bench.figure7 import run_figure7
from repro.bench.reporting import format_table
from repro.bench.table1 import run_table1
from repro.bench.table2 import run_table2

__all__ = [
    "format_table",
    "run_beta_sweep",
    "run_feature_ablation",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table1",
    "run_table2",
]

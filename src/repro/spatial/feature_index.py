"""An R-tree view of a FIX index's feature keys (Section 8 future work).

Wraps one bulk-loaded R-tree per root label over the ``(λ_min, λ_max)``
points of a built :class:`~repro.core.index.FixIndex`.  The candidates
it returns are *identical* to the B-tree backend's (both implement the
Section 3.4 containment predicate exactly, with the same guard band);
what differs is the amount of work: the B-tree must scan the whole
``λ_max >= query`` suffix and reject entries on λ_min one by one, while
the R-tree prunes on both coordinates while descending.

The view is maintained *incrementally* under the epoch layer: a
mutation touching root labels ``L`` leaves every other label's tree —
and its pointer identity — intact; only the trees for ``L`` are
re-bulk-loaded from the surviving entries (:meth:`refresh`).  Pointer
identity matters because pinned readers iterate tree nodes directly:
an untouched label's partition is byte-for-byte the one their snapshot
was pinned on.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.core.index import FixIndex, IndexEntry
from repro.spectral import FeatureKey
from repro.spatial.rtree import Rect, RTree


class SpatialFeatureIndex:
    """Per-label R-trees over a FIX index's feature points."""

    def __init__(self, index: FixIndex, max_entries: int = 16) -> None:
        self._index = index
        self._guard = index.config.guard_band
        self._max_entries = max_entries
        self._trees: dict[str, RTree] = {}
        self._all_covering: dict[str, list[IndexEntry]] = {}
        # Work done by trees that were since replaced by refresh(); keeps
        # entries_inspected()/nodes_visited() monotone across mutations.
        self._retired_inspected = 0
        self._retired_visited = 0
        grouped: dict[str, list[tuple[Rect, IndexEntry]]] = {}
        for entry in index.iter_entries():
            label = entry.key.root_label
            if entry.key.range.is_all_covering():
                # Infinite rectangles poison R-tree bounds; keep the
                # (rare) all-covering entries aside and always return
                # them, mirroring the B-tree's behaviour.
                self._all_covering.setdefault(label, []).append(entry)
                continue
            point = Rect.point(entry.key.range.lmin, entry.key.range.lmax)
            grouped.setdefault(label, []).append((point, entry))
        for label, entries in grouped.items():
            self._trees[label] = RTree.bulk_load(
                entries, max_entries=max_entries
            )

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def refresh(self, labels) -> None:
        """Rebuild only the partitions of ``labels`` from the index's
        surviving entries; every other label's tree keeps its pointer
        identity.  A label with no remaining entries loses its tree (and
        its all-covering list) entirely."""
        for label in labels:
            old = self._trees.pop(label, None)
            if old is not None:
                self._retired_inspected += old.entries_inspected
                self._retired_visited += old.nodes_visited
            self._all_covering.pop(label, None)
            points: list[tuple[Rect, IndexEntry]] = []
            covering: list[IndexEntry] = []
            for entry in self._index.iter_label_entries(label):
                if entry.key.range.is_all_covering():
                    covering.append(entry)
                    continue
                point = Rect.point(
                    entry.key.range.lmin, entry.key.range.lmax
                )
                points.append((point, entry))
            if points:
                self._trees[label] = RTree.bulk_load(
                    points, max_entries=self._max_entries
                )
            if covering:
                self._all_covering[label] = covering

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def candidates_for_key(
        self, query_key: FeatureKey, anchored: bool = True
    ) -> Iterator[IndexEntry]:
        """Same contract as :meth:`FixIndex.candidates_for_key`.

        ``anchored=False`` drops the root-label condition and runs the
        dominance query against every label's tree (collection-mode
        ``//`` queries, where the query root can bind below unrelated
        unit roots).
        """
        # Containment with the guard band: indexed λ_min <= q_min + g
        # and indexed λ_max >= q_max - g.
        qx = query_key.range.lmin + self._guard
        qy = query_key.range.lmax - self._guard
        if math.isinf(qy):  # degenerate all-covering query key
            qy = -math.inf
        if anchored:
            label = query_key.root_label
            trees = [self._trees[label]] if label in self._trees else []
            covering = [self._all_covering.get(label, [])]
        else:
            trees = [self._trees[label] for label in sorted(self._trees)]
            covering = [
                self._all_covering[label] for label in sorted(self._all_covering)
            ]
        for tree in trees:
            for entry in tree.search_dominating(qx, qy):
                yield entry  # type: ignore[misc]
        for entries in covering:
            yield from entries

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def entries_inspected(self) -> int:
        """Total leaf entries looked at across all queries so far
        (including work by trees since retired by :meth:`refresh`)."""
        return self._retired_inspected + sum(
            tree.entries_inspected for tree in self._trees.values()
        )

    def nodes_visited(self) -> int:
        """Total tree nodes visited across all queries so far
        (including work by trees since retired by :meth:`refresh`)."""
        return self._retired_visited + sum(
            tree.nodes_visited for tree in self._trees.values()
        )

    def publish(self, registry, prefix: str = "rtree.") -> None:
        """Sync the work counters into a ``repro.obs`` registry.

        Idempotent (``sync_counter`` bumps by the delta, clamped at
        zero), and safe to combine with ``reset_stats()``: the registry
        totals never go backwards, though work done between the reset
        and re-passing the published totals is not re-counted — callers
        that reset mid-run should publish first to avoid losing it.
        """
        registry.sync_counter(prefix + "entries_inspected", self.entries_inspected())
        registry.sync_counter(prefix + "nodes_visited", self.nodes_visited())

    def reset_stats(self) -> None:
        """Zero all work counters."""
        self._retired_inspected = 0
        self._retired_visited = 0
        for tree in self._trees.values():
            tree.reset_stats()

    def labels(self) -> list[str]:
        """Labels with at least one finite-range entry."""
        return sorted(self._trees)

"""A 2-D R-tree with quadratic split and STR bulk loading.

Guttman's original design, specialized to the two dimensions FIX needs.
Entries are ``(Rect, value)`` pairs; leaves hold data entries, internal
nodes hold child bounding rectangles.  Supported queries:

* :meth:`RTree.search` — all values whose rectangle intersects a window;
* :meth:`RTree.search_dominating` — the FIX pruning predicate: entries
  (points ``(λ_min, λ_max)``) with ``x ≤ qx`` and ``y ≥ qy``, i.e. the
  upper-left quarter-plane anchored at the query point.

The tree also counts node and entry inspections so backends can be
compared on work done, not just wall time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle (degenerate = a point)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersects_quarter_plane(self, qx: float, qy: float) -> bool:
        """Does this rectangle contain any point with x <= qx, y >= qy?"""
        return self.min_x <= qx and self.max_y >= qy


class _Node:
    __slots__ = ("leaf", "rects", "children", "values", "bounds")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.rects: list[Rect] = []
        self.children: list[_Node] = []  # internal nodes
        self.values: list[object] = []  # leaves
        self.bounds: Rect | None = None

    def recompute_bounds(self) -> None:
        if not self.rects:
            self.bounds = None
            return
        bounds = self.rects[0]
        for rect in self.rects[1:]:
            bounds = bounds.union(rect)
        self.bounds = bounds


class RTree:
    """R-tree over ``(Rect, value)`` entries.

    Args:
        max_entries: node capacity (Guttman's M); min fill is M // 2.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = max_entries // 2
        self._root = _Node(leaf=True)
        self._size = 0
        #: work counters, reset with :meth:`reset_stats`.
        self.nodes_visited = 0
        self.entries_inspected = 0

    def __len__(self) -> int:
        return self._size

    def reset_stats(self) -> None:
        """Zero the work counters."""
        self.nodes_visited = 0
        self.entries_inspected = 0

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #

    def insert(self, rect: Rect, value: object) -> None:
        """Add one entry."""
        split = self._insert(self._root, rect, value)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            for child in (old_root, split):
                assert child.bounds is not None
                self._root.rects.append(child.bounds)
                self._root.children.append(child)
            self._root.recompute_bounds()
        self._size += 1

    def _insert(self, node: _Node, rect: Rect, value: object) -> _Node | None:
        if node.leaf:
            node.rects.append(rect)
            node.values.append(value)
        else:
            index = self._choose_subtree(node, rect)
            split = self._insert(node.children[index], rect, value)
            node.rects[index] = node.children[index].bounds  # type: ignore[assignment]
            if split is not None:
                assert split.bounds is not None
                node.rects.append(split.bounds)
                node.children.append(split)
        node.recompute_bounds()
        if len(node.rects) > self._max:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, rect: Rect) -> int:
        best = 0
        best_growth = math.inf
        best_area = math.inf
        for i, child_rect in enumerate(node.rects):
            growth = child_rect.enlargement(rect)
            area = child_rect.area()
            if growth < best_growth or (growth == best_growth and area < best_area):
                best, best_growth, best_area = i, growth, area
        return best

    def _split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; mutates ``node`` into the left half
        and returns the new right sibling."""
        rects = node.rects
        # Pick seeds: the pair wasting the most area together.
        worst = -math.inf
        seed_a, seed_b = 0, 1
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
                if waste > worst:
                    worst, seed_a, seed_b = waste, i, j

        members = list(range(len(rects)))
        group_a = [seed_a]
        group_b = [seed_b]
        bounds_a = rects[seed_a]
        bounds_b = rects[seed_b]
        remaining = [m for m in members if m not in (seed_a, seed_b)]
        while remaining:
            # Forced assignment when one group must take the rest.
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                for m in remaining:
                    bounds_a = bounds_a.union(rects[m])
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                for m in remaining:
                    bounds_b = bounds_b.union(rects[m])
                break
            # Pick the member with the greatest preference difference.
            best_member = remaining[0]
            best_diff = -math.inf
            for m in remaining:
                diff = abs(
                    bounds_a.enlargement(rects[m]) - bounds_b.enlargement(rects[m])
                )
                if diff > best_diff:
                    best_diff, best_member = diff, m
            remaining.remove(best_member)
            grow_a = bounds_a.enlargement(rects[best_member])
            grow_b = bounds_b.enlargement(rects[best_member])
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append(best_member)
                bounds_a = bounds_a.union(rects[best_member])
            else:
                group_b.append(best_member)
                bounds_b = bounds_b.union(rects[best_member])

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            values = node.values
            node.rects = [rects[i] for i in group_a]
            node.values = [values[i] for i in group_a]
            sibling.rects = [rects[i] for i in group_b]
            sibling.values = [values[i] for i in group_b]
        else:
            children = node.children
            node.rects = [rects[i] for i in group_a]
            node.children = [children[i] for i in group_a]
            sibling.rects = [rects[i] for i in group_b]
            sibling.children = [children[i] for i in group_b]
        node.recompute_bounds()
        sibling.recompute_bounds()
        return sibling

    # ------------------------------------------------------------------ #
    # Bulk load
    # ------------------------------------------------------------------ #

    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[tuple[Rect, object]],
        max_entries: int = 16,
    ) -> "RTree":
        """Sort-Tile-Recursive bulk load: sort by x, tile into vertical
        slices, sort each slice by y, pack leaves, build upward."""
        tree = cls(max_entries=max_entries)
        items = list(entries)
        tree._size = len(items)
        if not items:
            return tree
        capacity = max_entries
        leaf_count = math.ceil(len(items) / capacity)
        slice_count = math.ceil(math.sqrt(leaf_count))
        per_slice = math.ceil(len(items) / slice_count)
        items.sort(key=lambda item: (item[0].min_x + item[0].max_x))
        leaves: list[_Node] = []
        for s in range(0, len(items), per_slice):
            chunk = sorted(
                items[s : s + per_slice],
                key=lambda item: (item[0].min_y + item[0].max_y),
            )
            for off in range(0, len(chunk), capacity):
                leaf = _Node(leaf=True)
                for rect, value in chunk[off : off + capacity]:
                    leaf.rects.append(rect)
                    leaf.values.append(value)
                leaf.recompute_bounds()
                leaves.append(leaf)
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for off in range(0, len(level), capacity):
                parent = _Node(leaf=False)
                for child in level[off : off + capacity]:
                    assert child.bounds is not None
                    parent.rects.append(child.bounds)
                    parent.children.append(child)
                parent.recompute_bounds()
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search(self, window: Rect) -> Iterator[object]:
        """Values whose rectangles intersect ``window``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if node.bounds is not None and not node.bounds.intersects(window):
                continue
            if node.leaf:
                for rect, value in zip(node.rects, node.values):
                    self.entries_inspected += 1
                    if rect.intersects(window):
                        yield value
            else:
                for rect, child in zip(node.rects, node.children):
                    if rect.intersects(window):
                        stack.append(child)

    def search_dominating(self, qx: float, qy: float) -> Iterator[object]:
        """Values at points ``(x, y)`` with ``x <= qx`` and ``y >= qy``.

        For FIX feature points ``(λ_min, λ_max)`` this is exactly the
        range-containment predicate of Section 3.4.
        """
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if node.bounds is not None and not node.bounds.intersects_quarter_plane(
                qx, qy
            ):
                continue
            if node.leaf:
                for rect, value in zip(node.rects, node.values):
                    self.entries_inspected += 1
                    if rect.min_x <= qx and rect.max_y >= qy:
                        yield value
            else:
                for rect, child in zip(node.rects, node.children):
                    if rect.intersects_quarter_plane(qx, qy):
                        stack.append(child)

    def height(self) -> int:
        """Levels from root to leaf."""
        levels = 1
        node = self._root
        while not node.leaf:
            levels += 1
            node = node.children[0]
        return levels

"""Multidimensional feature indexing (the paper's Section 8 future work).

The paper closes with: "We also plan to move the index to R-tree or
other high-dimensional indexing trees to gain further pruning power."
This package implements that plan:

* :class:`~repro.spatial.rtree.RTree` — a classic rectangle R-tree with
  quadratic split and STR bulk loading.
* :class:`~repro.spatial.feature_index.SpatialFeatureIndex` — a per-label
  R-tree over the ``(λ_min, λ_max)`` points of a built
  :class:`~repro.core.index.FixIndex`.  The pruning predicate
  ("indexed range contains query range", i.e. ``λ_min ≤ q_min ∧
  λ_max ≥ q_max``) is a quarter-plane **dominance query**, which the
  R-tree answers by descending only into rectangles intersecting the
  quarter-plane — unlike the B-tree, which scans the full ``λ_max ≥
  q_max`` suffix and post-filters on λ_min.

``benchmarks/bench_ablation_rtree.py`` compares the two backends'
entries-inspected counts (the candidates returned are identical — both
implement the same predicate exactly).
"""

from repro.spatial.feature_index import SpatialFeatureIndex
from repro.spatial.rtree import RTree, Rect

__all__ = ["RTree", "Rect", "SpatialFeatureIndex"]

"""Tests for the navigational and structural-join engines and the F&B
index: each must agree with the brute-force ground truth on arbitrary
generated documents and queries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import NavigationalEngine, StructuralJoinEngine
from repro.fb import FBEvaluator, FBIndex, fb_partition
from repro.query import matching_elements, twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element, parse_xml

BIB = (
    "<bib>"
    "<article><author><email/></author><title/><year>1998</year></article>"
    "<article><author><email/><phone/></author><title/></article>"
    "<book><author><phone/></author><title/></book>"
    "</bib>"
)

QUERIES = [
    "//article/author/email",
    "//article[title]/author",
    "//author[phone][email]",
    "//bib//phone",
    "//bib[.//email]/book",
    "/bib/article/title",
    "//missing",
    "//article[isbn]",
    '//article[year = "1998"]/title',
]


def store_with(*sources: str) -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in sources:
        store.add_document(parse_xml(source))
    return store


# --------------------------------------------------------------------- #
# Random documents and queries for property tests
# --------------------------------------------------------------------- #

_LABELS = ["a", "b", "c", "d"]


@st.composite
def random_documents(draw) -> Document:
    """Small random trees over a 4-label alphabet (recursion included)."""
    node_budget = draw(st.integers(min_value=1, max_value=25))
    root = Element(draw(st.sampled_from(_LABELS)))
    open_nodes = [root]
    for _ in range(node_budget):
        parent = draw(st.sampled_from(open_nodes))
        child = parent.add_element(draw(st.sampled_from(_LABELS)))
        open_nodes.append(child)
        if len(open_nodes) > 6:
            open_nodes.pop(0)
    return Document(root)


@st.composite
def random_twigs(draw) -> str:
    """Random query text over the same alphabet: short paths with
    optional predicates and descendant axes."""
    parts = ["//" if draw(st.booleans()) else "/", draw(st.sampled_from(_LABELS))]
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            parts.append(f"[{draw(st.sampled_from(_LABELS))}]")
        parts.append(draw(st.sampled_from(["/", "//"])))
        parts.append(draw(st.sampled_from(_LABELS)))
    text = "".join(parts)
    return text if not text.endswith(("/", "//")) else text + "a"


class TestNavigationalEngine:
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_ground_truth_on_bib(self, query):
        store = store_with(BIB)
        engine = NavigationalEngine(store)
        twig = twig_of(query)
        expected = {
            e.node_id for e in matching_elements(twig, store.get_document(0))
        }
        got = {p.node_id for p in engine.evaluate(twig)}
        assert got == expected

    def test_multiple_documents(self):
        store = store_with(BIB, "<bib><book><author><phone/></author></book></bib>")
        engine = NavigationalEngine(store)
        results = engine.evaluate(twig_of("//author[phone]"))
        assert {p.doc_id for p in results} == {0, 1}

    def test_refine_accepts_true_candidate(self):
        store = store_with(BIB)
        engine = NavigationalEngine(store)
        doc = store.get_document(0)
        article = next(doc.root.find_all("article"))
        twig = twig_of("//article[title]/author").with_child_leading_axis()
        assert engine.refine(twig, article)

    def test_refine_rejects_false_candidate(self):
        store = store_with(BIB)
        engine = NavigationalEngine(store)
        doc = store.get_document(0)
        book = next(doc.root.find_all("book"))
        twig = twig_of("//book/author/email").with_child_leading_axis()
        assert not engine.refine(twig, book)

    def test_refine_pointer(self):
        store = store_with(BIB)
        engine = NavigationalEngine(store)
        doc = store.get_document(0)
        from repro.storage import NodePointer

        article = next(doc.root.find_all("article"))
        twig = twig_of("//article/title").with_child_leading_axis()
        assert engine.refine_pointer(twig, NodePointer(0, article.node_id))

    def test_stats_accumulate(self):
        store = store_with(BIB)
        engine = NavigationalEngine(store)
        engine.evaluate(twig_of("//author/email"))
        assert engine.stats.elements_scanned > 0
        assert engine.stats.verifications > 0

    @settings(max_examples=60, deadline=None)
    @given(random_documents(), random_twigs())
    def test_property_equals_ground_truth(self, document, query):
        store = PrimaryXMLStore()
        store.add_document(document)
        engine = NavigationalEngine(store)
        twig = twig_of(query)
        expected = {e.node_id for e in matching_elements(twig, document)}
        got = {p.node_id for p in engine.evaluate(twig)}
        assert got == expected


class TestStructuralJoinEngine:
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_ground_truth_on_bib(self, query):
        store = store_with(BIB)
        engine = StructuralJoinEngine(store)
        twig = twig_of(query)
        expected = {
            e.node_id for e in matching_elements(twig, store.get_document(0))
        }
        got = {p.node_id for p in engine.evaluate(twig)}
        assert got == expected

    def test_join_counter(self):
        store = store_with(BIB)
        engine = StructuralJoinEngine(store)
        engine.evaluate(twig_of("//article/author/email"))
        assert engine.joins_performed >= 2

    def test_evaluate_elements_resolves(self):
        store = store_with(BIB)
        engine = StructuralJoinEngine(store)
        elements = engine.evaluate_elements(
            twig_of("//author[phone]"), store.get_document(0)
        )
        assert all(e.tag == "author" for e in elements)
        assert len(elements) == 2

    @settings(max_examples=60, deadline=None)
    @given(random_documents(), random_twigs())
    def test_property_equals_ground_truth(self, document, query):
        store = PrimaryXMLStore()
        store.add_document(document)
        engine = StructuralJoinEngine(store)
        twig = twig_of(query)
        expected = {e.node_id for e in matching_elements(twig, document)}
        got = {p.node_id for p in engine.evaluate(twig)}
        assert got == expected


class TestFBPartition:
    def test_regular_siblings_merge(self):
        doc = parse_xml("<r><x><y/></x><x><y/></x><x><y/></x></r>")
        blocks = set(fb_partition(doc).values())
        assert len(blocks) == 3  # r, x, y

    def test_backward_direction_splits(self):
        # Both `c` leaves have identical subtrees, but different parents
        # (a vs b), so F&B keeps them apart — unlike plain bisimulation.
        doc = parse_xml("<r><a><c/></a><b><c/></b></r>")
        assignment = fb_partition(doc)
        c_blocks = {
            assignment[e.node_id] for e in doc.root.find_all("c")
        }
        assert len(c_blocks) == 2

    def test_forward_direction_splits(self):
        doc = parse_xml("<r><a><x/></a><a><y/></a></r>")
        assignment = fb_partition(doc)
        a_blocks = {assignment[e.node_id] for e in doc.root.find_all("a")}
        assert len(a_blocks) == 2

    def test_incompressible_authors_from_paper_intro(self):
        # The paper's Figure 1 argument: every author has a different
        # parent or child set, so F&B keeps them all singleton.
        doc = parse_xml(
            "<bib>"
            "<article><author><address/><email/></author></article>"
            "<book><author><affiliation/></author></book>"
            "<www><author><email/></author></www>"
            "</bib>"
        )
        assignment = fb_partition(doc)
        author_blocks = {
            assignment[e.node_id] for e in doc.root.find_all("author")
        }
        assert len(author_blocks) == 3

    def test_text_nodes_optional(self):
        doc = parse_xml("<a><b>x</b><b>y</b></a>")
        without = fb_partition(doc)
        assert len(without) == doc.element_count()
        with_text = fb_partition(doc, text_label=lambda value: f"#{value}")
        assert len(with_text) == doc.node_count()


class TestFBIndex:
    def test_block_tree_structure(self):
        doc = parse_xml("<r><x><y/></x><x><y/></x></r>")
        index = FBIndex(doc)
        assert index.block_count() == 3
        assert index.root.label == "r"
        assert index.root.extent == [doc.root.node_id]

    def test_extents_partition_elements(self):
        doc = parse_xml(BIB)
        index = FBIndex(doc)
        total = sum(block.extent_size() for block in index.blocks)
        assert total == doc.element_count()

    def test_size_bytes_positive(self):
        doc = parse_xml(BIB)
        assert FBIndex(doc).size_bytes() > 0

    @pytest.mark.parametrize("query", QUERIES[:-1])  # value query separate
    def test_evaluator_matches_ground_truth(self, query):
        doc = parse_xml(BIB)
        index = FBIndex(doc)
        evaluator = FBEvaluator(index)
        twig = twig_of(query)
        expected = sorted(e.node_id for e in matching_elements(twig, doc))
        assert evaluator.evaluate(twig) == expected

    def test_value_query_needs_text_blocks(self):
        doc = parse_xml(BIB)
        twig = twig_of('//article[year = "1998"]/title')
        plain = FBEvaluator(FBIndex(doc))
        assert plain.evaluate(twig) == []  # no text blocks -> cannot cover
        hashed = FBEvaluator(FBIndex(doc, text_label=lambda v: f"#{hash(v) % 4}"))
        expected = sorted(e.node_id for e in matching_elements(twig, doc))
        got = hashed.evaluate(twig)
        # With hashing the answer is a superset (collisions possible).
        assert set(expected) <= set(got)

    @settings(max_examples=60, deadline=None)
    @given(random_documents(), random_twigs())
    def test_property_covering(self, document, query):
        """F&B is a covering index: block-level evaluation equals the
        ground truth exactly (no refinement)."""
        index = FBIndex(document)
        evaluator = FBEvaluator(index)
        twig = twig_of(query)
        expected = sorted(e.node_id for e in matching_elements(twig, document))
        assert evaluator.evaluate(twig) == expected

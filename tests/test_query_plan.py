"""Tests for query plans, the plan cache, pruning-phase accounting, and
the per-query metrics log (DESIGN.md §8)."""

from __future__ import annotations

import pytest

from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    PlanCache,
    QueryMetricsLog,
    build_plan,
)
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

SITE_XML = (
    "<site><regions><asia>"
    "<item><name/><mailbox><mail><to/></mail></mailbox></item>"
    "<item><payment/><quantity/></item>"
    "</asia></regions><people>"
    "<person><name/><emailaddress/><phone/></person>"
    "</people></site>"
)


def site_store(documents: int = 4) -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for _ in range(documents):
        store.add_document(parse_xml(SITE_XML))
    return store


class TestPlanCache:
    def test_second_query_hits_the_cache(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index)
        first = processor.query("//item[name]/mailbox")
        second = processor.query("//item[name]/mailbox")
        assert not first.plan_cached
        assert second.plan_cached
        assert second.results == first.results
        assert processor.plan_cache.hits == 1

    def test_mutation_invalidates_cached_plans(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index)
        processor.query("//item[name]")
        doc_id = index.add_document(parse_xml(SITE_XML))
        refreshed = processor.query("//item[name]")
        assert not refreshed.plan_cached  # generation bumped -> replanned
        assert any(p.doc_id == doc_id for p in refreshed.results)
        index.remove_document(doc_id)
        assert not processor.query("//item[name]").plan_cached

    def test_sourceless_twigs_are_never_cached(self):
        import dataclasses

        index = FixIndex.build(site_store(1), FixIndexConfig(depth_limit=4))
        cache = PlanCache()
        plan = build_plan(index, twig_of("//item[name]"))
        cache.put(dataclasses.replace(plan, source=""))
        assert len(cache) == 0

    def test_cache_is_a_bounded_lru(self):
        index = FixIndex.build(site_store(1), FixIndexConfig(depth_limit=4))
        cache = PlanCache(capacity=2)
        for query in ["//item", "//person", "//item/mailbox"]:
            cache.put(build_plan(index, query))
        assert len(cache) == 2
        assert cache.get("//item", index.generation) is None  # evicted
        assert cache.get("//person", index.generation) is not None

    def test_cache_shared_between_processors(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        shared = PlanCache()
        first = FixQueryProcessor(index, plan_cache=shared)
        second = FixQueryProcessor(index, plan_cache=shared)
        first.query("//person[name]")
        assert second.query("//person[name]").plan_cached

    def test_disabled_cache_replans_every_time(self):
        index = FixIndex.build(site_store(1), FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index, plan_cache=False)
        processor.query("//item")
        assert not processor.query("//item").plan_cached


class TestPruningPhaseAccounting:
    def test_rooted_query_candidates_match_prune_output(self):
        # Satellite: the non-root-candidate filter for '/'-rooted queries
        # on depth-limited indexes runs *inside* the pruning phase, so
        # candidate_count == len(prune()) and the false-positive count
        # never goes negative.
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index)
        twig = twig_of("/site/people")
        candidates = processor.prune(twig)
        assert candidates  # the roots survive
        assert all(e.pointer.node_id == 0 for e in candidates)
        result = processor.query(twig)
        assert result.candidate_count == len(candidates)
        assert result.false_positive_count >= 0
        assert result.result_count <= result.candidate_count

    def test_intersection_matches_naive_reference(self):
        # Satellite: the incremental most-selective-first intersection
        # must produce exactly the naive all-fragments intersection.
        store = PrimaryXMLStore()
        for i in range(8):
            extra = "<keywords/>" if i % 2 else ""
            body = "<section><figure/></section>" if i % 3 else "<section/>"
            store.add_document(
                parse_xml(
                    f"<article><prolog>{extra}</prolog>"
                    f"<body>{body}</body></article>"
                )
            )
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        processor = FixQueryProcessor(index)
        twig = twig_of("//article[.//figure][.//keywords]")
        plan = processor.plan_for(twig)
        assert len(plan.fragments) > 1
        naive = None
        for key, anchored in zip(plan.feature_keys, plan.anchored):
            pointers = {
                e.pointer
                for e in index.candidates_for_key(key, anchored=anchored)
            }
            naive = pointers if naive is None else naive & pointers
        assert {e.pointer for e in processor.prune(twig)} == naive


class TestMetricsLog:
    def test_records_every_query(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        log = QueryMetricsLog()
        processor = FixQueryProcessor(index, metrics_log=log)
        processor.query("//item[name]")
        processor.query("//item[name]")
        processor.query("//person[phone]")
        assert len(log) == 3
        assert log.total_queries == 3
        assert log.records[0].source == "//item[name]"
        assert not log.records[0].plan_cached
        assert log.records[1].plan_cached
        summary = log.summary()
        assert summary["queries"] == 3
        assert summary["plan_cache_hit_rate"] == pytest.approx(1 / 3)
        assert summary["candidates"] >= summary["results"]
        assert 0.0 <= summary["avg_false_positive_rate"] <= 1.0

    def test_window_eviction_keeps_total(self):
        index = FixIndex.build(site_store(1), FixIndexConfig(depth_limit=4))
        log = QueryMetricsLog(capacity=2)
        processor = FixQueryProcessor(index, metrics_log=log)
        for _ in range(5):
            processor.query("//item")
        assert len(log) == 2
        assert log.total_queries == 5

    def test_empty_summary(self):
        assert QueryMetricsLog().summary() == {"queries": 0}

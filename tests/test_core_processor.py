"""Tests for the two-phase query processor (Algorithm 2), metrics, and
the optimizer histogram — including end-to-end property tests that the
final answers equal the ground truth."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FeatureHistogram,
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    evaluate_pruning,
)
from repro.core.metrics import classify_selectivity, MetricAverages, true_result_units
from repro.query import matching_elements, query_matches_document, twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element, parse_xml

SITE_XML = (
    "<site>"
    "<regions>"
    "<asia>"
    "<item><name/><mailbox><mail><to/><text/></mail></mailbox></item>"
    "<item><name/><payment/><mailbox><mail><to/></mail></mailbox></item>"
    "<item><payment/><quantity/></item>"
    "</asia>"
    "<europe><item><name/><payment/></item></europe>"
    "</regions>"
    "<people>"
    "<person><name/><emailaddress/><phone/></person>"
    "<person><name/><emailaddress/></person>"
    "<person><phone/></person>"
    "</people>"
    "</site>"
)


def site_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    store.add_document(parse_xml(SITE_XML))
    return store


def collection_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for i in range(6):
        extra = "<keywords/>" if i % 2 else ""
        body = "<section><figure/></section>" if i % 3 else "<section/>"
        store.add_document(
            parse_xml(f"<article><prolog>{extra}</prolog><body>{body}</body></article>")
        )
    return store


SITE_QUERIES = [
    "//item[name]/mailbox",
    "//item[payment][quantity]",
    "//person[emailaddress][phone]",
    "//item/mailbox/mail",
    "//person[name]",
    "//item[missing]",
    "/site/people",
]


class TestDepthLimitedPipeline:
    @pytest.mark.parametrize("query", SITE_QUERIES)
    def test_results_equal_ground_truth(self, query):
        store = site_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index)
        document = store.get_document(0)
        twig = twig_of(query)
        expected = {e.node_id for e in matching_elements(twig, document)}
        got = {p.node_id for p in processor.query(twig).results}
        assert got == expected

    @pytest.mark.parametrize("query", SITE_QUERIES)
    def test_clustered_results_equal_unclustered(self, query):
        store = site_store()
        unclustered = FixQueryProcessor(
            FixIndex.build(store, FixIndexConfig(depth_limit=4))
        )
        clustered = FixQueryProcessor(
            FixIndex.build(store, FixIndexConfig(depth_limit=4, clustered=True))
        )
        left = {p.node_id for p in unclustered.query(query).results}
        right = {p.node_id for p in clustered.query(query).results}
        assert left == right

    def test_candidate_count_bounds_results(self):
        store = site_store()
        processor = FixQueryProcessor(
            FixIndex.build(store, FixIndexConfig(depth_limit=4))
        )
        result = processor.query("//item[name]/mailbox")
        assert result.result_count <= result.candidate_count
        assert result.false_positive_count >= 0

    def test_decomposed_query_uses_top_twig_only(self):
        store = site_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index)
        # //item[.//to] decomposes into //item (top) and //to.
        twig = twig_of("//item[.//to]")
        candidates = processor.prune(twig)
        item_entries = [e for e in index.iter_entries() if e.key.root_label == "item"]
        assert len(candidates) == len(item_entries)
        # Refinement against primary storage still gets the right answer.
        document = store.get_document(0)
        expected = {e.node_id for e in matching_elements(twig, document)}
        got = {p.node_id for p in processor.query(twig).results}
        assert got == expected

    def test_timings_recorded(self):
        processor = FixQueryProcessor(
            FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        )
        result = processor.query("//item/mailbox")
        assert result.prune_seconds >= 0.0
        assert result.refine_seconds >= 0.0


class TestCollectionPipeline:
    def test_results_are_matching_documents(self):
        store = collection_store()
        processor = FixQueryProcessor(
            FixIndex.build(store, FixIndexConfig(depth_limit=0))
        )
        twig = twig_of("//article[prolog/keywords]")
        expected = {
            doc_id
            for doc_id in store.doc_ids()
            if query_matches_document(twig, store.get_document(doc_id))
        }
        got = {p.doc_id for p in processor.query(twig).results}
        assert got == expected

    def test_decomposed_fragments_intersect(self):
        store = collection_store()
        processor = FixQueryProcessor(
            FixIndex.build(store, FixIndexConfig(depth_limit=0))
        )
        twig = twig_of("//article[.//figure][.//keywords]")
        expected = {
            doc_id
            for doc_id in store.doc_ids()
            if query_matches_document(twig, store.get_document(doc_id))
        }
        result = processor.query(twig)
        got = {p.doc_id for p in result.results}
        assert got == expected
        # Intersection must prune at least as hard as the weakest fragment.
        single = processor.prune(twig_of("//article[.//figure]"))
        assert result.candidate_count <= len(single)


class TestValuePipeline:
    def make(self, clustered: bool = False) -> FixQueryProcessor:
        store = PrimaryXMLStore()
        store.add_document(
            parse_xml(
                "<dblp>"
                "<proceedings><publisher>Springer</publisher><title/></proceedings>"
                "<proceedings><publisher>ACM</publisher><title/></proceedings>"
                "<inproceedings><year>1998</year><title/><author/></inproceedings>"
                "<inproceedings><year>2003</year><title/><author/></inproceedings>"
                "</dblp>"
            )
        )
        index = FixIndex.build(
            store,
            FixIndexConfig(depth_limit=4, value_buckets=16, clustered=clustered),
        )
        return FixQueryProcessor(index)

    @pytest.mark.parametrize("clustered", [False, True])
    @pytest.mark.parametrize(
        "query, expected_count",
        [
            ('//proceedings[publisher = "Springer"][title]', 1),
            ('//inproceedings[year = "1998"][title]/author', 1),
            ('//proceedings[publisher = "Elsevier"]', 0),
        ],
    )
    def test_value_queries(self, clustered, query, expected_count):
        processor = self.make(clustered)
        assert processor.query(query).result_count == expected_count


class TestMetrics:
    def test_formulas(self):
        store = site_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        metrics = evaluate_pruning(index, "//person[emailaddress][phone]")
        assert metrics.ent == index.entry_count
        assert 0 <= metrics.rst <= metrics.cdt <= metrics.ent
        assert metrics.sel == pytest.approx(1 - metrics.rst / metrics.ent)
        assert metrics.pp == pytest.approx(1 - metrics.cdt / metrics.ent)
        assert metrics.fpr == pytest.approx(1 - metrics.rst / metrics.cdt)
        assert metrics.false_negatives == 0

    def test_empty_candidate_set(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        metrics = evaluate_pruning(index, "//zzz")
        assert metrics.cdt == 0 and metrics.rst == 0
        assert metrics.fpr == 0.0
        assert metrics.pp == 1.0

    def test_true_units_collection_mode(self):
        store = collection_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        units = true_result_units(index, twig_of("//article[prolog/keywords]"))
        assert all(p.node_id == 0 for p in units)

    def test_averages(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        averages = MetricAverages()
        for query in SITE_QUERIES[:4]:
            averages.add(evaluate_pruning(index, query))
        assert averages.queries == 4
        assert 0 <= averages.avg_pp <= 1
        assert 0 <= averages.avg_sel <= 1

    def test_classification(self):
        assert classify_selectivity(0.99) == "hi"
        assert classify_selectivity(0.5) == "md"
        assert classify_selectivity(0.1) == "lo"


class TestPluggableRefiner:
    """The paper: FIX 'can be coupled with any path processing operator
    that can perform query refinement'.  Both shipped engines must give
    identical final answers through the processor."""

    @pytest.mark.parametrize("query", SITE_QUERIES)
    @pytest.mark.parametrize("clustered", [False, True])
    def test_structural_join_refiner_equals_navigational(self, query, clustered):
        from repro.engine import StructuralJoinEngine

        store = site_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=clustered)
        )
        navigational = FixQueryProcessor(index)
        join_based = FixQueryProcessor(
            index, refiner=StructuralJoinEngine(store)
        )
        left = {p.node_id for p in navigational.query(query).results}
        right = {p.node_id for p in join_based.query(query).results}
        assert left == right

    def test_structural_join_refine_methods(self):
        from repro.engine import StructuralJoinEngine
        from repro.storage import NodePointer

        store = site_store()
        engine = StructuralJoinEngine(store)
        document = store.get_document(0)
        item = next(document.root.find_all("item"))
        good = twig_of("//item[name]/mailbox").with_child_leading_axis()
        bad = twig_of("//item/zzz").with_child_leading_axis()
        assert engine.refine(good, item)
        assert not engine.refine(bad, item)
        assert engine.refine_pointer(good, NodePointer(0, item.node_id))


class TestTheorem5GapInTheWild:
    """The Theorem 5 completeness gap (DESIGN.md §5a) observed on a
    minimal XMark-like recursive structure, as found by the Figure 5
    random-query harness.  This pins the *measured* behaviour of the
    algorithm as published: the metrics layer detects and counts the
    lost answer instead of silently reporting perfect completeness.

    Whether a particular instance sits on the lossy side of the gap is
    knife-edge-sensitive to the integer edge-weight codes, which the
    encoder assigns first-seen (document order).  The sibling order
    below — shallow ``listitem`` before the recursive one — makes
    ``(listitem, text)`` encode below ``(listitem, parlist)``, which
    puts this instance on the lossy side: the outer ``parlist``'s
    indexed λ_max is 6.325 against the query's 6.405."""

    RECURSIVE_XML = (
        "<site><description>"
        "<parlist>"
        "<listitem><text/></listitem>"
        "<listitem><parlist><listitem><text/></listitem></parlist></listitem>"
        "</parlist>"
        "</description></site>"
    )

    def test_recursive_parlist_false_negative_is_counted(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.RECURSIVE_XML))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=6))
        metrics = evaluate_pruning(index, "//parlist/listitem/parlist/listitem")
        # The query truly matches (the outer parlist binds):
        assert metrics.rst == 1
        # ...but the published feature key prunes it:
        assert metrics.false_negatives == 1
        assert metrics.cdt < metrics.rst + metrics.cdt  # candidates miss it

    def test_nonrecursive_variant_is_complete(self):
        # Remove the sibling that shares the deep class and the extra
        # bisimulation edge disappears; completeness holds again.
        xml = (
            "<site><description><parlist>"
            "<listitem><parlist><listitem><text/></listitem></parlist></listitem>"
            "</parlist></description></site>"
        )
        store = PrimaryXMLStore()
        store.add_document(parse_xml(xml))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=6))
        metrics = evaluate_pruning(index, "//parlist/listitem/parlist/listitem")
        assert metrics.rst == 1
        assert metrics.false_negatives == 0


class TestHistogram:
    def test_estimates_bracket_exact_counts(self):
        store = site_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        histogram = FeatureHistogram(index, buckets=16)
        for query in ["//item[name]", "//person[phone]", "//item/mailbox/mail"]:
            key = index.query_features(twig_of(query))
            exact = sum(1 for _ in index.candidates_for_key(key))
            estimate = histogram.estimate_candidates(key)
            # Equi-width histograms are approximate; require the estimate
            # to be within one bucket's worth of the truth.
            label_total = sum(
                1 for e in index.iter_entries() if e.key.root_label == key.root_label
            )
            assert abs(estimate - exact) <= max(2.0, label_total / 4)

    def test_unknown_label_estimates_zero(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        histogram = FeatureHistogram(index)
        key = index.query_features(twig_of("//zzz"))
        assert histogram.estimate_candidates(key) == 0.0

    def test_labels_listing(self):
        index = FixIndex.build(site_store(), FixIndexConfig(depth_limit=4))
        histogram = FeatureHistogram(index)
        assert "item" in histogram.labels()


# --------------------------------------------------------------------- #
# End-to-end property: completeness on recursion-free data
# --------------------------------------------------------------------- #

_LABELS = ["r", "s", "t", "u", "v", "w"]


@st.composite
def stratified_documents(draw) -> Document:
    """Random trees whose labels are stratified by level, so no label
    repeats along any root-to-leaf path — the regime where the paper's
    Theorem 5 argument is airtight (see DESIGN.md §5a)."""
    root = Element(_LABELS[0])
    frontier = [root]
    for level in range(1, len(_LABELS)):
        next_frontier: list[Element] = []
        for parent in frontier:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                next_frontier.append(parent.add_element(_LABELS[level]))
        if not next_frontier:
            break
        frontier = next_frontier[:6]
    return Document(root)


@st.composite
def stratified_twigs(draw) -> str:
    """Child-axis twigs over the stratified alphabet, starting at a
    random level."""
    start = draw(st.integers(min_value=0, max_value=3))
    parts = ["//", _LABELS[start]]
    level = start
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        if level + 1 >= len(_LABELS):
            break
        level += 1
        if draw(st.booleans()):
            parts.append(f"[{_LABELS[level]}]")
        else:
            parts.extend(["/", _LABELS[level]])
    return "".join(parts)


class TestCompletenessProperty:
    @settings(max_examples=50, deadline=None)
    @given(stratified_documents(), stratified_twigs(), st.booleans())
    def test_no_false_negatives_and_exact_results(self, document, query, clustered):
        store = PrimaryXMLStore()
        store.add_document(document)
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=clustered)
        )
        twig = twig_of(query)
        if not index.covers(twig):
            return
        metrics = evaluate_pruning(index, twig)
        assert metrics.false_negatives == 0
        processor = FixQueryProcessor(index)
        got = {p.node_id for p in processor.query(twig).results}
        expected = {e.node_id for e in matching_elements(twig, document)}
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(stratified_documents(), stratified_twigs())
    def test_collection_mode_completeness(self, document, query):
        store = PrimaryXMLStore()
        store.add_document(document)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        twig = twig_of(query)
        metrics = evaluate_pruning(index, twig)
        assert metrics.false_negatives == 0

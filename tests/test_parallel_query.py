"""Determinism tests for grouped and parallel refinement (DESIGN.md §8).

The refinement verdict for a candidate is a pure function of (query,
unit tree), so the final pointer-ordered result list must be identical
— element for element — for any worker count, for grouped vs ungrouped
refinement, and for either refinement engine, on every index variant.
"""

from __future__ import annotations

import pytest

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.engine import StructuralJoinEngine
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

WORKER_COUNTS = [1, 2, 4]

QUERIES = [
    "//item[name]/mailbox",
    "//item[payment][quantity]",
    "//person[emailaddress][phone]",
    "//item/mailbox/mail",
    "/site/people",
    "//item[missing]",
]


def varied_store(documents: int = 12) -> PrimaryXMLStore:
    """Structurally varied site documents so candidate groups span many
    documents and some candidates are false positives."""
    store = PrimaryXMLStore()
    for i in range(documents):
        mailbox = "<mailbox><mail><to/></mail></mailbox>" if i % 2 else ""
        payment = "<payment/><quantity/>" if i % 3 else "<payment/>"
        phone = "<phone/>" if i % 2 else ""
        store.add_document(
            parse_xml(
                "<site><regions><asia>"
                f"<item><name/>{mailbox}</item>"
                f"<item>{payment}</item>"
                "</asia></regions><people>"
                f"<person><name/><emailaddress/>{phone}</person>"
                "</people></site>"
            )
        )
    return store


def values_store(documents: int = 10) -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    publishers = ["Springer", "ACM", "Elsevier"]
    for i in range(documents):
        store.add_document(
            parse_xml(
                "<dblp><proceedings>"
                f"<publisher>{publishers[i % 3]}</publisher><title/>"
                "</proceedings></dblp>"
            )
        )
    return store


def assert_pointer_ordered(results) -> None:
    assert results == sorted(results)


class TestWorkerDeterminism:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(FixIndexConfig(depth_limit=4), id="depth-limited"),
            pytest.param(
                FixIndexConfig(depth_limit=4, clustered=True), id="clustered"
            ),
            pytest.param(FixIndexConfig(depth_limit=0), id="collection"),
        ],
    )
    def test_results_identical_for_any_worker_count(self, query, config):
        store = varied_store()
        index = FixIndex.build(store, config)
        baseline = FixQueryProcessor(index, grouped=False).query(query).results
        assert_pointer_ordered(baseline)
        for workers in WORKER_COUNTS:
            result = FixQueryProcessor(index, workers=workers).query(query)
            assert result.results == baseline, (query, workers)
            assert_pointer_ordered(result.results)
            assert result.workers == workers

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_structural_join_refiner_parallel(self, workers):
        store = varied_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        baseline = FixQueryProcessor(
            index, refiner=StructuralJoinEngine(store), grouped=False
        )
        parallel = FixQueryProcessor(
            index, refiner=StructuralJoinEngine(store), workers=workers
        )
        for query in QUERIES:
            assert (
                parallel.query(query).results == baseline.query(query).results
            ), query

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_value_extended_index_parallel(self, workers):
        store = values_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, value_buckets=16)
        )
        serial = FixQueryProcessor(index, grouped=False)
        parallel = FixQueryProcessor(index, workers=workers)
        for query in [
            '//proceedings[publisher = "Springer"][title]',
            '//proceedings[publisher = "Elsevier"]',
        ]:
            assert parallel.query(query).results == serial.query(query).results

    def test_collection_descendant_queries_parallel(self):
        # '//'-led queries on a collection index keep their leading '//'
        # at refinement (whole-document evaluation per group).
        store = varied_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        for query in ["//item[name]", "//person[.//phone]"]:
            baseline = FixQueryProcessor(index, grouped=False).query(query).results
            for workers in WORKER_COUNTS:
                got = FixQueryProcessor(index, workers=workers).query(query).results
                assert got == baseline, (query, workers)

    def test_custom_refiner_falls_back_to_in_process_grouping(self):
        # An engine the worker pool can't reconstruct still works — the
        # processor silently refines grouped but in-process.
        class WrappedEngine(StructuralJoinEngine):
            pass

        store = varied_store(6)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index, refiner=WrappedEngine(store), workers=4)
        baseline = FixQueryProcessor(index, grouped=False)
        for query in QUERIES[:3]:
            assert processor.query(query).results == baseline.query(query).results


class TestGroupedFetchAccounting:
    def test_grouped_fetches_each_document_once(self):
        store = varied_store(8)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        grouped = FixQueryProcessor(index).query("//item[name]/mailbox")
        ungrouped = FixQueryProcessor(index, grouped=False).query(
            "//item[name]/mailbox"
        )
        assert grouped.results == ungrouped.results
        # One fetch per distinct candidate document, never more than the
        # ungrouped per-candidate count.
        distinct_docs = len({p.doc_id for p in grouped.results}) or 0
        assert grouped.documents_fetched <= ungrouped.documents_fetched
        assert grouped.documents_fetched >= distinct_docs
        assert ungrouped.documents_fetched == ungrouped.candidate_count

    def test_clustered_groups_count_copy_units(self):
        store = varied_store(8)
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True)
        )
        result = FixQueryProcessor(index).query("//item[name]")
        # Clustered candidates refine against their own copy unit.
        assert result.documents_fetched == result.candidate_count

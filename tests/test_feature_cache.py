"""Tests for the cross-document spectral feature cache (DESIGN.md §8).

Covers the soundness contract: a warm (cached) build must produce keys
byte-identical to a cold (uncached) build; cache statistics must be
monotone and consistent; and the all-covering fallback — a cap artifact,
not a pattern feature — must never enter the cache.
"""

from __future__ import annotations

import random

import pytest

from repro.bisim import (
    BisimGraphBuilder,
    depth_limited_graph,
    depth_signature,
    reachable_vertices,
    vertex_signature,
)
from repro.core import FixIndex, FixIndexConfig
from repro.datasets import load_dataset
from repro.spectral import ALL_COVERING_RANGE, FeatureCache, FeatureKey, FeatureRange
from repro.spectral.cache import pattern_signature
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element, parse_xml, tree_events


def dblp_like_store(documents: int = 4, scale: float = 0.01) -> PrimaryXMLStore:
    """Several DBLP-like slices: the regular, repetitive shape the cache
    is built for."""
    store = PrimaryXMLStore()
    for offset in range(documents):
        for document in load_dataset("dblp", scale=scale, seed=91 + offset).documents:
            store.add_document(document)
    return store


def entry_keys(index: FixIndex) -> list[tuple[bytes, bytes]]:
    return [(key, value) for key, value in index.btree.items()]


class TestWarmEqualsCold:
    def test_cached_build_keys_identical_to_uncached(self):
        store = dblp_like_store()
        cold = FixIndex.build(
            store, FixIndexConfig(depth_limit=6, feature_cache=False)
        )
        warm = FixIndex.build(
            store, FixIndexConfig(depth_limit=6, feature_cache=True)
        )
        assert entry_keys(cold) == entry_keys(warm)
        # The corpus repeats structures across documents, so the cache
        # must actually have been exercised, not just harmless.
        assert warm.report.stats.cache_hits > 0
        assert (
            warm.report.stats.eigen_computations
            < cold.report.stats.eigen_computations
        )

    def test_cached_build_keys_identical_with_values(self):
        store = dblp_like_store(documents=2)
        config = dict(depth_limit=6, value_buckets=16)
        cold = FixIndex.build(
            store, FixIndexConfig(feature_cache=False, **config)
        )
        warm = FixIndex.build(
            store, FixIndexConfig(feature_cache=True, **config)
        )
        assert entry_keys(cold) == entry_keys(warm)

    def test_unit_mode_cache_shares_across_identical_documents(self):
        # depth_limit=0: one unit entry per document; identical documents
        # must collapse to one eigen computation.
        store = PrimaryXMLStore()
        for _ in range(5):
            store.add_document(
                parse_xml("<bib><article><title/><author/></article></bib>")
            )
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=0, feature_cache=True)
        )
        assert index.report.stats.eigen_computations == 1
        assert index.report.stats.cache_hits == 4


class TestCacheStats:
    def test_stats_monotone_and_consistent(self):
        store = dblp_like_store(documents=3)
        generatorless_hits = 0
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=6, feature_cache=True)
        )
        stats = index.report.stats
        assert stats.cache_hits > generatorless_hits
        assert stats.cache_misses > 0
        # Every miss that succeeded became an eigen computation; the
        # oversized fallbacks account for the remainder.
        assert stats.eigen_computations + stats.oversized_patterns == (
            stats.cache_misses
        )
        cache = index.feature_cache
        assert cache is not None
        assert cache.hits == stats.cache_hits
        assert cache.misses == stats.cache_misses
        assert len(cache) == stats.eigen_computations

    def test_lookup_counts_hits_and_misses(self):
        cache = FeatureCache()
        key = FeatureKey("a", FeatureRange(-1.0, 1.0))
        assert cache.lookup(b"sig") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store(b"sig", key)
        assert cache.lookup(b"sig") is key
        assert (cache.hits, cache.misses) == (1, 1)
        assert b"sig" in cache and len(cache) == 1

    def test_disabled_cache_reports_zero(self):
        store = dblp_like_store(documents=2)
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=6, feature_cache=False)
        )
        assert index.feature_cache is None
        assert index.report.stats.cache_hits == 0
        assert index.report.stats.cache_misses == 0


class TestAllCoveringNeverCached:
    def test_store_rejects_all_covering(self):
        cache = FeatureCache()
        with pytest.raises(ValueError):
            cache.store(b"sig", FeatureKey("a", ALL_COVERING_RANGE))

    def test_oversized_fallbacks_bypass_cache(self):
        # A pattern over the vertex cap falls back to the all-covering
        # range; the cache must stay empty and every repeat must re-miss.
        store = PrimaryXMLStore()
        for _ in range(2):
            store.add_document(parse_xml(
                "<root>" + "".join(
                    f"<kid{i}><leaf/></kid{i}>" for i in range(12)
                ) + "</root>"
            ))
        index = FixIndex.build(
            store,
            FixIndexConfig(
                depth_limit=4, feature_cache=True, max_pattern_vertices=4
            ),
        )
        stats = index.report.stats
        assert stats.oversized_patterns > 0
        cache = index.feature_cache
        assert cache is not None
        for key in cache._entries.values():
            assert not key.range.is_all_covering()
        # Fallbacks still produce entries keyed by the artificial range.
        fallback_entries = [
            entry for entry in index.iter_entries()
            if entry.key.range.is_all_covering()
        ]
        assert fallback_entries


class TestDepthSignature:
    """The skip-unfold invariant: the signature computed directly on the
    source vertex equals the signature of the unfolded, re-minimized
    pattern — this is what makes cache keys independent of the path
    (direct vs unfolded) that produced them."""

    LABELS = "abcd"

    def _random_tree(self, rng: random.Random, depth: int) -> Element:
        element = Element(rng.choice(self.LABELS))
        if depth > 0:
            for _ in range(rng.randint(0, 3)):
                element.append(self._random_tree(rng, depth - 1))
        return element

    def test_matches_unfolded_signature_on_random_trees(self):
        rng = random.Random(5)
        for _ in range(25):
            document = Document(self._random_tree(rng, 5))
            builder = BisimGraphBuilder()
            builder.feed_all(tree_events(document.root))
            graph = builder.finish()
            memo: dict[tuple[int, int], bytes] = {}
            for vertex in reachable_vertices(graph.root):
                for limit in (1, 2, 3, 6):
                    direct = depth_signature(vertex, limit, memo)
                    unfolded = depth_limited_graph(vertex, limit)
                    assert direct == vertex_signature(unfolded.root)

    def test_truncation_merges_children(self):
        # Two children that differ only below the cut must collapse to
        # one digest — the set-dedup that re-minimization performs.
        document = Document(
            parse_xml("<r><a><x><y/></x></a><a><x><z/></x></a></r>").root
        )
        builder = BisimGraphBuilder()
        builder.feed_all(tree_events(document.root))
        graph = builder.finish()
        # At depth 2 the two <a> subtrees look identical (both <a><x/>).
        assert depth_signature(graph.root, 2) == pattern_signature(
            depth_limited_graph(graph.root, 2)
        )

    def test_unlimited_depth_equals_vertex_signature(self):
        document = Document(parse_xml("<r><a><b/></a><c/></r>").root)
        builder = BisimGraphBuilder()
        builder.feed_all(tree_events(document.root))
        graph = builder.finish()
        assert depth_signature(graph.root, 0) == vertex_signature(graph.root)

"""Unit tests for bisimulation-graph construction, the traveler, and DAG
utilities.  These pin down the Section 2.2 semantics, including the
paper's own worked example (Figure 2)."""

from __future__ import annotations

import pytest

from repro.errors import BisimulationError, PatternTooLargeError
from repro.bisim import (
    BisimGraphBuilder,
    bisim_graph_of_document,
    canonical_key,
    depth_limited_graph,
    edge_count,
    graphs_isomorphic,
    reachable_vertices,
    topological_order,
    traveler_events,
)
from repro.xmltree import CloseEvent, OpenEvent, TextEvent, parse_xml

# The Figure 1 bibliography document.  Its bisimulation graph (Figure 2)
# merges the book and inproceedings authors (both have only an
# affiliation child) while keeping the two article authors separate.
FIGURE1_XML = (
    "<bib>"
    "<article><author><address/><email/></author><title/></article>"
    "<article><author><email/><affiliation/></author><title/></article>"
    "<book><author><affiliation/><phone/></author><title/></book>"
    "<www><title/><author><email/></author></www>"
    "<inproceedings><author><affiliation/><phone/></author><title/></inproceedings>"
    "</bib>"
)


def graph_of(xml: str, **kwargs):
    return bisim_graph_of_document(parse_xml(xml), **kwargs)


class TestBasicConstruction:
    def test_single_element(self):
        graph = graph_of("<a/>")
        assert graph.vertex_count() == 1
        assert graph.root.label == "a"
        assert graph.root.is_leaf()
        assert graph.depth() == 1

    def test_identical_siblings_merge(self):
        graph = graph_of("<a><b/><b/><b/></a>")
        assert graph.vertex_count() == 2
        assert graph.root.out_degree() == 1
        assert graph.root.children[0].extent_size == 3

    def test_distinct_subtrees_stay_separate(self):
        graph = graph_of("<a><b><c/></b><b><d/></b></a>")
        # a, b[c], b[d], c, d -> 5 classes
        assert graph.vertex_count() == 5
        labels = sorted(v.label for v in graph.vertices)
        assert labels == ["a", "b", "b", "c", "d"]

    def test_merging_is_by_child_set_not_multiset(self):
        # <b><c/><c/></b> and <b><c/></b> have the same child *set* {c},
        # so downward bisimulation merges them.
        graph = graph_of("<a><b><c/><c/></b><b><c/></b></a>")
        assert graph.vertex_count() == 3

    def test_depth_matches_tree_depth_for_trees_without_sharing(self):
        doc = parse_xml("<a><b><c><d/></c></b></a>")
        graph = bisim_graph_of_document(doc)
        assert graph.depth() == doc.max_depth() == 4

    def test_extent_sizes_sum_to_element_count(self):
        doc = parse_xml(FIGURE1_XML)
        graph = bisim_graph_of_document(doc)
        assert sum(v.extent_size for v in graph.vertices) == doc.element_count()

    def test_recorded_extents_are_preorder_ids(self):
        doc = parse_xml("<a><b/><b/></a>")
        graph = bisim_graph_of_document(doc, record_extents=True)
        b_vertex = next(v for v in graph.vertices if v.label == "b")
        ids = sorted(e.node_id for e in doc.root.find_all("b"))
        assert sorted(b_vertex.extent) == ids


class TestFigure2Example:
    """The paper's Figure 1 -> Figure 2 construction."""

    def test_figure2_has_fifteen_vertices(self):
        # Figure 2's caption-level claim: the example matrix is 15x15
        # "because there are 15 vertices in the graph".
        graph = graph_of(FIGURE1_XML)
        assert graph.vertex_count() == 15

    def test_book_and_inproceedings_authors_merge(self):
        # Section 2.2: "the bisimulation graph clusters the two author
        # vertices from book and inproceedings into one equivalence class".
        graph = graph_of(FIGURE1_XML)
        author_classes = [v for v in graph.vertices if v.label == "author"]
        assert len(author_classes) == 4
        merged = next(
            v
            for v in author_classes
            if frozenset(c.label for c in v.children) == {"affiliation", "phone"}
        )
        assert merged.extent_size == 2

    def test_all_title_leaves_merge(self):
        graph = graph_of(FIGURE1_XML)
        titles = [v for v in graph.vertices if v.label == "title"]
        assert len(titles) == 1
        assert titles[0].extent_size == 5


class TestBuilderStreaming:
    def test_close_returns_vertex_and_pointer(self):
        builder = BisimGraphBuilder()
        assert builder.feed(OpenEvent("a", 7)) is None
        result = builder.feed(CloseEvent("a"))
        assert result is not None
        vertex, ptr = result
        assert vertex.label == "a"
        assert ptr == 7

    def test_one_result_per_element(self):
        doc = parse_xml(FIGURE1_XML)
        from repro.xmltree import tree_events

        builder = BisimGraphBuilder()
        closed = [r for r in map(builder.feed, tree_events(doc.root)) if r]
        assert len(closed) == doc.element_count()

    def test_mismatched_close_raises(self):
        builder = BisimGraphBuilder()
        builder.feed(OpenEvent("a", 0))
        with pytest.raises(BisimulationError):
            builder.feed(CloseEvent("b"))

    def test_orphan_close_raises(self):
        with pytest.raises(BisimulationError):
            BisimGraphBuilder().feed(CloseEvent("a"))

    def test_unfinished_stream_raises(self):
        builder = BisimGraphBuilder()
        builder.feed(OpenEvent("a", 0))
        with pytest.raises(BisimulationError):
            builder.finish()

    def test_empty_stream_raises(self):
        with pytest.raises(BisimulationError):
            BisimGraphBuilder().finish()

    def test_forest_gets_synthetic_root(self):
        builder = BisimGraphBuilder()
        for label in ("a", "b"):
            builder.feed(OpenEvent(label, 0))
            builder.feed(CloseEvent(label))
        graph = builder.finish()
        assert graph.root.label == BisimGraphBuilder.FOREST_LABEL
        assert {c.label for c in graph.root.children} == {"a", "b"}

    def test_text_ignored_without_mapping(self):
        builder = BisimGraphBuilder()
        builder.feed(OpenEvent("a", 0))
        builder.feed(TextEvent("hello", 1))
        builder.feed(CloseEvent("a"))
        graph = builder.finish()
        assert graph.vertex_count() == 1

    def test_text_becomes_leaf_with_mapping(self):
        builder = BisimGraphBuilder(text_label=lambda value: f"#v{len(value)}")
        builder.feed(OpenEvent("a", 0))
        builder.feed(TextEvent("hello", 1))
        builder.feed(CloseEvent("a"))
        graph = builder.finish()
        assert graph.vertex_count() == 2
        assert graph.root.children[0].label == "#v5"


class TestTraveler:
    def test_unlimited_unfolding_reproduces_graph(self):
        graph = graph_of(FIGURE1_XML)
        again = depth_limited_graph(graph.root, 0)
        assert graphs_isomorphic(graph, again)

    def test_depth_one_is_just_the_root(self):
        graph = graph_of(FIGURE1_XML)
        limited = depth_limited_graph(graph.root, 1)
        assert limited.vertex_count() == 1
        assert limited.root.label == "bib"

    def test_depth_two_truncation_reminimizes(self):
        # Depth-2 view of <a><b><c/></b><b><d/></b></a> at the root: both
        # b classes truncate to a childless b, so they must re-merge.
        graph = graph_of("<a><b><c/></b><b><d/></b></a>")
        limited = depth_limited_graph(graph.root, 2)
        assert limited.vertex_count() == 2
        assert limited.depth() == 2

    def test_event_stream_is_balanced(self):
        graph = graph_of(FIGURE1_XML)
        events = list(traveler_events(graph.root, 3))
        opens = sum(1 for e in events if isinstance(e, OpenEvent))
        closes = sum(1 for e in events if isinstance(e, CloseEvent))
        assert opens == closes > 0

    def test_max_opens_cap(self):
        graph = graph_of(FIGURE1_XML)
        with pytest.raises(PatternTooLargeError):
            list(traveler_events(graph.root, 0, max_opens=3))

    def test_depth_limit_bounds_result_depth(self):
        graph = graph_of(FIGURE1_XML)
        for limit in (1, 2, 3, 4):
            limited = depth_limited_graph(graph.root, limit)
            assert limited.depth() == min(limit, graph.depth())


class TestDagUtilities:
    def test_topological_order_parents_first(self):
        graph = graph_of(FIGURE1_XML)
        position = {v.vid: i for i, v in enumerate(topological_order(graph))}
        for parent in graph.vertices:
            for child in parent.children:
                assert position[parent.vid] < position[child.vid]

    def test_reachable_includes_all_for_document_graph(self):
        graph = graph_of(FIGURE1_XML)
        assert len(reachable_vertices(graph.root)) == graph.vertex_count()

    def test_edge_count_matches_graph_method(self):
        graph = graph_of(FIGURE1_XML)
        assert edge_count(graph) == graph.edge_count()

    def test_canonical_key_distinguishes_structure(self):
        g1 = graph_of("<a><b/></a>")
        g2 = graph_of("<a><c/></a>")
        g3 = graph_of("<a><b/></a>")
        assert canonical_key(g1.root) != canonical_key(g2.root)
        assert canonical_key(g1.root) == canonical_key(g3.root)

    def test_isomorphism_ignores_construction_order(self):
        g1 = graph_of("<a><b><x/></b><c/></a>")
        g2 = graph_of("<a><c/><b><x/></b></a>")
        assert graphs_isomorphic(g1, g2)

    def test_deep_graph_no_recursion_error(self):
        depth = 5000
        xml = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        graph = graph_of(xml)
        assert graph.depth() == depth
        # canonical_key is iterative and must survive this depth.
        canonical_key(graph.root)


class TestMinimality:
    """The builder must produce the *minimal* bisimulation graph."""

    @pytest.mark.parametrize(
        "xml, expected_vertices",
        [
            ("<a/>", 1),
            ("<a><a/></a>", 2),  # same label, different children
            ("<r><x><y/></x><x><y/></x><x><y/></x></r>", 3),
            ("<r><p><q/></p><p><q/><s/></p></r>", 5),
        ],
    )
    def test_expected_class_counts(self, xml, expected_vertices):
        assert graph_of(xml).vertex_count() == expected_vertices

    def test_no_two_vertices_share_signature(self):
        graph = graph_of(FIGURE1_XML)
        signatures = {
            (v.label, frozenset(c.vid for c in v.children)) for v in graph.vertices
        }
        assert len(signatures) == graph.vertex_count()

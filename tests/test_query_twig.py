"""Tests for twig-query construction, patterns, decomposition, and the
ground-truth match semantics."""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedQueryError
from repro.bisim import bisim_graph_of_document, graphs_isomorphic
from repro.query import (
    Axis,
    decompose,
    matching_elements,
    query_matches_document,
    twig_of,
)
from repro.query.match import matches_at, matches_within_depth
from repro.xmltree import parse_xml


class TestTwigConstruction:
    def test_linear_path(self):
        twig = twig_of("/a/b/c")
        assert twig.leading_axis is Axis.CHILD
        assert twig.root.label == "a"
        assert twig.depth() == 3
        assert twig.is_structural_twig()

    def test_leading_descendant_still_twig(self):
        # Definition 1 allows '//' on the root only.
        twig = twig_of("//a/b")
        assert twig.leading_axis is Axis.DESCENDANT
        assert twig.is_structural_twig()

    def test_interior_descendant_not_twig(self):
        twig = twig_of("//a//b")
        assert not twig.is_structural_twig()
        assert not twig.is_twig()

    def test_predicates_branch(self):
        twig = twig_of("//a[b][c]/d")
        labels = sorted(child.label for _, child in twig.root.edges)
        assert labels == ["b", "c", "d"]

    def test_value_literal_lands_on_last_predicate_step(self):
        twig = twig_of('//a[b/c = "x"]')
        b = next(child for _, child in twig.root.edges if child.label == "b")
        c = b.edges[0][1]
        assert c.value == "x"
        assert twig.has_values()
        assert not twig.is_structural_twig()
        assert twig.is_twig()

    def test_depth_counts_predicate_branches(self):
        assert twig_of("//a[b/c/d]/e").depth() == 4

    def test_node_count(self):
        assert twig_of("//a[b][c]/d").root.node_count() == 4

    def test_root_label(self):
        assert twig_of("//proceedings[booktitle]/title").root_label == "proceedings"

    def test_paper_example_is_twig(self):
        assert twig_of("//article[author]/ee").is_structural_twig()

    def test_paper_nontwig_examples(self):
        assert not twig_of("//article[.//author]/ee").is_structural_twig()
        assert not twig_of('//article[name = "John Smith"]/title').is_structural_twig()


class TestTwigToElement:
    def test_materialization(self):
        element = twig_of("//a[b]/c").to_element()
        assert element.tag == "a"
        assert sorted(e.tag for e in element.child_elements()) == ["b", "c"]

    def test_value_becomes_text_child(self):
        element = twig_of('//a[b = "v"]').to_element()
        b = next(element.child_elements())
        assert b.text() == "v"

    def test_interior_descendant_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            twig_of("//a//b").to_element()


class TestTwigPattern:
    def test_pattern_merges_identical_branches(self):
        # //a[b/x][b/x] and //a[b/x] have the same twig pattern.
        p1 = twig_of("//a[b/x][b/x]").pattern()
        p2 = twig_of("//a[b/x]").pattern()
        assert graphs_isomorphic(p1, p2)

    def test_pattern_equals_bisim_of_equivalent_document(self):
        pattern = twig_of("//a[b][c]").pattern()
        doc_graph = bisim_graph_of_document(parse_xml("<a><b/><c/></a>"))
        assert graphs_isomorphic(pattern, doc_graph)

    def test_value_pattern_requires_mapping(self):
        twig = twig_of('//a[b = "v"]')
        with pytest.raises(UnsupportedQueryError):
            twig.pattern()
        pattern = twig.pattern(text_label=lambda value: "#v0")
        labels = {v.label for v in pattern.vertices}
        assert "#v0" in labels

    def test_leading_axis_rewrite(self):
        twig = twig_of("//a/b")
        rewritten = twig.with_child_leading_axis()
        assert rewritten.leading_axis is Axis.CHILD
        assert rewritten.root is twig.root


class TestDecompose:
    def test_twig_passes_through(self):
        twig = twig_of("//a[b]/c")
        parts = decompose(twig)
        assert len(parts) == 1
        assert parts[0].root == twig.root

    def test_paper_example(self):
        # //open_auction[.//bidder[name][email]]/price
        parts = decompose("//open_auction[.//bidder[name][email]]/price")
        assert len(parts) == 2
        top, fragment = parts
        assert top.root.label == "open_auction"
        assert [child.label for _, child in top.root.edges] == ["price"]
        assert fragment.root.label == "bidder"
        assert sorted(child.label for _, child in fragment.root.edges) == [
            "email",
            "name",
        ]
        assert fragment.leading_axis is Axis.DESCENDANT

    def test_interior_descendant_on_main_path(self):
        parts = decompose("//a/b//c/d")
        assert len(parts) == 2
        assert parts[0].root.label == "a"
        assert parts[0].depth() == 2
        assert parts[1].root.label == "c"
        assert parts[1].depth() == 2

    def test_all_fragments_are_twigs(self):
        parts = decompose("//a[.//b[.//c]]//d/e")
        assert len(parts) == 4
        assert all(p.is_structural_twig() for p in parts)


class TestMatchSemantics:
    DOC = parse_xml(
        "<bib>"
        "<article><author><email/></author><title/></article>"
        "<book><author><phone/></author><title/></book>"
        "</bib>"
    )

    def test_simple_match(self):
        assert query_matches_document(twig_of("//article/author/email"), self.DOC)

    def test_simple_non_match(self):
        assert not query_matches_document(twig_of("//article/author/phone"), self.DOC)

    def test_branching_predicate(self):
        assert query_matches_document(twig_of("//article[title]/author"), self.DOC)
        assert not query_matches_document(twig_of("//article[isbn]/author"), self.DOC)

    def test_descendant_edge(self):
        assert query_matches_document(twig_of("//bib//email"), self.DOC)
        assert query_matches_document(twig_of("//bib[.//phone]"), self.DOC)

    def test_leading_child_axis_binds_document_root(self):
        assert query_matches_document(twig_of("/bib/article"), self.DOC)
        assert not query_matches_document(twig_of("/article"), self.DOC)

    def test_matching_elements_positions(self):
        hits = matching_elements(twig_of("//author"), self.DOC)
        assert len(hits) == 2
        assert all(e.tag == "author" for e in hits)

    def test_value_match(self):
        doc = parse_xml("<a><b>x</b><b>y</b></a>")
        assert query_matches_document(twig_of('//a[b = "x"]'), doc)
        assert not query_matches_document(twig_of('//a[b = "z"]'), doc)

    def test_matches_at_respects_binding(self):
        article = next(self.DOC.root.find_all("article"))
        book = next(self.DOC.root.find_all("book"))
        twig = twig_of("//article/author/email")
        assert matches_at(twig.root, article)
        assert not matches_at(twig.root, book)

    def test_descendant_means_strict_descendant(self):
        doc = parse_xml("<a><a/></a>")
        # //a//a requires an `a` strictly below some `a`.
        assert query_matches_document(twig_of("//a//a"), doc)
        single = parse_xml("<a/>")
        assert not query_matches_document(twig_of("//a//a"), single)


class TestDepthLimitedMatch:
    DOC = parse_xml("<a><b><c><d/></c></b></a>")

    def test_within_horizon(self):
        twig = twig_of("/a/b").with_child_leading_axis()
        assert matches_within_depth(twig, self.DOC.root, 2)

    def test_beyond_horizon(self):
        twig = twig_of("/a/b/c").with_child_leading_axis()
        assert not matches_within_depth(twig, self.DOC.root, 2)
        assert matches_within_depth(twig, self.DOC.root, 3)

    def test_descendant_edge_respects_horizon(self):
        twig = twig_of("//a[.//d]")
        top = decompose(twig)[0]  # just 'a'
        assert matches_within_depth(top, self.DOC.root, 2)
        full = twig_of("/a")
        assert matches_within_depth(full, self.DOC.root, 0)

    def test_unlimited_horizon(self):
        twig = twig_of("/a/b/c/d")
        assert matches_within_depth(twig, self.DOC.root, 0)

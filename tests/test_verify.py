"""Tests for the index consistency checker."""

from __future__ import annotations

import os

import pytest

from repro.btree import encode_feature_key
from repro.cli import main
from repro.core import (
    FixIndex,
    FixIndexConfig,
    load_index,
    save_index,
    verify_index,
)
from repro.storage import NodePointer, PrimaryXMLStore
from repro.xmltree import parse_xml

DOCS = [
    "<site><item><name/><payment/></item><item><name/></item></site>",
    "<site><person><name/><phone/></person></site>",
]


def build(depth_limit: int = 3, clustered: bool = False) -> FixIndex:
    store = PrimaryXMLStore()
    for source in DOCS:
        store.add_document(parse_xml(source))
    return FixIndex.build(
        store, FixIndexConfig(depth_limit=depth_limit, clustered=clustered)
    )


class TestCleanIndexes:
    @pytest.mark.parametrize("depth_limit", [0, 3])
    @pytest.mark.parametrize("clustered", [False, True])
    def test_fresh_index_verifies(self, depth_limit, clustered):
        index = build(depth_limit, clustered)
        report = verify_index(index)
        assert report.ok, report.problems
        assert report.entries_checked == index.entry_count

    def test_reloaded_index_verifies(self, tmp_path):
        index = build()
        directory = os.fspath(tmp_path / "idx")
        save_index(index, directory)
        reloaded = load_index(directory, index.store)
        report = verify_index(reloaded)
        assert report.ok, report.problems

    def test_fast_mode_skips_recomputation(self):
        index = build()
        report = verify_index(index, recompute_keys=False)
        assert report.ok
        assert report.entries_checked == index.entry_count

    def test_after_incremental_maintenance(self):
        index = build()
        new_id = index.add_document(parse_xml("<site><misc><name/></misc></site>"))
        index.remove_document(0)
        report = verify_index(index)
        assert report.ok, report.problems
        assert new_id in {e.pointer.doc_id for e in index.iter_entries()}


class TestDetection:
    def test_detects_phantom_entry(self):
        index = build()
        index.btree.insert(
            encode_feature_key("ghost", 1.0, -1.0),
            NodePointer(0, 1).pack(),
        )
        report = verify_index(index)
        assert not report.ok
        assert any("label mismatch" in p or "orphan" in p for p in report.problems)

    def test_detects_dangling_pointer(self):
        index = build()
        index.btree.insert(
            encode_feature_key("item", 5.0, -5.0),
            NodePointer(99, 0).pack(),
        )
        report = verify_index(index)
        assert not report.ok
        assert any("dangling pointer" in p for p in report.problems)

    def test_detects_missing_entry(self):
        index = build()
        # Steal one entry out of the B-tree.
        raw_key, raw_value = next(index.btree.items())
        assert index.btree.delete(raw_key, raw_value)
        report = verify_index(index)
        assert not report.ok
        assert any("missing entry" in p for p in report.problems)

    def test_detects_stale_key(self):
        index = build()
        # Replace an entry's key with one carrying wrong eigenvalues.
        raw_key, raw_value = next(index.btree.items())
        from repro.btree.keys import decode_feature_key

        label, _lmax, _lmin = decode_feature_key(raw_key)
        assert index.btree.delete(raw_key, raw_value)
        index.btree.insert(encode_feature_key(label, 12345.0, -12345.0), raw_value)
        report = verify_index(index)
        assert not report.ok
        assert any("stale key" in p for p in report.problems)

    def test_detects_duplicate_pointer(self):
        index = build()
        raw_key, raw_value = next(index.btree.items())
        index.btree.insert(raw_key, raw_value)
        report = verify_index(index)
        assert not report.ok
        assert any("duplicate entry" in p for p in report.problems)


class TestVerifyCLI:
    def test_clean_index_exits_zero(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "idx")
        assert main(
            ["build", "--dataset", "xmark", "--scale", "0.05", "--out", directory]
        ) == 0
        assert main(["verify", directory]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fast_flag(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "idx")
        main(["build", "--dataset", "xmark", "--scale", "0.05", "--out", directory])
        assert main(["verify", directory, "--fast"]) == 0
        assert "OK" in capsys.readouterr().out

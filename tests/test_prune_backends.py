"""Property-style equivalence tests for the two pruning backends.

The R-tree backend answers the Section 3.4 containment predicate as a
2-D dominance query; the B-tree backend range-scans the λ_max suffix.
Both must produce the *same candidate list* — same entries, same
(key, pointer) order — and therefore identical final results, over
randomized corpora and query sets, for every index variant.
"""

from __future__ import annotations

import random

import pytest

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element

LABELS = ["a", "b", "c", "d", "e"]


def random_document(rng: random.Random, max_depth: int = 4) -> Document:
    """A random small tree, recursive labels allowed (so λ ranges vary)."""

    def build(level: int) -> Element:
        element = Element(rng.choice(LABELS))
        if level < max_depth:
            for _ in range(rng.randint(0, 3 if level < 2 else 2)):
                element.append(build(level + 1))
        return element

    return Document(build(1))


def random_queries(rng: random.Random, count: int) -> list[str]:
    """Random twigs and decomposable path expressions over the alphabet,
    shallow enough for a depth-limit-4 index to cover."""
    queries = []
    for _ in range(count):
        lead = rng.choice(["//", "/"])
        parts = [lead, rng.choice(LABELS)]
        for _ in range(rng.randint(0, 2)):
            connector = rng.choice(["/", "//", "["])
            label = rng.choice(LABELS)
            if connector == "[":
                parts.append(f"[{label}]")
            else:
                parts.extend([connector, label])
        queries.append("".join(parts))
    return queries


def build_store(seed: int, documents: int = 8) -> PrimaryXMLStore:
    rng = random.Random(seed)
    store = PrimaryXMLStore()
    for _ in range(documents):
        store.add_document(random_document(rng))
    return store


CONFIGS = [
    pytest.param(FixIndexConfig(depth_limit=0), id="collection"),
    pytest.param(FixIndexConfig(depth_limit=4), id="depth-limited"),
    pytest.param(
        FixIndexConfig(depth_limit=4, clustered=True), id="clustered"
    ),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("config", CONFIGS)
    def test_candidates_and_results_identical(self, seed, config):
        store = build_store(seed)
        index = FixIndex.build(store, config)
        btree = FixQueryProcessor(index, prune_backend="btree")
        rtree = FixQueryProcessor(index, prune_backend="rtree")
        rng = random.Random(seed * 7 + 1)
        compared = 0
        for query in random_queries(rng, 25):
            twig = twig_of(query)
            if not index.covers(twig):
                continue
            left = btree.prune(twig)
            right = rtree.prune(twig)
            assert [(e.key, e.pointer) for e in left] == [
                (e.key, e.pointer) for e in right
            ], query
            assert btree.query(twig).results == rtree.query(twig).results, query
            compared += 1
        assert compared > 0

    @pytest.mark.parametrize("config", CONFIGS)
    def test_unanchored_and_intersection_queries(self, config):
        # '//'-led on a collection index exercises the unanchored scan;
        # the bracketed '//' fragment exercises candidate intersection.
        store = build_store(17, documents=10)
        index = FixIndex.build(store, config)
        btree = FixQueryProcessor(index, prune_backend="btree")
        rtree = FixQueryProcessor(index, prune_backend="rtree")
        for query in ["//b", "//a[.//b]", "//a[.//b][.//c]", "/a/b"]:
            twig = twig_of(query)
            if not index.covers(twig):
                continue
            assert {e.pointer for e in btree.prune(twig)} == {
                e.pointer for e in rtree.prune(twig)
            }, query
            assert btree.query(twig).results == rtree.query(twig).results, query

    def test_backend_survives_incremental_updates(self):
        # The spatial view is generation-cached; mutations must rebuild it.
        from repro.xmltree import parse_xml

        store = build_store(5, documents=4)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        rtree = FixQueryProcessor(index, prune_backend="rtree")
        btree = FixQueryProcessor(index, prune_backend="btree")
        before = rtree.query("//a[b]").results
        assert before == btree.query("//a[b]").results
        doc_id = index.add_document(parse_xml("<a><b/><b/></a>"))
        after_rtree = rtree.query("//a[b]").results
        after_btree = btree.query("//a[b]").results
        assert after_rtree == after_btree
        assert any(p.doc_id == doc_id for p in after_rtree)
        index.remove_document(doc_id)
        assert rtree.query("//a[b]").results == before

    def test_backend_selection_via_config_and_override(self):
        store = build_store(5, documents=3)
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, prune_backend="rtree")
        )
        assert FixQueryProcessor(index).prune_backend == "rtree"
        assert (
            FixQueryProcessor(index, prune_backend="btree").prune_backend
            == "btree"
        )
        with pytest.raises(ValueError):
            FixQueryProcessor(index, prune_backend="quadtree")
        with pytest.raises(ValueError):
            FixIndexConfig(prune_backend="quadtree")

"""Property and regression tests for the real-arithmetic batched
spectral kernel (DESIGN.md §9).

The contract under test: for every anti-symmetric pattern matrix,

1. the spectrum is symmetric about 0 and the feature range satisfies
   ``λ_min == -λ_max`` *exactly* (not just approximately);
2. the spectrum equals ``±σ_j`` for the singular values of ``M``
   within 1e-9;
3. batched kernel ≡ per-pattern kernel ≡ legacy complex path, for
   every bucket size, within 1e-9 (and batched ≡ per-pattern exactly);
4. the closed forms for ``n ≤ 3`` match the dense solvers.

Plus end-to-end A/B coverage: an index built with the real solver and
one built with the legacy solver agree on every feature range within
1e-9 and answer queries identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.keys import decode_feature_key
from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.spectral import (
    SOLVER_LEGACY,
    SOLVER_REAL,
    EdgeLabelEncoder,
    eigenvalue_range,
    pattern_matrix,
    resolve_solver,
    solve_batch,
    spectrum,
)
from repro.spectral.kernel import (
    legacy_range,
    real_spectrum,
    singular_range,
)
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

TOLERANCE = 1e-9


@st.composite
def antisymmetric_matrices(draw, max_n: int = 8) -> np.ndarray:
    """Random integer-weighted anti-symmetric matrices (DAG-shaped:
    weights above the diagonal under a topological numbering)."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            weight = draw(st.integers(min_value=0, max_value=9))
            matrix[i, j] = weight
            matrix[j, i] = -weight
    return matrix


class TestSolverSelection:
    def test_default_is_real(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPECTRAL_SOLVER", raising=False)
        assert resolve_solver(None) == SOLVER_REAL

    def test_environment_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECTRAL_SOLVER", "legacy")
        assert resolve_solver(None) == SOLVER_LEGACY
        # An explicit choice still wins over the environment.
        assert resolve_solver("real") == SOLVER_REAL

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            resolve_solver("quantum")

    def test_config_validates_solver(self):
        with pytest.raises(ValueError):
            FixIndexConfig(eigen_solver="quantum")


class TestExactSymmetry:
    """Satellite: ``λ_min == -λ_max`` exactly, for BOTH solvers.

    ``eigvalsh`` extremes can be asymmetric at the ulp level; the API
    boundary symmetrizes, and the real kernel is symmetric by
    construction."""

    @settings(max_examples=150, deadline=None)
    @given(antisymmetric_matrices())
    def test_real_range_exactly_symmetric(self, matrix):
        lmin, lmax = eigenvalue_range(matrix, solver=SOLVER_REAL)
        assert lmin == -lmax

    @settings(max_examples=150, deadline=None)
    @given(antisymmetric_matrices())
    def test_legacy_range_exactly_symmetric(self, matrix):
        lmin, lmax = eigenvalue_range(matrix, solver=SOLVER_LEGACY)
        assert lmin == -lmax

    @settings(max_examples=100, deadline=None)
    @given(antisymmetric_matrices())
    def test_real_spectrum_exactly_symmetric(self, matrix):
        values = spectrum(matrix, solver=SOLVER_REAL)
        assert np.array_equal(values, -values[::-1])
        assert np.all(np.diff(values) >= 0)


class TestSpectrumIsSingularValues:
    @settings(max_examples=150, deadline=None)
    @given(antisymmetric_matrices())
    def test_spectrum_magnitudes_equal_singular_values(self, matrix):
        if matrix.shape[0] == 0:
            return
        singular = np.linalg.svd(matrix, compute_uv=False)
        for solver in (SOLVER_REAL, SOLVER_LEGACY):
            values = spectrum(matrix, solver=solver)
            magnitudes = np.sort(np.abs(values))[::-1]
            assert np.max(np.abs(magnitudes - singular)) < TOLERANCE

    @settings(max_examples=150, deadline=None)
    @given(antisymmetric_matrices())
    def test_range_is_plus_minus_sigma_max(self, matrix):
        lmin, lmax = eigenvalue_range(matrix, solver=SOLVER_REAL)
        if matrix.shape[0] == 0:
            assert (lmin, lmax) == (0.0, 0.0)
            return
        sigma_max = float(np.linalg.svd(matrix, compute_uv=False)[0])
        assert lmax == pytest.approx(sigma_max, abs=TOLERANCE)
        assert lmin == pytest.approx(-sigma_max, abs=TOLERANCE)


class TestSolverEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(antisymmetric_matrices())
    def test_real_matches_legacy(self, matrix):
        real = eigenvalue_range(matrix, solver=SOLVER_REAL)
        legacy = eigenvalue_range(matrix, solver=SOLVER_LEGACY)
        assert real[0] == pytest.approx(legacy[0], abs=TOLERANCE)
        assert real[1] == pytest.approx(legacy[1], abs=TOLERANCE)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(antisymmetric_matrices(), min_size=1, max_size=12))
    def test_batched_equals_per_pattern_exactly(self, matrices):
        """The determinism contract: batching never changes a result's
        bits, for every bucket size the batch happens to contain."""
        ranges, buckets = solve_batch(matrices, solver=SOLVER_REAL)
        assert len(ranges) == len(matrices)
        assert sum(buckets.values()) == sum(
            1 for m in matrices if m.shape[0] >= 2
        )
        for matrix, batched in zip(matrices, ranges):
            assert batched == singular_range(matrix)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(antisymmetric_matrices(), min_size=1, max_size=12))
    def test_batched_matches_legacy_within_tolerance(self, matrices):
        real_ranges, _ = solve_batch(matrices, solver=SOLVER_REAL)
        legacy_ranges, _ = solve_batch(matrices, solver=SOLVER_LEGACY)
        for real, legacy in zip(real_ranges, legacy_ranges):
            assert real[0] == pytest.approx(legacy[0], abs=TOLERANCE)
            assert real[1] == pytest.approx(legacy[1], abs=TOLERANCE)

    def test_every_bucket_size_up_to_eight(self):
        """Deterministic sweep: one batch per dimension 0..8, each
        compared against the per-pattern and legacy solvers."""
        rng = np.random.default_rng(11)
        for n in range(9):
            upper = np.triu(rng.integers(1, 9, size=(n, n)).astype(float), 1)
            mats = [upper - upper.T for _ in range(4)]
            ranges, buckets = solve_batch(mats, solver=SOLVER_REAL)
            if n >= 2:
                assert buckets == {n: 4}
            else:
                assert buckets == {}
            for matrix, got in zip(mats, ranges):
                assert got == singular_range(matrix)
                legacy = legacy_range(matrix)
                assert got[1] == pytest.approx(legacy[1], abs=TOLERANCE)


class TestClosedForms:
    def test_n0_and_n1_are_degenerate(self):
        assert singular_range(np.zeros((0, 0))) == (0.0, 0.0)
        assert singular_range(np.zeros((1, 1))) == (0.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_n2_closed_form(self, w):
        matrix = np.array([[0.0, w], [-w, 0.0]])
        assert singular_range(matrix) == (-float(w), float(w))
        legacy = legacy_range(matrix)
        assert singular_range(matrix)[1] == pytest.approx(
            legacy[1], abs=TOLERANCE
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_n3_closed_form(self, w01, w02, w12):
        matrix = np.array(
            [
                [0.0, w01, w02],
                [-w01, 0.0, w12],
                [-w02, -w12, 0.0],
            ]
        )
        expected = float(np.sqrt(float(w01**2 + w02**2 + w12**2)))
        lmin, lmax = singular_range(matrix)
        assert lmax == pytest.approx(expected, abs=TOLERANCE)
        assert lmin == -lmax
        # ...and both dense solvers agree with the closed form.
        dense = float(np.linalg.svd(matrix, compute_uv=False)[0])
        assert lmax == pytest.approx(dense, abs=TOLERANCE)
        legacy = legacy_range(matrix)
        assert lmax == pytest.approx(legacy[1], abs=TOLERANCE)

    def test_full_spectrum_reconstruction_n3(self):
        matrix = np.array(
            [[0.0, 3.0, 0.0], [-3.0, 0.0, 4.0], [0.0, -4.0, 0.0]]
        )
        values = real_spectrum(matrix)
        assert values == pytest.approx([-5.0, 0.0, 5.0], abs=TOLERANCE)


class TestVectorizedPatternMatrix:
    """Satellite: index-array assembly must equal the per-edge loop."""

    def _reference_matrix(self, graph, encoder):
        from repro.bisim.dag import reachable_vertices, vertex_signature

        vertices = reachable_vertices(graph.root)
        signatures: dict[int, bytes] = {}
        vertices.sort(
            key=lambda v: (vertex_signature(v, signatures), v.vid)
        )
        index_of = {v.vid: i for i, v in enumerate(vertices)}
        matrix = np.zeros((len(vertices), len(vertices)))
        for parent in vertices:
            i = index_of[parent.vid]
            for child in parent.children:
                j = index_of[child.vid]
                weight = float(encoder.encode(parent.label, child.label))
                matrix[i, j] = weight
                matrix[j, i] = -weight
        return matrix

    @pytest.mark.parametrize(
        "xml",
        [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/></b><d/></a>",
            "<bib><article><x/></article><article><y/></article></bib>",
            "<r><a><b><c/></b></a><a><b><c/></b></a><d/></r>",
        ],
    )
    def test_matches_reference_assembly(self, xml):
        from repro.bisim import bisim_graph_of_document

        graph = bisim_graph_of_document(parse_xml(xml))
        encoder = EdgeLabelEncoder()
        reference = self._reference_matrix(graph, self._shadow(encoder))
        built = pattern_matrix(graph, encoder)
        assert np.array_equal(built, reference)

    @staticmethod
    def _shadow(encoder: EdgeLabelEncoder) -> EdgeLabelEncoder:
        # Both assemblies must run under equivalent encoders without
        # interfering with each other's code assignment order.
        return EdgeLabelEncoder.from_dict(encoder.to_dict())


def _corpus(documents: int = 6) -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for i in range(documents):
        store.add_document(
            parse_xml(
                "<book>"
                + "<chapter><section><para><text/></para>"
                + "<para><note/></para></section>"
                + f"<section>{'<item/>' * (1 + i % 3)}</section></chapter>"
                + "<chapter><ref/></chapter>"
                + "</book>"
            )
        )
    return store


class TestEndToEndSolverAB:
    """Real-solver and legacy-solver builds of the same corpus must
    agree on every feature range (within 1e-9) and on query answers."""

    @pytest.fixture(scope="class")
    def indexes(self):
        store = _corpus()
        real = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, eigen_solver="real")
        )
        legacy = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, eigen_solver="legacy")
        )
        return real, legacy

    def test_every_feature_range_agrees(self, indexes):
        real, legacy = indexes
        # Near-tie keys may order differently between solvers, so match
        # entries by pointer value (unique per indexed element).
        real_by_value = {
            value: decode_feature_key(key)
            for key, value in real.btree.items()
        }
        legacy_by_value = {
            value: decode_feature_key(key)
            for key, value in legacy.btree.items()
        }
        assert set(real_by_value) == set(legacy_by_value)
        for value, (label_r, lmax_r, lmin_r) in real_by_value.items():
            label_l, lmax_l, lmin_l = legacy_by_value[value]
            assert label_r == label_l
            assert lmax_r == pytest.approx(lmax_l, abs=TOLERANCE)
            assert lmin_r == pytest.approx(lmin_l, abs=TOLERANCE)

    def test_real_keys_exactly_symmetric(self, indexes):
        real, _ = indexes
        for entry in real.iter_entries():
            assert entry.key.range.lmin == -entry.key.range.lmax

    def test_identical_query_results(self, indexes):
        real, legacy = indexes
        for query in ("//section[para]", "//chapter//item", "/book/chapter"):
            real_result = FixQueryProcessor(real).query(query)
            legacy_result = FixQueryProcessor(legacy).query(query)
            assert real_result.results == legacy_result.results

    def test_batching_observability(self, indexes):
        real, legacy = indexes
        assert real.report.eigen_solver == "real"
        assert legacy.report.eigen_solver == "legacy"
        # The real build dispatched stacked solves; the legacy build,
        # by design, never touched the batch queue.
        assert real.report.stats.eigen_batches > 0
        assert sum(
            size * count
            for size, count in real.report.stats.eigen_batch_sizes.items()
        ) >= real.report.stats.eigen_batches
        assert legacy.report.stats.eigen_batches == 0
        assert legacy.report.stats.eigen_batch_sizes == {}

    def test_solver_stats_parity(self, indexes):
        """Batching changes when eigenproblems are solved, not how many
        or what the cache saw."""
        real, legacy = indexes
        assert (
            real.report.stats.eigen_computations
            == legacy.report.stats.eigen_computations
        )
        assert real.report.stats.cache_hits == legacy.report.stats.cache_hits
        assert (
            real.report.stats.cache_misses
            == legacy.report.stats.cache_misses
        )
        assert real.report.stats.entries == legacy.report.stats.entries


class TestBatchedIncrementalMaintenance:
    def test_add_then_remove_document_roundtrip(self):
        store = _corpus(3)
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, eigen_solver="real")
        )
        before = list(index.btree.items())
        doc = parse_xml("<book><chapter><section><para/></section></chapter></book>")
        doc_id = index.add_document(doc)
        assert len(index.btree) > len(before)
        index.remove_document(doc_id)
        assert list(index.btree.items()) == before

"""Tests for index persistence (save/load round-trips)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StorageError
from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    load_index,
    save_index,
)
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

SITE_XML = (
    "<site><regions><asia>"
    "<item><name/><mailbox><mail><to/></mail></mailbox></item>"
    "<item><payment/><quantity/></item>"
    "</asia></regions>"
    "<people><person><name/><phone/></person></people></site>"
)


def build_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    store.add_document(parse_xml(SITE_XML))
    store.add_document(parse_xml("<site><people><person><name/></person></people></site>"))
    return store


QUERIES = ["//item[name]/mailbox", "//person[phone]", "//item", "//missing"]


class TestUnclusteredRoundtrip:
    def test_results_identical_after_reload(self, tmp_path):
        store = build_store()
        original = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)

        reloaded = load_index(directory, store)
        assert reloaded.entry_count == original.entry_count
        for query in QUERIES:
            twig = twig_of(query)
            left = sorted(
                (e.pointer, e.key.range.lmax) for e in original.candidates(twig)
            )
            right = sorted(
                (e.pointer, e.key.range.lmax) for e in reloaded.candidates(twig)
            )
            assert left == right, query

    def test_full_pipeline_after_reload(self, tmp_path):
        store = build_store()
        original = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        for query in QUERIES:
            left = {p for p in FixQueryProcessor(original).query(query).results}
            right = {p for p in FixQueryProcessor(reloaded).query(query).results}
            assert left == right, query

    def test_encoder_restored(self, tmp_path):
        store = build_store()
        original = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        assert len(reloaded.encoder) == len(original.encoder)
        assert reloaded.encoder.lookup("item", "name") == original.encoder.lookup(
            "item", "name"
        )

    def test_config_restored(self, tmp_path):
        store = build_store()
        original = FixIndex.build(
            store, FixIndexConfig(depth_limit=5, value_buckets=7)
        )
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        assert reloaded.config == original.config
        assert reloaded.value_hasher is not None
        assert reloaded.value_hasher.buckets == 7

    def test_report_numbers_survive(self, tmp_path):
        store = build_store()
        original = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        assert reloaded.report.seconds == original.report.seconds
        assert reloaded.report.stats.entries == original.report.stats.entries


class TestClusteredRoundtrip:
    def test_clustered_units_readable_after_reload(self, tmp_path):
        store = build_store()
        original = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True)
        )
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        assert reloaded.clustered_store is not None
        assert reloaded.clustered_store.unit_count == original.clustered_store.unit_count
        for entry in reloaded.iter_entries():
            unit = reloaded.clustered_store.get_unit(entry.record)
            assert unit.root.tag == entry.key.root_label

    def test_clustered_queries_after_reload(self, tmp_path):
        store = build_store()
        original = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True)
        )
        directory = os.fspath(tmp_path / "idx")
        save_index(original, directory)
        reloaded = load_index(directory, store)
        for query in QUERIES:
            left = {p for p in FixQueryProcessor(original).query(query).results}
            right = {p for p in FixQueryProcessor(reloaded).query(query).results}
            assert left == right, query


class TestPersistenceErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            load_index(os.fspath(tmp_path / "nothing"), build_store())

    def test_corrupt_metadata(self, tmp_path):
        directory = tmp_path / "idx"
        directory.mkdir()
        (directory / "meta.json").write_text("{ not json")
        with pytest.raises(StorageError):
            load_index(os.fspath(directory), build_store())

    def test_version_mismatch(self, tmp_path):
        store = build_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        directory = os.fspath(tmp_path / "idx")
        save_index(index, directory)
        meta_path = os.path.join(directory, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["format_version"] = 99
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(StorageError):
            load_index(directory, store)

    def test_clustered_missing_pages(self, tmp_path):
        store = build_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4, clustered=True))
        directory = os.fspath(tmp_path / "idx")
        save_index(index, directory)
        os.remove(os.path.join(directory, "clustered.pages"))
        with pytest.raises(StorageError):
            load_index(directory, store)

"""Tests for the path-expression parser and AST."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError, UnsupportedQueryError
from repro.query import Axis, parse_query

# Every query published in the paper's evaluation section (Sections 6.2-6.4).
PAPER_QUERIES = [
    "/article/epilog[acknoledgements]/references/a_id",
    "/article/prolog[keywords]/authors/author/contact[phone]",
    "/article[epilog]/prolog/authors/author",
    "//proceedings[booktitle]/title[sup][i]",
    "//article[number]/author",
    "//inproceedings[url]/title",
    "//category/description[parlist]/parlist/listitem/text",
    "//closed_auction/annotation/description/text",
    "//open_auction[seller]/annotation/description/text",
    "//EMPTY/S/NP[PP]/NP",
    "//S[VP]/NP/NP/PP/NP",
    "//EMPTY/S[VP]/NP",
    "//item/mailbox/mail/text/emph/keyword",
    "//description/parlist/listitem",
    "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
    "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
    "//EMPTY/S/NP/NP/PP",
    "//EMPTY/S/VP",
    "//dblp/inproceedings/author",
    "//inproceedings[url]/title[sub][i]",
    '//proceedings[publisher="Springer"][title]',
    '//inproceedings[year="1998"][title]/author',
]


class TestPaperQueries:
    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_parses(self, text):
        parse_query(text)

    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_roundtrip_is_stable(self, text):
        once = parse_query(text)
        again = parse_query(once.to_string())
        assert again == once


class TestParserStructure:
    def test_single_step(self):
        path = parse_query("/a")
        assert len(path.steps) == 1
        assert path.steps[0].axis is Axis.CHILD
        assert path.steps[0].name == "a"

    def test_descendant_leading_axis(self):
        path = parse_query("//a/b")
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[1].axis is Axis.CHILD

    def test_interior_descendant_axis(self):
        path = parse_query("//a//b/c")
        assert path.steps[1].axis is Axis.DESCENDANT
        assert path.has_interior_descendant_axis()

    def test_structural_predicate(self):
        path = parse_query("//a[b/c]/d")
        predicate = path.steps[0].predicates[0]
        assert predicate.value is None
        assert [s.name for s in predicate.path.steps] == ["b", "c"]

    def test_multiple_predicates(self):
        path = parse_query("//a[b][c][d]")
        assert len(path.steps[0].predicates) == 3

    def test_nested_predicates(self):
        path = parse_query("//a[b[c][d]/e]")
        outer = path.steps[0].predicates[0]
        b_step = outer.path.steps[0]
        assert len(b_step.predicates) == 2
        assert outer.path.steps[1].name == "e"

    def test_value_predicate(self):
        path = parse_query('//a[b = "hello world"]')
        predicate = path.steps[0].predicates[0]
        assert predicate.value == "hello world"
        assert path.has_value_predicates()

    def test_value_predicate_single_quotes(self):
        path = parse_query("//a[b='x']")
        assert path.steps[0].predicates[0].value == "x"

    def test_dot_descendant_predicate(self):
        path = parse_query("//article[.//author]/ee")
        predicate = path.steps[0].predicates[0]
        assert predicate.path.steps[0].axis is Axis.DESCENDANT
        assert path.has_interior_descendant_axis()

    def test_whitespace_tolerated(self):
        path = parse_query('  //a[ b = "x" ] / c ')
        assert path.steps[0].predicates[0].value == "x"
        assert path.steps[1].name == "c"

    def test_depth_of_linear_path(self):
        assert parse_query("/a/b/c").depth() == 3

    def test_depth_includes_predicates(self):
        assert parse_query("//a[b/c/d]").depth() == 4
        assert parse_query("//a[b]/c").depth() == 2

    def test_depth_ignores_value_literals(self):
        assert parse_query('//a[b = "x"]').depth() == 2


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "a", "/", "//", "/a[", "/a]", "/a[b", '/a[b="x]', "/a/[b]",
         "/a[b]c", "/a[=\"x\"]", "/a//"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)

    @pytest.mark.parametrize(
        "text",
        [
            "/a/@id",
            "//*",
            "/a/child::b",
            "/ancestor::a",
            "//a/text()",
            "/a[b < '3']",
            "/a[b != 'x']",
            "/a[/b]",
        ],
    )
    def test_unsupported_fragment(self, text):
        with pytest.raises(UnsupportedQueryError):
            parse_query(text)

    def test_error_has_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("/a[b")
        assert excinfo.value.position is not None

"""Tests for the unified tracing + metrics layer (``repro.obs``).

The contracts under test (DESIGN.md §10):

* spans nest correctly, including when the traced body raises;
* worker-pool traces merge deterministically, and tracing never
  perturbs the build's byte-identity or the query pipeline's
  pointer-ordered results;
* disabled mode emits nothing (the no-op span is a cached singleton)
  while returning identical answers;
* the legacy views (``PhaseTimings``, ``QueryMetricsLog``) agree with
  the registry they are now backed by;
* a flushed JSONL trace round-trips through the ``repro trace``
  aggregation, reproducing the build report's phase totals.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    PruningMetrics,
    QueryMetricsLog,
)
from repro.core.construction import BUILD_PHASES, PhaseTimings
from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    Obs,
    ObsConfig,
    Tracer,
    read_trace,
    scan_trace,
)
from repro.obs.report import format_trace_report, summarize_trace_file
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

DOCS = [
    "<bib><article><author><email/></author><title/></article></bib>",
    "<bib><article><author><phone/></author><title/></article></bib>",
    "<bib><book><author><affiliation/></author><title/></book></bib>",
    "<site><regions><item><name/><mailbox><mail/></mailbox></item>"
    "<item><name/></item></regions></site>",
    "<bib><www><title/></www></bib>",
]

QUERIES = ["//article[author]", "//author", "//item/name", "/bib/book"]


def corpus() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in DOCS:
        store.add_document(parse_xml(source))
    return store


def items_of(index: FixIndex) -> list[tuple[bytes, bytes]]:
    return [(bytes(key), bytes(value)) for key, value in index.btree.items()]


def span_events(tracer: Tracer) -> list[dict]:
    return [e for e in tracer.events if e["type"] == "span"]


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        hist = registry.histogram("h", bounds=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)  # beyond the last bound -> +inf bucket
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["counts"] == [1, 1, 1]
        assert snap["histograms"]["h"]["count"] == 3

    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_sync_counter_is_idempotent(self):
        registry = MetricsRegistry()
        registry.sync_counter("total", 10)
        registry.sync_counter("total", 10)
        registry.sync_counter("total", 13)
        assert registry.counter("total").value == 13

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(2.0,))

    def test_sync_counter_clamps_backwards_totals(self):
        registry = MetricsRegistry()
        registry.sync_counter("total", 10)
        registry.sync_counter("total", 4)  # the source was reset
        assert registry.counter("total").value == 10
        registry.sync_counter("total", 12)
        assert registry.counter("total").value == 12

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("size").set(1)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.counter("n").inc(3)
        b.gauge("size").set(9)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5
        assert snap["gauges"]["size"] == 9  # last write wins
        assert snap["histograms"]["h"]["counts"] == [1, 1]


# --------------------------------------------------------------------- #
# Tracer and spans
# --------------------------------------------------------------------- #


class TestSpans:
    def test_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        names = [e["name"] for e in span_events(tracer)]
        assert names == ["inner", "sibling", "outer"]  # close order
        assert span_events(tracer)[-1]["parent"] is None

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("dying"):
                    raise RuntimeError("boom")
        events = {e["name"]: e for e in span_events(tracer)}
        assert events["dying"]["error"] == "RuntimeError"
        assert events["outer"]["error"] == "RuntimeError"
        assert tracer.current_id is None  # stack fully unwound

    def test_sibling_after_crashed_child_is_not_orphaned(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with pytest.raises(ValueError):
                with tracer.span("crashed"):
                    raise ValueError()
            with tracer.span("survivor") as survivor:
                assert survivor.parent_id == outer.span_id

    def test_disabled_tracer_returns_cached_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", big_attr=list(range(100)))
        assert span is NOOP_SPAN
        assert tracer.span("other") is NOOP_SPAN
        with span as s:
            s.set(x=1)
        assert tracer.events == []

    def test_absorb_remaps_and_reparents(self):
        worker = Tracer(proc="worker-0")
        with worker.span("build.doc"):
            with worker.span("build.eigen.batch"):
                pass
        coordinator = Tracer()
        with coordinator.span("build.stage") as stage:
            coordinator.absorb(
                list(worker.events), parent_id=coordinator.current_id
            )
            stage_id = stage.span_id
        merged = {e["name"]: e for e in span_events(coordinator)}
        assert merged["build.doc"]["parent"] == stage_id
        assert merged["build.eigen.batch"]["parent"] == merged["build.doc"]["id"]
        assert merged["build.doc"]["proc"] == "worker-0"
        assert merged["build.doc"]["run"] == coordinator.run

    def test_absorb_concatenated_multiworker_events(self):
        # Both call sites (parallel_stage, parallel_refine) ship the
        # concatenation of ALL workers' event lists in one absorb()
        # call, and every worker numbers its spans from 1 — the remap
        # must not collide across workers.
        workers = []
        for worker_id in range(3):
            worker = Tracer(proc=f"worker-{worker_id}")
            with worker.span("build.doc", doc=worker_id):
                with worker.span("build.eigen.batch"):
                    pass
            workers.append(worker)
        combined = [e for w in workers for e in w.events]

        coordinator = Tracer()
        with coordinator.span("build.stage") as stage:
            coordinator.absorb(combined, parent_id=coordinator.current_id)
            stage_id = stage.span_id
        with coordinator.span("build.insert"):
            pass

        events = span_events(coordinator)
        ids = [e["id"] for e in events]
        assert len(ids) == len(set(ids)), "span ids collided in the merge"
        for worker_id in range(3):
            by_name = {
                e["name"]: e
                for e in events
                if e["proc"] == f"worker-{worker_id}"
            }
            assert by_name["build.doc"]["parent"] == stage_id
            assert (
                by_name["build.eigen.batch"]["parent"]
                == by_name["build.doc"]["id"]
            )
            assert by_name["build.eigen.batch"]["id"] != (
                by_name["build.eigen.batch"]["parent"]
            )


# --------------------------------------------------------------------- #
# Registry-backed views
# --------------------------------------------------------------------- #


class TestPhaseTimingsView:
    def test_attributes_are_registry_counters(self):
        registry = MetricsRegistry()
        timings = PhaseTimings(registry=registry)
        timings.parse = 1.5
        timings.eigen += 0.25
        counters = registry.snapshot()["counters"]
        assert counters["build.phase_seconds.parse"] == 1.5
        assert counters["build.phase_seconds.eigen"] == 0.25
        assert timings.parse == 1.5

    def test_merge_accumulates(self):
        a = PhaseTimings(parse=1.0)
        b = PhaseTimings(parse=0.5, insert=2.0)
        a.merge(b)
        assert a.parse == 1.5
        assert a.insert == 2.0
        assert set(a.as_dict()) == set(BUILD_PHASES)


class TestQueryMetricsLogView:
    def test_empty_summary_is_exact(self):
        assert QueryMetricsLog().summary() == {"queries": 0}

    def test_totals_survive_window_eviction(self):
        log = QueryMetricsLog(capacity=2)
        index = FixIndex.build(corpus(), FixIndexConfig(depth_limit=4))
        processor = FixQueryProcessor(index, metrics_log=log)
        for query in QUERIES:
            processor.query(query)
        assert len(log) == 2  # window clamped
        assert log.total_queries == len(QUERIES)
        summary = log.summary()
        assert summary["queries"] == 2
        assert summary["total_queries"] == len(QUERIES)

    def test_shared_registry_has_no_double_counting(self):
        index = FixIndex.build(corpus(), FixIndexConfig(depth_limit=4))
        log = QueryMetricsLog(registry=index.obs.registry)
        processor = FixQueryProcessor(index, metrics_log=log)
        processor.query("//author")
        processor.query("//author")
        counters = index.obs.registry.snapshot()["counters"]
        assert counters["query.count"] == 2
        assert (
            counters["query.plan_cache.hits"]
            + counters["query.plan_cache.misses"]
            == 2
        )

    def test_private_log_and_processor_registry_both_count(self):
        index = FixIndex.build(corpus(), FixIndexConfig(depth_limit=4))
        log = QueryMetricsLog()  # private registry
        processor = FixQueryProcessor(index, metrics_log=log)
        processor.query("//author")
        assert log.registry.counter("query.count").value == 1
        assert index.obs.registry.counter("query.count").value == 1


# --------------------------------------------------------------------- #
# Satellite: division-guard consistency
# --------------------------------------------------------------------- #


class TestPruningMetricsGuards:
    def test_zero_over_zero_stays_zero(self):
        metrics = PruningMetrics(ent=0, cdt=0, rst=0)
        assert metrics.sel == 0.0
        assert metrics.pp == 0.0
        assert metrics.fpr == 0.0

    def test_nonzero_numerator_over_zero_is_nan(self):
        assert math.isnan(PruningMetrics(ent=0, cdt=3, rst=0).pp)
        assert math.isnan(PruningMetrics(ent=0, cdt=0, rst=2).sel)
        assert math.isnan(PruningMetrics(ent=10, cdt=0, rst=2).fpr)

    def test_normal_cases_unchanged(self):
        metrics = PruningMetrics(ent=10, cdt=4, rst=2)
        assert metrics.sel == pytest.approx(1 - 2 / 10)
        assert metrics.pp == pytest.approx(1 - 4 / 10)
        assert metrics.fpr == pytest.approx(1 - 2 / 4)


# --------------------------------------------------------------------- #
# Pipeline integration
# --------------------------------------------------------------------- #


class TestDisabledMode:
    def test_emits_nothing_and_answers_match(self, tmp_path):
        store = corpus()
        traced = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, obs=ObsConfig(trace=True))
        )
        silent = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        assert silent.obs.tracer.events == []
        assert traced.obs.tracer.events != []
        assert items_of(silent) == items_of(traced)
        for query in QUERIES:
            assert (
                FixQueryProcessor(silent).query(query).results
                == FixQueryProcessor(traced).query(query).results
            )
        # No path + tracing off -> flush writes no file, reports 0 lines.
        assert silent.obs.flush(str(tmp_path / "unused.jsonl")) == 0
        assert not (tmp_path / "unused.jsonl").exists()


class TestWorkerTraceMerge:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_build_trace_covers_every_document(self, workers):
        index = FixIndex.build(
            corpus(),
            FixIndexConfig(
                depth_limit=4, workers=workers, obs=ObsConfig(trace=True)
            ),
        )
        events = span_events(index.obs.tracer)
        docs = [e for e in events if e["name"] == "build.doc"]
        assert len(docs) == len(DOCS)
        # Chunk-ordered absorption: doc spans appear in doc_id order.
        assert [e["attrs"]["doc"] for e in docs] == sorted(
            e["attrs"]["doc"] for e in docs
        )
        build = next(e for e in events if e["name"] == "build")
        assert build["parent"] is None

    def test_parallel_and_serial_traces_agree_structurally(self):
        def doc_procs(workers: int) -> list[str]:
            index = FixIndex.build(
                corpus(),
                FixIndexConfig(
                    depth_limit=4, workers=workers, obs=ObsConfig(trace=True)
                ),
            )
            return [
                e["proc"]
                for e in span_events(index.obs.tracer)
                if e["name"] == "build.doc"
            ]

        assert doc_procs(1) == ["main"] * len(DOCS)
        parallel = doc_procs(4)
        assert len(parallel) == len(DOCS)
        assert all(proc.startswith("worker-") for proc in parallel)
        # Chunk order is deterministic: same assignment every run.
        assert parallel == doc_procs(4)

    def test_traced_parallel_build_is_byte_identical(self):
        store = corpus()
        baseline = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        traced = FixIndex.build(
            store,
            FixIndexConfig(
                depth_limit=4, workers=3, obs=ObsConfig(trace=True)
            ),
        )
        assert items_of(baseline) == items_of(traced)

    def test_traced_parallel_refine_matches_serial(self):
        index = FixIndex.build(corpus(), FixIndexConfig(depth_limit=4))
        obs = Obs(trace=True)
        parallel = FixQueryProcessor(index, workers=2, obs=obs)
        serial = FixQueryProcessor(index)
        for query in QUERIES:
            assert parallel.query(query).results == serial.query(query).results
        chunk_spans = [
            e
            for e in span_events(obs.tracer)
            if e["name"] == "query.refine.chunk"
        ]
        assert chunk_spans, "worker refine spans were not absorbed"
        assert all(
            e["proc"].startswith("refine-") or e["proc"].startswith("worker-")
            for e in chunk_spans
        )


class TestTraceRoundTrip:
    def test_flush_summarize_reproduces_phase_totals(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        index = FixIndex.build(
            corpus(),
            FixIndexConfig(
                depth_limit=4, obs=ObsConfig(trace=True, trace_path=path)
            ),
        )
        assert index.obs.flush() > 0
        obs = Obs(trace=True)
        log = QueryMetricsLog(registry=obs.registry)
        processor = FixQueryProcessor(index, metrics_log=log, obs=obs)
        for query in QUERIES:
            processor.query(query)
        assert obs.flush(path, append=True) > 0

        summary = summarize_trace_file(path)
        reported = index.report.timings.as_dict()
        recovered = summary.phase_seconds()
        for phase, seconds in reported.items():
            assert recovered[phase] == pytest.approx(seconds, rel=0.01)
        assert len(summary.queries) == len(QUERIES)
        assert summary.orphan_spans == 0
        sources = {q["source"] for q in summary.queries}
        assert sources == set(QUERIES)
        report = format_trace_report(summary)
        assert "build phases" in report
        assert "slowest" in report

    def test_repeated_flush_emits_deltas_not_full_snapshots(self, tmp_path):
        # The registry keeps accumulating across flushes; each flush
        # must only carry the delta, or summarize's merge_snapshot
        # double-counts every counter.
        path = str(tmp_path / "trace.jsonl")
        obs = Obs(trace=True)
        obs.registry.counter("c").inc(5)
        obs.registry.histogram("h", bounds=(1.0,)).observe(0.5)
        obs.registry.gauge("g").set(3)
        assert obs.flush(path) > 0
        obs.registry.counter("c").inc(2)
        obs.registry.histogram("h", bounds=(1.0,)).observe(2.0)
        obs.registry.gauge("g").set(4)
        assert obs.flush(path, append=True) > 0

        merged = summarize_trace_file(path).registry.snapshot()
        assert merged["counters"]["c"] == 7
        assert merged["gauges"]["g"] == 4
        assert merged["histograms"]["h"]["counts"] == [1, 1]
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(2.5)

    def test_reader_skips_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"span"}\nnot json\n[1, 2]\n{"type":"metrics"}\n')
        records, skipped = scan_trace(str(path))
        assert [r["type"] for r in records] == ["span", "metrics"]
        assert skipped == 2
        err = capsys.readouterr().err
        assert "skipped 2 malformed trace record(s)" in err
        assert "bad.jsonl:2" in err

        # strict mode preserves the old fail-fast contract.
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(str(path), strict=True)

    def test_reader_tolerates_empty_and_truncated_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert read_trace(str(empty)) == []

        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('{"type":"span","name":"q"}\n{"type":"met')
        records, skipped = scan_trace(str(truncated), warn=False)
        assert [r["type"] for r in records] == ["span"]
        assert skipped == 1

    def test_summary_counts_skipped_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            'garbage\n'
            '{"type":"span","name":"plan","run":"r","id":1,"ts":0.0,"dur":0.1}\n'
        )
        summary = summarize_trace_file(str(path))
        assert summary.skipped_records == 1
        assert summary.registry.snapshot()["counters"]["trace.skipped_records"] == 1

"""Unit and property tests for the paged storage engine."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError, RecordError
from repro.storage import (
    ClusteredStore,
    NodePointer,
    Pager,
    PrimaryXMLStore,
    RecordFile,
    RecordPointer,
)
from repro.storage.clustered import copy_limited_depth
from repro.xmltree import parse_xml


class TestPager:
    def test_allocate_and_roundtrip_in_memory(self):
        pager = Pager()
        page_id = pager.allocate()
        data = bytearray(pager.page_size)
        data[:5] = b"hello"
        pager.write(page_id, data)
        assert bytes(pager.read(page_id)[:5]) == b"hello"

    def test_allocate_returns_dense_ids(self):
        pager = Pager()
        assert [pager.allocate() for _ in range(4)] == [0, 1, 2, 3]
        assert pager.page_count == 4

    def test_read_out_of_range_raises(self):
        pager = Pager()
        with pytest.raises(PageError):
            pager.read(0)

    def test_wrong_size_write_raises(self):
        pager = Pager()
        page_id = pager.allocate()
        with pytest.raises(PageError):
            pager.write(page_id, b"short")

    def test_file_backed_persistence(self, tmp_path):
        path = os.fspath(tmp_path / "pages.db")
        with Pager(path, cache_pages=2) as pager:
            ids = [pager.allocate() for _ in range(5)]
            for i, page_id in enumerate(ids):
                data = bytearray(pager.page_size)
                data[0] = i + 1
                pager.write(page_id, data)
        with Pager(path) as pager:
            assert pager.page_count == 5
            for i, page_id in enumerate(ids):
                assert pager.read(page_id)[0] == i + 1

    def test_eviction_respects_cache_capacity(self, tmp_path):
        path = os.fspath(tmp_path / "pages.db")
        with Pager(path, cache_pages=2) as pager:
            for _ in range(6):
                pager.allocate()
            # Touch page 0 again: with capacity 2 it must have been
            # evicted, producing a physical read.
            before = pager.stats.physical_reads
            pager.read(0)
            assert pager.stats.physical_reads == before + 1

    def test_stats_counters(self):
        pager = Pager()
        page_id = pager.allocate()
        pager.read(page_id)
        pager.read(page_id)
        assert pager.stats.logical_reads == 2
        assert pager.stats.physical_reads == 0  # in-memory: always resident
        assert pager.stats.allocations == 1

    def test_stats_delta(self):
        pager = Pager()
        page_id = pager.allocate()
        before = pager.stats.snapshot()
        pager.read(page_id)
        delta = pager.stats.delta(before)
        assert delta.logical_reads == 1
        assert delta.allocations == 0

    def test_closed_pager_rejects_access(self):
        pager = Pager()
        pager.close()
        with pytest.raises(PageError):
            pager.allocate()

    def test_mark_dirty_requires_residency(self, tmp_path):
        path = os.fspath(tmp_path / "pages.db")
        with Pager(path, cache_pages=1) as pager:
            first = pager.allocate()
            pager.allocate()  # evicts `first`
            with pytest.raises(PageError):
                pager.mark_dirty(first)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            Pager(page_size=16)


class TestRecordFile:
    def test_small_record_roundtrip(self):
        records = RecordFile(Pager())
        pointer = records.append(b"payload")
        assert records.read(pointer) == b"payload"

    def test_empty_record(self):
        records = RecordFile(Pager())
        pointer = records.append(b"")
        assert records.read(pointer) == b""

    def test_many_records_share_pages(self):
        pager = Pager()
        records = RecordFile(pager)
        pointers = [records.append(f"rec{i}".encode()) for i in range(100)]
        assert pager.page_count < 100  # packing works
        for i, pointer in enumerate(pointers):
            assert records.read(pointer) == f"rec{i}".encode()

    def test_oversized_record_overflows(self):
        pager = Pager()
        records = RecordFile(pager)
        big = bytes(range(256)) * 100  # 25600 bytes >> one 4K page
        pointer = records.append(big)
        assert records.read(pointer) == big
        assert pager.page_count > 1

    def test_interleaved_sizes(self):
        records = RecordFile(Pager())
        payloads = [b"x" * n for n in (0, 1, 4000, 5000, 17, 9000, 3)]
        pointers = [records.append(p) for p in payloads]
        for payload, pointer in zip(payloads, pointers):
            assert records.read(pointer) == payload

    def test_bad_slot_raises(self):
        records = RecordFile(Pager())
        pointer = records.append(b"x")
        with pytest.raises(RecordError):
            records.read(RecordPointer(pointer.page_id, 99))

    def test_bad_page_raises(self):
        records = RecordFile(Pager())
        records.append(b"x")
        with pytest.raises(RecordError):
            records.read(RecordPointer(999, 0))

    def test_pointer_pack_roundtrip(self):
        pointer = RecordPointer(12345, 67)
        assert RecordPointer.unpack(pointer.pack()) == pointer

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=12000), min_size=1, max_size=20))
    def test_property_roundtrip(self, payloads):
        records = RecordFile(Pager())
        pointers = [records.append(p) for p in payloads]
        for payload, pointer in zip(payloads, pointers):
            assert records.read(pointer) == payload


class TestPrimaryXMLStore:
    def test_add_and_get_document(self):
        store = PrimaryXMLStore()
        doc = parse_xml("<a><b>t</b></a>")
        doc_id = store.add_document(doc)
        assert store.get_document(doc_id) is doc  # cache hit

    def test_reparse_after_cache_eviction(self):
        store = PrimaryXMLStore(cache_documents=1)
        first = store.add_document(parse_xml("<a><b>t</b></a>"))
        store.add_document(parse_xml("<c/>"))  # evicts the first
        reloaded = store.get_document(first)
        assert reloaded.root.tag == "a"
        assert next(reloaded.root.find_all("b")).text() == "t"

    def test_add_source_lazy_parse(self):
        store = PrimaryXMLStore()
        doc_id = store.add_source("<x><y/></x>")
        assert store.get_document(doc_id).root.tag == "x"

    def test_doc_id_assignment(self):
        store = PrimaryXMLStore()
        ids = [store.add_document(parse_xml(f"<d{i}/>")) for i in range(3)]
        assert ids == [0, 1, 2]
        assert store.document_count == 3
        assert list(store.doc_ids()) == ids

    def test_resolve_pointer(self):
        store = PrimaryXMLStore()
        doc = parse_xml("<a><b/><c/></a>")
        doc_id = store.add_document(doc)
        c = next(doc.root.find_all("c"))
        resolved = store.resolve(NodePointer(doc_id, c.node_id))
        assert resolved.tag == "c"

    def test_resolve_bad_document(self):
        store = PrimaryXMLStore()
        with pytest.raises(RecordError):
            store.resolve(NodePointer(5, 0))

    def test_resolve_bad_node(self):
        store = PrimaryXMLStore()
        doc_id = store.add_document(parse_xml("<a/>"))
        with pytest.raises(RecordError):
            store.resolve(NodePointer(doc_id, 42))

    def test_node_pointer_pack_roundtrip(self):
        pointer = NodePointer(7, 99)
        assert NodePointer.unpack(pointer.pack()) == pointer

    def test_size_bytes_grows(self):
        store = PrimaryXMLStore()
        empty = store.size_bytes()
        store.add_document(parse_xml("<a>" + "<b/>" * 500 + "</a>"))
        assert store.size_bytes() > empty


class TestCopyLimitedDepth:
    def test_unlimited_is_full_serialization(self):
        doc = parse_xml("<a><b><c>t</c></b></a>")
        assert copy_limited_depth(doc.root, 0) == "<a><b><c>t</c></b></a>"

    def test_depth_one_keeps_only_root(self):
        doc = parse_xml("<a><b/><c/></a>")
        assert copy_limited_depth(doc.root, 1) == "<a/>"

    def test_depth_two_truncates_grandchildren(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert copy_limited_depth(doc.root, 2) == "<a><b/><d/></a>"

    def test_text_at_cut_level_preserved(self):
        doc = parse_xml("<a><b>keep<c/></b></a>")
        copied = copy_limited_depth(doc.root, 2)
        assert copied == "<a><b>keep</b></a>"

    def test_attributes_preserved(self):
        doc = parse_xml('<a x="1"><b y="2"/></a>')
        copied = copy_limited_depth(doc.root, 2)
        assert 'x="1"' in copied and 'y="2"' in copied


class TestClusteredStore:
    def test_add_and_get_unit(self):
        store = ClusteredStore()
        doc = parse_xml("<a><b><c/></b></a>")
        pointer = store.add_unit(doc.root)
        unit = store.get_unit(pointer)
        assert [e.tag for e in unit.root.iter()] == ["a", "b", "c"]

    def test_depth_limited_copy(self):
        store = ClusteredStore()
        doc = parse_xml("<a><b><c/></b></a>")
        pointer = store.add_unit(doc.root, depth_limit=2)
        unit = store.get_unit(pointer)
        assert [e.tag for e in unit.root.iter()] == ["a", "b"]

    def test_unit_count(self):
        store = ClusteredStore()
        doc = parse_xml("<a><b/></a>")
        store.add_unit(doc.root)
        store.add_unit(doc.root)
        assert store.unit_count == 2

    def test_cache_eviction_reparses(self):
        store = ClusteredStore(cache_units=1)
        doc = parse_xml("<a><b/></a>")
        first = store.add_unit(doc.root)
        second = store.add_unit(next(doc.root.find_all("b")))
        store.get_unit(first)
        store.get_unit(second)
        again = store.get_unit(first)  # evicted, reparsed
        assert again.root.tag == "a"

    def test_redundancy_grows_size(self):
        # Copying every element's subtree stores each leaf many times.
        store = ClusteredStore()
        doc = parse_xml("<a><b><c><d/></c></b></a>")
        for element in doc.elements():
            store.add_unit(element)
        flat = ClusteredStore()
        flat.add_unit(doc.root)
        assert store.unit_count > flat.unit_count

"""Smoke tests for the experiment harness at tiny scale: each runner
must complete, return the right shape, and satisfy basic invariants.
The full shape assertions live in ``benchmarks/``; these keep the
harness itself under plain-pytest coverage."""

from __future__ import annotations

import pytest

from repro.bench import (
    format_table,
    run_beta_sweep,
    run_feature_ablation,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table1,
    run_table2,
)
from repro.bench.reporting import megabytes, percent

SCALE = 0.06


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbb" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) <= 2  # header/body aligned

    def test_percent(self):
        assert percent(0.12345) == "12.35%"
        assert percent(1.0) == "100.00%"

    def test_megabytes(self):
        assert megabytes(1_500_000) == "1.50 MB"

    def test_float_rendering(self):
        text = format_table(["v"], [[1.23456789]])
        assert "1.235" in text


class TestTable1Runner:
    def test_rows_and_invariants(self):
        rows = run_table1(scale=SCALE, datasets=["xbench", "xmark"])
        assert [row.dataset for row in rows] == ["xbench", "xmark"]
        for row in rows:
            assert row.elements > 0
            assert row.construction_seconds > 0
            assert row.clustered_bytes > row.unclustered_bytes > 0
            # Phase breakdown rides along with the headline ICT number.
            assert set(row.phase_seconds) == {
                "parse", "encode", "bisim", "unfold", "matrix", "eigen",
                "insert"
            }
            assert row.phase_seconds["eigen"] > 0
            assert 0.0 <= row.eigen_share <= 1.0


class TestTable2Runner:
    def test_all_twelve_queries(self):
        rows = run_table2(scale=SCALE)
        assert len(rows) == 12
        for row in rows:
            assert 0.0 <= row.sel <= 1.0
            assert 0.0 <= row.pp <= 1.0
            assert 0.0 <= row.fpr <= 1.0


class TestFigure5Runner:
    def test_averages_bounded(self):
        rows = run_figure5(scale=SCALE, queries=5, datasets=["xmark"])
        assert len(rows) == 1
        row = rows[0]
        assert row.queries > 0
        assert 0.0 <= row.avg_pp <= 1.0
        assert 0.0 <= row.avg_sel <= 1.0


class TestFigure6Runner:
    def test_rows_have_all_systems(self):
        rows = run_figure6(scale=SCALE, repeats=1, datasets=["xmark"])
        assert len(rows) == 4  # 4 xmark queries
        for row in rows:
            assert row.nok_seconds > 0
            assert row.fix_unclustered_seconds > 0
            assert row.fb_seconds > 0
            assert row.fix_clustered_seconds > 0
            assert row.candidate_count >= row.result_count
            assert row.fix_u_pages_random == row.candidate_count


class TestFigure7Runner:
    def test_report_shape(self):
        report = run_figure7(scale=SCALE, repeats=1)
        assert len(report.rows) == 2
        assert report.beta == 10
        assert report.value_build_seconds > 0
        assert report.structural_build_seconds > 0
        for row in report.rows:
            assert row.false_negatives == 0


class TestAblationRunners:
    def test_feature_ablation_monotone(self):
        rows = run_feature_ablation(scale=SCALE, datasets=["xmark"])
        assert rows
        for row in rows:
            assert row.cdt_spectrum <= row.cdt_range <= row.cdt_label_only <= row.ent

    def test_beta_sweep(self):
        rows = run_beta_sweep(scale=SCALE, betas=(2, 16))
        assert [row.beta for row in rows] == [2, 16]
        assert rows[0].encoder_size <= rows[1].encoder_size

"""Unit and property tests for the spectral feature machinery.

The central property test here is Theorem 3 as *stated*: for Hermitian
``iM``, every principal submatrix (= induced subgraph with matching
weights) has an eigenvalue range contained in the full matrix's range
(Cauchy interlacing).  ``TestPaperGap`` pins the case the theorem does
NOT cover — see DESIGN.md §5a.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternTooLargeError
from repro.bisim import bisim_graph_of_document
from repro.spectral import (
    ALL_COVERING_RANGE,
    EdgeLabelEncoder,
    FeatureKey,
    FeatureRange,
    eigenvalue_range,
    hermitian_of,
    pattern_features,
    pattern_matrix,
    spectrum,
    spectrum_contains,
)
from repro.xmltree import parse_xml


def graph_of(xml: str):
    return bisim_graph_of_document(parse_xml(xml))


# --------------------------------------------------------------------- #
# Encoder
# --------------------------------------------------------------------- #


class TestEdgeLabelEncoder:
    def test_codes_start_at_one(self):
        encoder = EdgeLabelEncoder()
        assert encoder.encode("a", "b") == 1

    def test_codes_are_stable(self):
        encoder = EdgeLabelEncoder()
        first = encoder.encode("a", "b")
        encoder.encode("a", "c")
        assert encoder.encode("a", "b") == first

    def test_distinct_pairs_get_distinct_codes(self):
        encoder = EdgeLabelEncoder()
        codes = {
            encoder.encode(p, c)
            for p in ("a", "b", "c")
            for c in ("x", "y", "z")
        }
        assert len(codes) == 9

    def test_direction_matters(self):
        encoder = EdgeLabelEncoder()
        assert encoder.encode("a", "b") != encoder.encode("b", "a")

    def test_lookup_does_not_assign(self):
        encoder = EdgeLabelEncoder()
        assert encoder.lookup("a", "b") is None
        assert len(encoder) == 0
        encoder.encode("a", "b")
        assert encoder.lookup("a", "b") == 1

    def test_roundtrip_serialization(self):
        encoder = EdgeLabelEncoder()
        encoder.encode("a", "b")
        encoder.encode("x:ns", "y")
        restored = EdgeLabelEncoder.from_dict(encoder.to_dict())
        assert restored.lookup("a", "b") == 1
        assert restored.lookup("x:ns", "y") == 2
        assert ("a", "b") in restored


# --------------------------------------------------------------------- #
# Matrix construction
# --------------------------------------------------------------------- #


class TestPatternMatrix:
    def test_antisymmetry(self):
        graph = graph_of("<a><b><c/></b><d/></a>")
        matrix = pattern_matrix(graph, EdgeLabelEncoder())
        assert np.array_equal(matrix.T, -matrix)

    def test_diagonal_is_zero(self):
        graph = graph_of("<a><b/><c/></a>")
        matrix = pattern_matrix(graph, EdgeLabelEncoder())
        assert np.all(np.diag(matrix) == 0)

    def test_dimension_equals_reachable_vertices(self):
        graph = graph_of("<a><b/><b/><c/></a>")
        matrix = pattern_matrix(graph, EdgeLabelEncoder())
        assert matrix.shape == (3, 3)

    def test_same_label_pairs_share_weight(self):
        # Figure 2's encoding example: both article->author edges get the
        # same weight.
        graph = graph_of("<bib><article><x/></article><article><y/></article></bib>")
        encoder = EdgeLabelEncoder()
        matrix = pattern_matrix(graph, encoder)
        bib_article = encoder.lookup("bib", "article")
        assert bib_article is not None
        # The two article classes (different children) stay separate, and
        # both bib->article edges carry the *same* weight.
        assert np.count_nonzero(matrix == bib_article) == 2

    def test_single_vertex_matrix_is_empty_of_weights(self):
        graph = graph_of("<a/>")
        matrix = pattern_matrix(graph, EdgeLabelEncoder())
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 0

    def test_max_vertices_cap(self):
        graph = graph_of("<a><b/><c/><d/></a>")
        with pytest.raises(PatternTooLargeError):
            pattern_matrix(graph, EdgeLabelEncoder(), max_vertices=3)

    def test_shared_encoder_gives_equal_matrices_for_equal_structures(self):
        encoder = EdgeLabelEncoder()
        m1 = pattern_matrix(graph_of("<a><b/></a>"), encoder)
        m2 = pattern_matrix(graph_of("<a><b/></a>"), encoder)
        assert np.array_equal(m1, m2)


# --------------------------------------------------------------------- #
# Eigenvalues
# --------------------------------------------------------------------- #


class TestEigen:
    def test_hermitian_of_is_hermitian(self):
        graph = graph_of("<a><b><c/></b></a>")
        matrix = pattern_matrix(graph, EdgeLabelEncoder())
        h = hermitian_of(matrix)
        assert np.allclose(h, h.conj().T)

    def test_spectrum_is_real_and_sorted(self):
        graph = graph_of("<a><b/><c><d/></c></a>")
        values = spectrum(pattern_matrix(graph, EdgeLabelEncoder()))
        assert values.dtype == np.float64
        assert np.all(np.diff(values) >= 0)

    def test_spectrum_symmetric_about_zero(self):
        # Real anti-symmetric matrices have +/- paired spectra, hence
        # lambda_min == -lambda_max (see eigen.py module docs).
        graph = graph_of("<a><b><c/><d/></b><e/></a>")
        lmin, lmax = eigenvalue_range(pattern_matrix(graph, EdgeLabelEncoder()))
        assert lmin == pytest.approx(-lmax, abs=1e-9)

    def test_single_edge_eigenvalue_is_weight(self):
        # M = [[0, w], [-w, 0]] has spectrum {-w, +w}.
        graph = graph_of("<a><b/></a>")
        encoder = EdgeLabelEncoder()
        matrix = pattern_matrix(graph, encoder)
        w = encoder.lookup("a", "b")
        lmin, lmax = eigenvalue_range(matrix)
        assert lmax == pytest.approx(w)
        assert lmin == pytest.approx(-w)

    def test_star_eigenvalue_is_root_sum_of_squares(self):
        # A star r->{a,b,c} has lambda_max = sqrt(w_a^2 + w_b^2 + w_c^2).
        graph = graph_of("<r><a/><b/><c/></r>")
        encoder = EdgeLabelEncoder()
        matrix = pattern_matrix(graph, encoder)
        expected = math.sqrt(sum(encoder.lookup("r", t) ** 2 for t in "abc"))
        _, lmax = eigenvalue_range(matrix)
        assert lmax == pytest.approx(expected)

    def test_empty_matrix(self):
        assert eigenvalue_range(np.zeros((0, 0))) == (0.0, 0.0)

    def test_single_vertex_range_is_zero(self):
        graph = graph_of("<a/>")
        assert eigenvalue_range(pattern_matrix(graph, EdgeLabelEncoder())) == (0.0, 0.0)

    def test_isomorphic_structures_are_isospectral(self):
        encoder = EdgeLabelEncoder()
        # Same structure, sibling order permuted -> same bisim graph ->
        # same spectrum under a shared encoder.
        s1 = spectrum(pattern_matrix(graph_of("<a><b><x/></b><c/></a>"), encoder))
        s2 = spectrum(pattern_matrix(graph_of("<a><c/><b><x/></b></a>"), encoder))
        assert np.allclose(s1, s2)


# --------------------------------------------------------------------- #
# Interlacing (Theorem 3, as stated: induced subgraphs)
# --------------------------------------------------------------------- #


@st.composite
def antisymmetric_matrices(draw) -> np.ndarray:
    """Random integer-weighted anti-symmetric matrices (DAG-shaped:
    weights only above the diagonal, mirroring edges i -> j with i < j,
    which is the general form of a DAG under a topological numbering)."""
    n = draw(st.integers(min_value=2, max_value=8))
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            weight = draw(st.integers(min_value=0, max_value=9))
            matrix[i, j] = weight
            matrix[j, i] = -weight
    return matrix


class TestInterlacing:
    @settings(max_examples=200, deadline=None)
    @given(antisymmetric_matrices(), st.data())
    def test_induced_subgraph_range_containment(self, matrix, data):
        """Theorem 3: principal submatrix ranges interlace."""
        n = matrix.shape[0]
        keep = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=n,
                unique=True,
            )
        )
        sub = matrix[np.ix_(sorted(keep), sorted(keep))]
        lmin, lmax = eigenvalue_range(matrix)
        smin, smax = eigenvalue_range(sub)
        tolerance = 1e-9
        assert lmin - tolerance <= smin
        assert smax <= lmax + tolerance

    @settings(max_examples=100, deadline=None)
    @given(antisymmetric_matrices())
    def test_full_spectrum_subset_property(self, matrix):
        """The stronger claim in Section 3.3: deleting one vertex leaves a
        spectrum that interlaces; the (n-1)-subset check via
        spectrum_contains must accept every 1-element prefix interval."""
        full = spectrum(matrix)
        # Not a strict multiset-subset in general (interlacing, not
        # containment, holds eigenvalue-by-eigenvalue) — but the extreme
        # eigenvalues always bracket the submatrix's, which is what the
        # range test uses.  Check the bracket for every single deletion.
        n = matrix.shape[0]
        for drop in range(n):
            keep = [i for i in range(n) if i != drop]
            sub = spectrum(matrix[np.ix_(keep, keep)])
            assert full[0] - 1e-9 <= sub[0]
            assert sub[-1] <= full[-1] + 1e-9


# --------------------------------------------------------------------- #
# Feature keys and pruning predicate
# --------------------------------------------------------------------- #


class TestFeatureKey:
    def test_self_coverage(self):
        graph = graph_of("<a><b/></a>")
        key = pattern_features(graph, EdgeLabelEncoder())
        assert key.covers(key)

    def test_label_mismatch_prunes(self):
        encoder = EdgeLabelEncoder()
        indexed = pattern_features(graph_of("<a><b/></a>"), encoder)
        query = pattern_features(graph_of("<z><b/></z>"), encoder)
        assert not indexed.covers(query)

    def test_wider_range_covers_narrower(self):
        encoder = EdgeLabelEncoder()
        indexed = pattern_features(graph_of("<a><b/><c/><d/></a>"), encoder)
        query = pattern_features(graph_of("<a><b/></a>"), encoder)
        assert indexed.covers(query)
        assert not query.covers(indexed)

    def test_guard_band_absorbs_roundoff(self):
        base = FeatureKey("a", FeatureRange(-2.0, 2.0))
        jittered = FeatureKey("a", FeatureRange(-2.0 - 1e-9, 2.0 + 1e-9))
        assert base.covers(jittered)

    def test_all_covering_range(self):
        fallback = FeatureKey("a", ALL_COVERING_RANGE)
        narrow = FeatureKey("a", FeatureRange(-100.0, 100.0))
        assert fallback.covers(narrow)
        assert fallback.range.is_all_covering()
        assert not narrow.range.is_all_covering()

    def test_range_width(self):
        assert FeatureRange(-2.0, 3.0).width() == 5.0
        assert math.isinf(ALL_COVERING_RANGE.width())

    def test_single_node_query_covered_by_everything_with_same_label(self):
        encoder = EdgeLabelEncoder()
        indexed = pattern_features(graph_of("<a><b><c/></b></a>"), encoder)
        query = pattern_features(graph_of("<a/>"), encoder)
        assert indexed.covers(query)


class TestSpectrumContains:
    def test_identity(self):
        s = np.array([-2.0, 0.0, 2.0])
        assert spectrum_contains(s, s)

    def test_subset(self):
        indexed = np.array([-3.0, -1.0, 1.0, 3.0])
        assert spectrum_contains(indexed, np.array([-1.0, 3.0]))

    def test_not_subset(self):
        indexed = np.array([-3.0, 3.0])
        assert not spectrum_contains(indexed, np.array([0.0]))

    def test_multiplicity_respected(self):
        indexed = np.array([1.0, 2.0])
        assert not spectrum_contains(indexed, np.array([1.0, 1.0]))
        assert spectrum_contains(np.array([1.0, 1.0, 2.0]), np.array([1.0, 1.0]))

    def test_tolerance(self):
        indexed = np.array([1.0])
        assert spectrum_contains(indexed, np.array([1.0 + 1e-8]))
        assert not spectrum_contains(indexed, np.array([1.1]))

    def test_empty_query_always_contained(self):
        assert spectrum_contains(np.array([1.0]), np.zeros(0))


# --------------------------------------------------------------------- #
# The documented gap in the paper's Theorem 5 (DESIGN.md §5a)
# --------------------------------------------------------------------- #


class TestPaperGap:
    """FIX as published can prune a true match when labels repeat along a
    recursive path.  This pins the counterexample so the behaviour is
    documented and stable, not silently depended upon."""

    def test_homomorphic_match_can_escape_range_containment(self):
        encoder = EdgeLabelEncoder()
        # Query twig /u/v/u/v: a 4-chain.
        query_graph = graph_of("<u><v><u><v/></u></v></u>")
        # Data tree u(v(u(v)), v): its bisim graph carries an extra
        # (u, v)-weighted edge from the root class to the shared leaf
        # class, which *shrinks* lambda_max below the query's.
        data_graph = graph_of("<u><v><u><v/></u></v><v/></u>")
        query_key = pattern_features(query_graph, encoder)
        data_key = pattern_features(data_graph, encoder)
        # The query genuinely matches the data (checked structurally:
        # root u, child v, grandchild u, great-grandchild v).
        # ...yet the pruning predicate rejects it:
        assert not data_key.covers(query_key)
        # and the failure is in the eigenvalue range, not the label:
        assert data_key.root_label == query_key.root_label
        assert query_key.range.lmax > data_key.range.lmax

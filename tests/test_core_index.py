"""Tests for FIX index construction (Algorithm 1) and the pruning scan."""

from __future__ import annotations

import math

import pytest

from repro.errors import IndexCoverageError
from repro.core import FixIndex, FixIndexConfig
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

BIB_DOCS = [
    "<bib><article><author><email/></author><title/></article></bib>",
    "<bib><article><author><phone/></author><title/></article></bib>",
    "<bib><book><author><affiliation/></author><title/></book></bib>",
    "<bib><www><title/></www></bib>",
]

DEEP_DOC = (
    "<site>"
    "<regions><asia><item><name/><mailbox><mail><to/><text><bold/></text>"
    "</mail></mailbox></item><item><name/><payment/></item></asia></regions>"
    "<people><person><name/><emailaddress/></person>"
    "<person><name/><phone/></person></people>"
    "</site>"
)


def collection_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in BIB_DOCS:
        store.add_document(parse_xml(source))
    return store


def large_doc_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    store.add_document(parse_xml(DEEP_DOC))
    return store


class TestCollectionConstruction:
    def test_one_entry_per_document(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        assert index.entry_count == len(BIB_DOCS)

    def test_entries_point_at_document_roots(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        pointers = {entry.pointer for entry in index.iter_entries()}
        assert {p.node_id for p in pointers} == {0}
        assert {p.doc_id for p in pointers} == set(range(len(BIB_DOCS)))

    def test_covers_everything(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        assert index.covers(twig_of("//a/b/c/d/e/f/g/h"))

    def test_report_populated(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        assert index.report.seconds > 0
        assert index.report.stats.documents == len(BIB_DOCS)
        assert index.report.stats.unit_documents == len(BIB_DOCS)
        assert index.report.btree_bytes > 0


class TestSubpatternConstruction:
    def test_theorem4_one_entry_per_element(self):
        store = large_doc_store()
        document = store.get_document(0)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        assert index.entry_count == document.element_count()

    def test_eigen_computed_once_per_class(self):
        store = large_doc_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        stats = index.report.stats
        # Two structurally identical <person> subtrees etc. share classes,
        # so eigen computations must be strictly fewer than entries.
        assert stats.eigen_computations < stats.entries

    def test_shallow_documents_also_get_subpattern_entries(self):
        # Deviation from Algorithm 1's literal branch (see DESIGN.md §5a):
        # with a positive depth limit *every* document is decomposed, so
        # covered queries rooted at interior labels of shallow documents
        # still find their entries.
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b/></a>"))  # depth 2 <= limit 3
        store.add_document(parse_xml(DEEP_DOC))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        assert index.report.stats.unit_documents == 0
        assert index.report.stats.subpattern_documents == 2
        candidates = list(index.candidates(twig_of("//b")))
        assert len(candidates) == 1

    def test_coverage_respects_depth(self):
        index = FixIndex.build(large_doc_store(), FixIndexConfig(depth_limit=3))
        assert index.covers(twig_of("//item/mailbox/mail"))
        assert not index.covers(twig_of("//item/mailbox/mail/to"))
        with pytest.raises(IndexCoverageError):
            list(index.candidates(twig_of("//item/mailbox/mail/to")))

    def test_oversized_fallback(self):
        # A tiny vertex cap forces the all-covering range everywhere.
        store = large_doc_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, max_pattern_vertices=1)
        )
        stats = index.report.stats
        assert stats.oversized_patterns > 0
        # All-covering entries still make every matching-label query find
        # its candidates (completeness preserved, pruning sacrificed).
        candidates = list(index.candidates(twig_of("//item/mailbox")))
        document = store.get_document(0)
        item_count = sum(1 for e in document.root.find_all("item"))
        assert len(candidates) == item_count
        assert any(e.key.range.is_all_covering() for e in candidates)


class TestPruningScan:
    def test_anchored_label_filter(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        # '/'-anchored: the query root must bind the unit root, so the
        # label prunes everything.
        assert list(index.candidates(twig_of("/zzz"))) == []

    def test_unanchored_collection_scan_ignores_labels(self):
        # A '//' query can match anywhere inside a unit, so collection-
        # mode pruning is label-free (range containment only) — a single-
        # node query range [0, 0] is contained in every unit's range.
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        candidates = list(index.candidates(twig_of("//zzz")))
        assert len(candidates) == len(BIB_DOCS)

    def test_subpattern_mode_keeps_label_filter(self):
        index = FixIndex.build(large_doc_store(), FixIndexConfig(depth_limit=3))
        assert list(index.candidates(twig_of("//zzz"))) == []

    def test_no_false_negatives_on_collection(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        # //bib[.//email] style twigs: every doc truly containing the twig
        # must appear among the candidates.
        for query, matching_docs in [
            ("//bib", {0, 1, 2, 3}),
            ("//bib[article]", {0, 1}),
            ("//bib[book]", {2}),
            ("//bib[www]", {3}),
        ]:
            got = {e.pointer.doc_id for e in index.candidates(twig_of(query))}
            assert matching_docs <= got, query

    def test_candidates_are_sorted_by_key(self):
        index = FixIndex.build(large_doc_store(), FixIndexConfig(depth_limit=3))
        candidates = list(index.candidates(twig_of("//item")))
        lmaxes = [entry.key.range.lmax for entry in candidates]
        assert lmaxes == sorted(lmaxes)

    def test_guard_band_is_applied(self):
        # An exact-equality query key must never be rejected by round-off:
        # index a unit and query with its own structure.
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b><c/></b><d/></a>"))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        candidates = list(index.candidates(twig_of("//a[b/c][d]")))
        assert len(candidates) == 1

    def test_query_features_use_shared_encoder(self):
        index = FixIndex.build(collection_store(), FixIndexConfig(depth_limit=0))
        before = len(index.encoder)
        key = index.query_features(twig_of("//bib[article]"))
        assert key.root_label == "bib"
        # (bib, article) was seen during construction: no new codes.
        assert len(index.encoder) == before


class TestClusteredConstruction:
    def test_copies_one_unit_per_entry(self):
        store = large_doc_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, clustered=True)
        )
        assert index.clustered_store is not None
        assert index.clustered_store.unit_count == index.entry_count

    def test_entries_carry_both_pointers(self):
        index = FixIndex.build(
            collection_store(), FixIndexConfig(depth_limit=0, clustered=True)
        )
        for entry in index.iter_entries():
            assert entry.record is not None
            unit = index.clustered_store.get_unit(entry.record)
            original = index.store.resolve(entry.pointer)
            assert unit.root.tag == original.tag

    def test_clustered_total_size_exceeds_unclustered(self):
        store = large_doc_store()
        unclustered = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        clustered = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, clustered=True)
        )
        assert clustered.total_size_bytes() > unclustered.total_size_bytes()

    def test_copies_are_depth_limited(self):
        store = large_doc_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=2, clustered=True)
        )
        for entry in index.iter_entries():
            unit = index.clustered_store.get_unit(entry.record)
            assert unit.max_depth() <= 2

    def test_copies_arrive_in_key_order(self):
        store = large_doc_store()
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, clustered=True)
        )
        # Clustering contract: record pointers ascend with key order.
        records = [entry.record for entry in index.iter_entries()]
        assert records == sorted(records)


class TestValueIndexConstruction:
    STORE_XML = (
        "<dblp>"
        "<article><author>Smith</author><year>1998</year><title/></article>"
        "<article><author>Jones</author><year>2001</year><title/></article>"
        "</dblp>"
    )

    def make_index(self, beta: int = 8, depth_limit: int = 3):
        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.STORE_XML))
        return FixIndex.build(
            store,
            FixIndexConfig(depth_limit=depth_limit, value_buckets=beta),
        )

    def test_value_queries_covered(self):
        index = self.make_index()
        assert index.covers(twig_of('//article[year = "1998"]'))

    def test_structural_index_rejects_value_queries(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.STORE_XML))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        assert not index.covers(twig_of('//article[year = "1998"]'))

    def test_no_false_negatives_for_values(self):
        index = self.make_index()
        candidates = {
            e.pointer.node_id
            for e in index.candidates(twig_of('//article[year = "1998"]'))
        }
        document = index.store.get_document(0)
        truth = {
            e.node_id
            for e in document.root.find_all("article")
            if any(y.text() == "1998" for y in e.find_all("year"))
        }
        assert truth <= candidates

    def test_larger_beta_larger_encoder(self):
        small = self.make_index(beta=2)
        large = self.make_index(beta=64)
        assert len(large.encoder) >= len(small.encoder)

    def test_entry_count_unchanged_by_values(self):
        # Theorem 4 still holds: entries per *element*, text nodes do not
        # add entries.
        index = self.make_index()
        document = index.store.get_document(0)
        assert index.entry_count == document.element_count()


class TestAllCoveringOrdering:
    def test_infinite_range_sorts_last_and_always_scanned(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b><c/></b></a>"))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        # Manually add an all-covering entry for the same label.
        from repro.btree import encode_feature_key

        index.btree.insert(
            encode_feature_key("a", math.inf, -math.inf), b"\xff" * 8
        )
        candidates = list(index.candidates_for_key(index.query_features(twig_of("//a[b/c]"))))
        assert any(e.key.range.is_all_covering() for e in candidates)

"""Tests for the top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import parse_xml, select, twig_of


class TestSelect:
    DOC = parse_xml(
        "<bib><article><author><email/></author></article>"
        "<book><author/></book></bib>"
    )

    def test_select_with_string(self):
        assert [e.tag for e in select(self.DOC, "//author[email]")] == ["author"]

    def test_select_with_twig(self):
        twig = twig_of("//book/author")
        assert len(select(self.DOC, twig)) == 1

    def test_select_empty(self):
        assert select(self.DOC, "//missing") == []

    def test_results_in_document_order(self):
        ids = [e.node_id for e in select(self.DOC, "//author")]
        assert ids == sorted(ids)


class TestSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_all_is_sorted_enough_to_audit(self):
        # Not strictly sorted (grown organically), but free of duplicates.
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize(
        "name",
        [
            "FixIndex", "FixIndexConfig", "FixQueryProcessor", "PrimaryXMLStore",
            "parse_xml", "parse_query", "twig_of", "decompose", "select",
            "evaluate_pruning", "save_index", "load_index", "QueryOptimizer",
            "SpatialFeatureIndex", "FBIndex", "NavigationalEngine",
        ],
    )
    def test_key_names_exported(self, name):
        assert name in repro.__all__

    def test_quickstart_docstring_example_runs(self):
        # The module docstring's example, executed literally.
        from repro import (
            FixIndex,
            FixIndexConfig,
            FixQueryProcessor,
            PrimaryXMLStore,
        )

        store = PrimaryXMLStore()
        store.add_document(parse_xml("<bib><article><author/></article></bib>"))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        processor = FixQueryProcessor(index)
        result = processor.query("//article[author]")
        assert result.result_count == 1
        assert result.candidate_count >= 1

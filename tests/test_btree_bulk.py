"""Tests for B+tree bulk loading."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError
from repro.btree import BPlusTree
from repro.storage import Pager


def pairs_for(count: int) -> list[tuple[bytes, bytes]]:
    return [(f"{i:05d}".encode(), str(i).encode()) for i in range(count)]


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.scan()) == []

    def test_single_entry(self):
        tree = BPlusTree.bulk_load([(b"k", b"v")])
        assert tree.search(b"k") == [b"v"]
        tree.check_invariants()

    def test_matches_insert_built_tree(self):
        pairs = pairs_for(500)
        bulk = BPlusTree.bulk_load(pairs, Pager(page_size=256))
        incremental = BPlusTree(Pager(page_size=256))
        for key, value in pairs:
            incremental.insert(key, value)
        assert list(bulk.scan()) == list(incremental.scan())
        bulk.check_invariants()

    def test_duplicates_straddling_leaves(self):
        pairs = sorted(
            [(b"dup", str(i).encode()) for i in range(60)]
            + [(f"k{i:03d}".encode(), b"x") for i in range(60)]
        )
        tree = BPlusTree.bulk_load(pairs, Pager(page_size=256))
        assert len(tree.search(b"dup")) == 60
        tree.check_invariants()

    def test_unsorted_input_rejected(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([(b"b", b""), (b"a", b"")])

    def test_oversized_entry_rejected(self):
        pager = Pager(page_size=256)
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([(b"k" * 100, b"v" * 100)], pager)

    def test_insert_after_bulk_load(self):
        tree = BPlusTree.bulk_load(pairs_for(300), Pager(page_size=256))
        tree.insert(b"00150a", b"new")
        assert tree.search(b"00150a") == [b"new"]
        assert len(tree) == 301
        tree.check_invariants()

    def test_delete_after_bulk_load(self):
        tree = BPlusTree.bulk_load(pairs_for(300), Pager(page_size=256))
        assert tree.delete(b"00123")
        assert tree.search(b"00123") == []
        tree.check_invariants()

    def test_flush_and_reopen(self):
        pager = Pager(page_size=256)
        tree = BPlusTree.bulk_load(pairs_for(400), pager)
        tree.flush()
        reopened = BPlusTree.open(pager, tree.root_page, len(tree))
        assert list(reopened.scan()) == list(tree.scan())
        reopened.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=16), st.binary(max_size=8)),
            max_size=250,
        )
    )
    def test_property_matches_reference(self, raw_pairs):
        pairs = sorted(raw_pairs, key=lambda pair: pair[0])
        tree = BPlusTree.bulk_load(pairs, Pager(page_size=256))
        assert list(tree.scan()) == pairs
        if pairs:
            probe = pairs[len(pairs) // 2][0]
            expected = sorted(v for k, v in pairs if k == probe)
            assert sorted(tree.search(probe)) == expected
        tree.check_invariants()

"""Unit, property, and stateful tests for the B+tree and key encodings."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError
from repro.btree import (
    BPlusTree,
    decode_feature_key,
    decode_float,
    encode_feature_key,
    encode_float,
    label_upper_bound,
)
from repro.btree.node import InternalNode, LeafNode, deserialize_node
from repro.storage import Pager


# --------------------------------------------------------------------- #
# Key encodings
# --------------------------------------------------------------------- #


class TestFloatEncoding:
    @pytest.mark.parametrize(
        "value",
        [0.0, -0.0, 1.0, -1.0, 3.14159, -2.71828, 1e-300, -1e-300, 1e300,
         math.inf, -math.inf],
    )
    def test_roundtrip(self, value):
        assert decode_float(encode_float(value)) == value

    @settings(max_examples=300, deadline=None)
    @given(
        st.floats(allow_nan=False),
        st.floats(allow_nan=False),
    )
    def test_order_preserving(self, a, b):
        ea, eb = encode_float(a), encode_float(b)
        if a < b:
            assert ea < eb
        elif a > b:
            assert ea > eb
        # -0.0 == 0.0 but encodes differently; only assert byte equality
        # for identical bit patterns.
        elif str(a) == str(b):
            assert ea == eb


class TestFeatureKeyEncoding:
    def test_roundtrip(self):
        key = encode_feature_key("author", 3.5, -3.5)
        assert decode_feature_key(key) == ("author", 3.5, -3.5)

    def test_label_is_primary_sort_component(self):
        assert encode_feature_key("a", 100.0, -100.0) < encode_feature_key(
            "b", 0.0, 0.0
        )

    def test_lmax_is_secondary(self):
        assert encode_feature_key("a", 1.0, 0.0) < encode_feature_key("a", 2.0, -9.0)

    def test_prefix_label_sorts_before_extension(self):
        assert encode_feature_key("ab", 9.0, -9.0) < encode_feature_key(
            "abc", 0.0, 0.0
        )

    def test_label_upper_bound_brackets_label(self):
        low = encode_feature_key("ab", -math.inf, -math.inf)
        high = encode_feature_key("ab", math.inf, math.inf)
        bound = label_upper_bound("ab")
        other = encode_feature_key("abc", -math.inf, -math.inf)
        assert low < high < bound < other

    def test_nul_in_label_rejected(self):
        with pytest.raises(BTreeError):
            encode_feature_key("a\x00b", 0.0, 0.0)

    def test_malformed_key_rejected(self):
        with pytest.raises(BTreeError):
            decode_feature_key(b"nonsense")

    def test_unicode_label(self):
        key = encode_feature_key("bücher", 1.0, -1.0)
        assert decode_feature_key(key)[0] == "bücher"


# --------------------------------------------------------------------- #
# Node serialization
# --------------------------------------------------------------------- #


class TestNodeSerialization:
    def test_leaf_roundtrip(self):
        node = LeafNode([b"a", b"bb"], [b"1", b"22"], next_leaf=7)
        again = LeafNode.deserialize(node.serialize(512))
        assert again.keys == node.keys
        assert again.values == node.values
        assert again.next_leaf == 7

    def test_empty_leaf_roundtrip(self):
        node = LeafNode()
        again = LeafNode.deserialize(node.serialize(256))
        assert again.keys == [] and again.values == []

    def test_internal_roundtrip(self):
        node = InternalNode([b"m"], [3, 9])
        again = InternalNode.deserialize(node.serialize(256))
        assert again.keys == [b"m"]
        assert again.children == [3, 9]

    def test_internal_child_arity_enforced(self):
        with pytest.raises(BTreeError):
            InternalNode([b"a", b"b"], [1, 2])

    def test_dispatch(self):
        leaf = LeafNode([b"k"], [b"v"])
        assert isinstance(deserialize_node(leaf.serialize(256)), LeafNode)
        internal = InternalNode([], [0])
        assert isinstance(deserialize_node(internal.serialize(256)), InternalNode)

    def test_oversized_serialize_rejected(self):
        node = LeafNode([b"x" * 300], [b"y" * 300])
        with pytest.raises(BTreeError):
            node.serialize(256)

    def test_unknown_page_type_rejected(self):
        with pytest.raises(BTreeError):
            deserialize_node(b"\x09" + b"\x00" * 63)


# --------------------------------------------------------------------- #
# Tree behaviour
# --------------------------------------------------------------------- #


def small_tree() -> BPlusTree:
    """A tree with tiny pages so splits happen early."""
    return BPlusTree(Pager(page_size=256))


class TestBPlusTreeBasics:
    def test_insert_and_search(self):
        tree = small_tree()
        tree.insert(b"k1", b"v1")
        assert tree.search(b"k1") == [b"v1"]
        assert tree.search(b"k2") == []

    def test_duplicates_accumulate(self):
        tree = small_tree()
        for i in range(5):
            tree.insert(b"dup", f"v{i}".encode())
        assert sorted(tree.search(b"dup")) == [f"v{i}".encode() for i in range(5)]

    def test_len_tracks_entries(self):
        tree = small_tree()
        for i in range(10):
            tree.insert(f"k{i}".encode(), b"v")
        assert len(tree) == 10

    def test_splits_grow_height(self):
        tree = small_tree()
        for i in range(200):
            tree.insert(f"key{i:05d}".encode(), b"value")
        assert tree.height() >= 2
        assert tree.stats.splits > 0
        tree.check_invariants()

    def test_scan_is_sorted(self):
        tree = small_tree()
        keys = [f"{random.Random(7).random():.12f}".encode() for _ in range(1)]
        rng = random.Random(7)
        keys = [f"{rng.random():.12f}".encode() for _ in range(300)]
        for key in keys:
            tree.insert(key, b"v")
        scanned = [key for key, _ in tree.scan()]
        assert scanned == sorted(keys)

    def test_range_scan_bounds(self):
        tree = small_tree()
        for i in range(100):
            tree.insert(f"{i:03d}".encode(), str(i).encode())
        result = [key for key, _ in tree.scan(start=b"010", end=b"020")]
        assert result == [f"{i:03d}".encode() for i in range(10, 20)]

    def test_scan_open_bounds(self):
        tree = small_tree()
        for i in range(20):
            tree.insert(f"{i:02d}".encode(), b"v")
        assert len(list(tree.scan())) == 20
        assert len(list(tree.scan(start=b"15"))) == 5
        assert len(list(tree.scan(end=b"05"))) == 5

    def test_scan_finds_duplicates_across_splits(self):
        tree = small_tree()
        # Interleave so duplicates of "mm" straddle split points.
        for i in range(100):
            tree.insert(b"mm", str(i).encode())
            tree.insert(f"k{i:03d}".encode(), b"x")
        assert len(tree.search(b"mm")) == 100
        tree.check_invariants()

    def test_oversized_entry_rejected(self):
        tree = small_tree()
        with pytest.raises(BTreeError):
            tree.insert(b"k" * 100, b"v" * 100)

    def test_empty_tree_scan(self):
        assert list(small_tree().scan()) == []

    def test_node_count_and_size(self):
        tree = small_tree()
        for i in range(100):
            tree.insert(f"{i:04d}".encode(), b"v")
        assert tree.node_count() > 1
        assert tree.size_bytes() == tree.node_count() * 256


class TestBPlusTreeDelete:
    def test_delete_existing(self):
        tree = small_tree()
        tree.insert(b"k", b"v")
        assert tree.delete(b"k")
        assert tree.search(b"k") == []
        assert len(tree) == 0

    def test_delete_missing(self):
        assert not small_tree().delete(b"nope")

    def test_delete_specific_value_among_duplicates(self):
        tree = small_tree()
        for i in range(5):
            tree.insert(b"dup", f"v{i}".encode())
        assert tree.delete(b"dup", b"v3")
        assert b"v3" not in tree.search(b"dup")
        assert len(tree.search(b"dup")) == 4

    def test_delete_across_leaf_boundary(self):
        tree = small_tree()
        for i in range(100):
            tree.insert(b"dup", f"v{i:03d}".encode())
        assert tree.delete(b"dup", b"v099")
        assert len(tree.search(b"dup")) == 99
        tree.check_invariants()

    def test_delete_then_reinsert(self):
        tree = small_tree()
        for i in range(50):
            tree.insert(f"{i:02d}".encode(), b"v")
        for i in range(0, 50, 2):
            assert tree.delete(f"{i:02d}".encode())
        for i in range(0, 50, 2):
            tree.insert(f"{i:02d}".encode(), b"w")
        assert len(tree) == 50
        tree.check_invariants()


class TestBPlusTreePersistence:
    def test_flush_and_reopen_in_memory(self):
        pager = Pager(page_size=256)
        tree = BPlusTree(pager)
        for i in range(150):
            tree.insert(f"{i:04d}".encode(), str(i).encode())
        tree.flush()
        reopened = BPlusTree.open(pager, tree.root_page, len(tree))
        assert [k for k, _ in reopened.scan()] == [k for k, _ in tree.scan()]
        reopened.check_invariants()

    def test_flush_and_reopen_from_file(self, tmp_path):
        path = str(tmp_path / "tree.db")
        with Pager(path, page_size=256) as pager:
            tree = BPlusTree(pager)
            for i in range(150):
                tree.insert(f"{i:04d}".encode(), str(i).encode())
            tree.flush()
            root, count = tree.root_page, len(tree)
        with Pager(path, page_size=256) as pager:
            reopened = BPlusTree.open(pager, root, count)
            assert reopened.search(b"0042") == [b"42"]
            assert len(list(reopened.scan())) == 150
            reopened.check_invariants()


class TestBPlusTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=0, max_size=20), st.binary(max_size=8)),
            max_size=300,
        )
    )
    def test_behaves_like_sorted_multimap(self, pairs):
        tree = small_tree()
        for key, value in pairs:
            tree.insert(key, value)
        expected = sorted(pairs, key=lambda pair: pair[0])
        got = list(tree.scan())
        assert [k for k, _ in got] == [k for k, _ in expected]
        # Values grouped per key must match as multisets.
        from collections import Counter

        assert Counter(got) == Counter((k, v) for k, v in pairs)
        tree.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=200),
        st.data(),
    )
    def test_range_scans_match_reference(self, keys, data):
        tree = small_tree()
        for key in keys:
            tree.insert(key, b"v")
        start = data.draw(st.sampled_from(keys))
        end = data.draw(st.sampled_from(keys))
        if start > end:
            start, end = end, start
        got = [k for k, _ in tree.scan(start=start, end=end)]
        expected = sorted(k for k in keys if start <= k < end)
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=150),
        st.data(),
    )
    def test_insert_delete_interleaving(self, keys, data):
        tree = small_tree()
        reference: list[bytes] = []
        for key in keys:
            if reference and data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(reference))
                assert tree.delete(victim)
                reference.remove(victim)
            else:
                tree.insert(key, b"v")
                reference.append(key)
        assert [k for k, _ in tree.scan()] == sorted(reference)
        tree.check_invariants()

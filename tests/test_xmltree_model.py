"""Unit tests for the XML node model and document numbering."""

from __future__ import annotations

import pytest

from repro.xmltree import Document, Element, Text


def build_bib() -> Document:
    """The bibliography document from Figure 1 of the paper (abridged)."""
    bib = Element("bib")
    article = bib.add_element("article")
    author = article.add_element("author")
    author.add_element("address")
    author.add_element("email")
    article.add_element("title")
    book = bib.add_element("book")
    book_author = book.add_element("author")
    book_author.add_element("affiliation")
    book.add_element("title")
    return Document(bib)


class TestElementConstruction:
    def test_append_sets_parent(self):
        parent = Element("a")
        child = parent.add_element("b")
        assert child.parent is parent
        assert list(parent.child_elements()) == [child]

    def test_add_text(self):
        element = Element("a")
        text = element.add_text("hello")
        assert isinstance(text, Text)
        assert element.text() == "hello"

    def test_text_concatenates_direct_children_only(self):
        element = Element("a")
        element.add_text("x")
        child = element.add_element("b")
        child.add_text("inner")
        element.add_text("y")
        assert element.text() == "xy"

    def test_attributes_default_empty(self):
        assert Element("a").attributes == {}

    def test_attributes_preserved(self):
        element = Element("a", {"id": "1"})
        assert element.attributes == {"id": "1"}


class TestTraversal:
    def test_iter_is_preorder(self):
        doc = build_bib()
        tags = [e.tag for e in doc.root.iter()]
        assert tags == [
            "bib",
            "article",
            "author",
            "address",
            "email",
            "title",
            "book",
            "author",
            "affiliation",
            "title",
        ]

    def test_descendants_excludes_self(self):
        doc = build_bib()
        tags = [e.tag for e in doc.root.descendants()]
        assert tags[0] == "article"
        assert "bib" not in tags

    def test_find_all(self):
        doc = build_bib()
        assert sum(1 for _ in doc.root.find_all("author")) == 2
        assert sum(1 for _ in doc.root.find_all("title")) == 2
        assert sum(1 for _ in doc.root.find_all("missing")) == 0

    def test_ancestors(self):
        doc = build_bib()
        email = next(doc.root.find_all("email"))
        assert [a.tag for a in email.ancestors()] == ["author", "article", "bib"]


class TestNumbering:
    def test_preorder_ids_are_consecutive(self):
        doc = build_bib()
        ids = [e.node_id for e in doc.elements()]
        assert ids == sorted(ids)
        assert ids[0] == 0

    def test_region_encoding_containment(self):
        doc = build_bib()
        article = next(doc.root.find_all("article"))
        email = next(doc.root.find_all("email"))
        book = next(doc.root.find_all("book"))
        assert article.contains(email)
        assert not book.contains(email)
        assert doc.root.contains(article)
        assert article.contains(article)

    def test_levels(self):
        doc = build_bib()
        assert doc.root.level == 1
        email = next(doc.root.find_all("email"))
        assert email.level == 4

    def test_max_depth(self):
        assert build_bib().max_depth() == 4

    def test_element_count(self):
        assert build_bib().element_count() == 10

    def test_node_count_includes_text(self):
        root = Element("a")
        root.add_text("t")
        root.add_element("b")
        doc = Document(root)
        assert doc.element_count() == 2
        assert doc.node_count() == 3

    def test_element_at_roundtrip(self):
        doc = build_bib()
        for element in doc.elements():
            assert doc.element_at(element.node_id) is element

    def test_element_at_missing_raises(self):
        doc = build_bib()
        with pytest.raises(KeyError):
            doc.element_at(10 ** 6)

    def test_renumber_after_mutation(self):
        doc = build_bib()
        doc.root.add_element("new")
        doc.renumber()
        assert doc.element_count() == 11
        ids = [e.node_id for e in doc.elements()]
        assert ids == sorted(ids)


class TestMeasurements:
    def test_leaf_depth_is_one(self):
        assert Element("a").depth() == 1

    def test_depth_counts_levels(self):
        doc = build_bib()
        assert doc.root.depth() == 4
        author = next(doc.root.find_all("author"))
        assert author.depth() == 2

    def test_size(self):
        doc = build_bib()
        assert doc.root.size() == 10
        book = next(doc.root.find_all("book"))
        assert book.size() == 4

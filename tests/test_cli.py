"""Tests for the command-line interface and store persistence."""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.storage import PrimaryXMLStore
from repro.errors import RecordError
from repro.xmltree import parse_xml


class TestStorePersistence:
    def test_roundtrip(self, tmp_path):
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b>t</b></a>"))
        store.add_document(parse_xml("<c/>"))
        directory = os.fspath(tmp_path / "store")
        store.save(directory)
        loaded = PrimaryXMLStore.load(directory)
        assert loaded.document_count == 2
        assert loaded.get_document(0).root.tag == "a"
        assert next(loaded.get_document(0).root.find_all("b")).text() == "t"
        assert loaded.get_document(1).root.tag == "c"

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(RecordError):
            PrimaryXMLStore.load(os.fspath(tmp_path / "nothing"))


@pytest.fixture()
def built_index_dir(tmp_path):
    directory = os.fspath(tmp_path / "idx")
    code = main(
        [
            "build",
            "--dataset", "xmark",
            "--scale", "0.05",
            "--seed", "3",
            "--out", directory,
        ]
    )
    assert code == 0
    return directory


class TestCLI:
    def test_build_from_xml_files(self, tmp_path, capsys):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text("<a><b><c/></b></a>")
        out = os.fspath(tmp_path / "idx")
        code = main(["build", "--xml", os.fspath(xml_path), "--out", out])
        assert code == 0
        assert os.path.exists(os.path.join(out, "meta.json"))
        assert os.path.exists(os.path.join(out, "store", "primary.json"))
        assert "built FixIndex" in capsys.readouterr().out

    def test_build_dataset_and_query(self, built_index_dir, capsys):
        code = main(["query", built_index_dir, "//item[name]/mailbox"])
        assert code == 0
        output = capsys.readouterr().out
        assert "candidates=" in output
        assert "results=" in output

    def test_query_with_metrics(self, built_index_dir, capsys):
        code = main(["query", built_index_dir, "//item[name]", "--metrics"])
        assert code == 0
        output = capsys.readouterr().out
        assert "sel=" in output and "pp=" in output
        assert "false_negatives=" in output

    def test_query_uncovered_reports_error(self, built_index_dir, capsys):
        # Depth-7 query against the depth-6 index: coverage error, exit 1.
        code = main(["query", built_index_dir, "//a/b/c/d/e/f/g"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_stats(self, built_index_dir, capsys):
        code = main(["stats", built_index_dir])
        assert code == 0
        output = capsys.readouterr().out
        assert "entries:" in output
        assert "top root labels:" in output
        assert "0.00 MB" not in output.split("B-tree:")[1].splitlines()[0]

    def test_stats_surfaces_cache_state(self, built_index_dir, capsys):
        code = main(["stats", built_index_dir])
        assert code == 0
        output = capsys.readouterr().out
        assert "spectral cache:" in output
        assert "plan cache:" in output

    def test_trace_roundtrip(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "idx")
        trace_path = os.fspath(tmp_path / "trace.jsonl")
        assert main(
            [
                "build", "--dataset", "xbench", "--scale", "0.05",
                "--out", directory, "--trace", trace_path,
            ]
        ) == 0
        assert main(
            ["query", directory, "//article", "--trace", trace_path]
        ) == 0
        capsys.readouterr()
        assert main(["trace", trace_path]) == 0
        output = capsys.readouterr().out
        assert "build phases" in output
        assert "//article" in output
        assert main(["trace", trace_path, "--json", "--top", "3"]) == 0
        payload = capsys.readouterr().out
        assert '"phases"' in payload

    def test_trace_missing_file_errors(self, tmp_path, capsys):
        code = main(["trace", os.fspath(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_datasets_listing(self, capsys):
        code = main(["datasets"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("xbench", "dblp", "xmark", "treebank"):
            assert name in output

    def test_bench_table2_small(self, capsys):
        code = main(["bench", "table2", "--scale", "0.05"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_clustered_build_and_query(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "cidx")
        assert (
            main(
                [
                    "build", "--dataset", "xmark", "--scale", "0.05",
                    "--out", directory, "--clustered",
                ]
            )
            == 0
        )
        assert main(["query", directory, "//item[name]"]) == 0
        assert "results=" in capsys.readouterr().out

    def test_value_build_and_query(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "vidx")
        assert (
            main(
                [
                    "build", "--dataset", "dblp", "--scale", "0.05",
                    "--out", directory, "--beta", "8",
                ]
            )
            == 0
        )
        assert (
            main(["query", directory, '//proceedings[publisher = "Springer"]'])
            == 0
        )
        assert "results=" in capsys.readouterr().out

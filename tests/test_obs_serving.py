"""Tests for the serving-grade telemetry layer (DESIGN.md §13):
quantile sketches, rolling windows, exposition, slow-query exemplars,
resource gauges, and the ``repro top`` dashboard.

The load-bearing properties:

* the sketch's reported ``rank_error_bound()`` is *sound* — every
  quantile it returns has true rank within that bound of the target;
* merging is deterministic, and replay-exact below the compaction
  threshold, which makes registry sketch states **byte-identical**
  across build worker counts and shard-worker counts;
* rolling windows expire purely by injected-clock arithmetic.
"""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FixIndex, FixIndexConfig
from repro.core.sharding import ShardedFixIndex
from repro.obs import MetricsRegistry, QuantileSketch, RollingWindow, SlowQueryLog
from repro.obs.expo import render_json, render_prometheus
from repro.obs.resources import ResourceSampler, cpu_seconds, rss_bytes
from repro.obs.sketch import DEFAULT_SKETCH_K
from repro.obs.top import TopDashboard, TraceTail, run_top
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

DOCS = [
    "<bib><article><author><email/></author><title/></article></bib>",
    "<bib><article><author><phone/></author><title/></article></bib>",
    "<bib><book><author><affiliation/></author><title/></book></bib>",
    "<site><regions><item><name/><mailbox><mail/></mailbox></item>"
    "<item><name/></item></regions></site>",
    "<bib><www><title/></www></bib>",
]


def _store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in DOCS:
        store.add_document(parse_xml(source))
    return store


def _exact_rank_window(data: list[float], value: float) -> tuple[int, int]:
    """[min rank, max rank] (1-based) a value occupies in sorted data."""
    ordered = sorted(data)
    lo = 1 + sum(1 for v in ordered if v < value)
    hi = sum(1 for v in ordered if v <= value)
    return lo, max(lo, hi)


finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestSketchAccuracy:
    @given(st.lists(finite_floats, min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_lossless_below_k(self, values):
        """n <= k: zero error bound and exactly correct quantiles."""
        sketch = QuantileSketch("t", k=512)
        for v in values:
            sketch.observe(v)
        assert sketch.rank_error_bound() == 0.0
        ordered = sorted(values)
        n = len(values)
        for q in (0.25, 0.5, 0.9, 0.99):
            target = q * n
            expect = ordered[max(0, math.ceil(target) - 1)]
            assert sketch.quantile(q) == expect
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    @given(
        st.lists(finite_floats, min_size=50, max_size=1200),
        st.integers(min_value=8, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_error_bound_is_sound(self, values, k):
        """Every reported quantile's true rank is within
        n * rank_error_bound() of the target rank — the documented
        contract, at aggressive compaction (tiny k)."""
        sketch = QuantileSketch("t", k=k)
        for v in values:
            sketch.observe(v)
        n = len(values)
        slack = n * sketch.rank_error_bound() + 1  # +1: rank discretization
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            got = sketch.quantile(q)
            lo, hi = _exact_rank_window(values, got)
            target = q * n
            assert lo - slack <= target <= hi + slack

    @given(st.lists(finite_floats, min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_exact_moments(self, values):
        """count/sum/min/max are tracked exactly regardless of k."""
        sketch = QuantileSketch("t", k=8)
        for v in values:
            sketch.observe(v)
        assert sketch.count == len(values)
        if values:
            assert sketch.sum == pytest.approx(math.fsum(values), rel=1e-9)
            assert sketch.min == min(values)
            assert sketch.max == max(values)

    def test_quantile_domain_errors(self):
        sketch = QuantileSketch("t")
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)
        assert math.isnan(sketch.quantile(0.5))  # empty

    def test_k_floor(self):
        with pytest.raises(ValueError):
            QuantileSketch("t", k=4)


class TestSketchMerge:
    @given(
        st.lists(finite_floats, min_size=1, max_size=400),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_chunked_merge_replays_serial_exactly(self, values, chunks):
        """Below k, merging per-chunk sketches in stream order replays
        serial observation exactly — the property the multi-worker
        absorb path (PR 1/7) relies on.  ``sum`` accumulates chunk
        subtotals (float addition is not associative), so it is only
        approx-equal for arbitrary floats; it is bit-exact for
        integer-valued streams like ``build.doc_entries``."""
        serial = QuantileSketch("t", k=512)
        for v in values:
            serial.observe(v)
        merged = QuantileSketch("t", k=512)
        size = max(1, len(values) // chunks)
        for i in range(0, len(values), size):
            part = QuantileSketch("t", k=512)
            for v in values[i : i + size]:
                part.observe(v)
            merged.merge(part)
        a, b = merged.as_dict(), serial.as_dict()
        assert a.pop("sum") == pytest.approx(b.pop("sum"), rel=1e-12)
        assert a == b

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=400),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_merge_byte_identical_for_integer_streams(
        self, values, chunks
    ):
        """Integer-valued streams (the byte-identity acceptance series)
        merge to the bit-exact serial state, ``sum`` included."""
        serial = QuantileSketch("t", k=512)
        for v in values:
            serial.observe(float(v))
        merged = QuantileSketch("t", k=512)
        size = max(1, len(values) // chunks)
        for i in range(0, len(values), size):
            part = QuantileSketch("t", k=512)
            for v in values[i : i + size]:
                part.observe(float(v))
            merged.merge(part)
        assert merged.as_dict() == serial.as_dict()

    @given(
        st.lists(st.lists(finite_floats, min_size=1, max_size=120),
                 min_size=2, max_size=5),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_moments_order_independent(self, parts, rng):
        """count/sum/min/max are exact under ANY merge order, and the
        error bound stays sound."""
        sketches = []
        for part in parts:
            s = QuantileSketch("t", k=16)
            for v in part:
                s.observe(v)
            sketches.append(s)
        order = list(range(len(sketches)))
        rng.shuffle(order)
        merged = QuantileSketch("t", k=16)
        for i in order:
            merged.merge(sketches[i])
        flat = [v for part in parts for v in part]
        assert merged.count == len(flat)
        assert merged.sum == pytest.approx(math.fsum(flat), rel=1e-9)
        assert merged.min == min(flat)
        assert merged.max == max(flat)
        n = len(flat)
        slack = n * merged.rank_error_bound() + 1
        got = merged.quantile(0.5)
        lo, hi = _exact_rank_window(flat, got)
        assert lo - slack <= 0.5 * n <= hi + slack

    @given(st.lists(finite_floats, min_size=1, max_size=600))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_is_byte_identical(self, values):
        sketch = QuantileSketch("t", k=32)
        for v in values:
            sketch.observe(v)
        state = sketch.as_dict()
        clone = QuantileSketch.from_dict("t", state)
        assert clone.as_dict() == state
        assert json.dumps(clone.as_dict(), sort_keys=True) == json.dumps(
            state, sort_keys=True
        )

    def test_merge_rejects_mismatched_k(self):
        a = QuantileSketch("t", k=16)
        b = QuantileSketch("t", k=32)
        b.observe(1.0)
        with pytest.raises(ValueError, match="k=16"):
            a.merge(b)

    def test_merge_empty_is_noop(self):
        a = QuantileSketch("t", k=16)
        a.observe(2.0)
        before = a.as_dict()
        a.merge(QuantileSketch("t", k=64))  # empty: k mismatch ignored
        assert a.as_dict() == before


class TestRegistryByteIdentity:
    """The acceptance contract: registry sketch states are
    byte-identical across worker counts and shard layouts."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_build_sketches_identical_across_worker_counts(self, workers):
        serial = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        parallel = FixIndex.build(
            _store(), FixIndexConfig(depth_limit=4, workers=workers)
        )
        name = "build.doc_entries"
        a = serial.obs.registry.snapshot()["sketches"][name]
        b = parallel.obs.registry.snapshot()["sketches"][name]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_doc_seconds_structure_matches_across_workers(self):
        """Timing values are nondeterministic but the sketch *shape*
        (count, level occupancy) is not."""
        serial = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        parallel = FixIndex.build(
            _store(), FixIndexConfig(depth_limit=4, workers=3)
        )
        a = serial.obs.registry.snapshot()["sketches"]["build.doc_seconds"]
        b = parallel.obs.registry.snapshot()["sketches"]["build.doc_seconds"]
        assert a["count"] == b["count"] == len(DOCS)
        assert [len(lvl) for lvl in a["levels"]] == [
            len(lvl) for lvl in b["levels"]
        ]

    @pytest.mark.parametrize("shard_workers", [1, 2])
    def test_sharded_coordinator_sketches_ignore_shard_workers(
        self, shard_workers
    ):
        """Coordinator build sketches depend only on the shard layout
        (merge happens in shard order), never on scan concurrency."""
        reference = ShardedFixIndex.build(
            _store(), FixIndexConfig(depth_limit=0, shards=3)
        )
        other = ShardedFixIndex.build(
            _store(),
            FixIndexConfig(
                depth_limit=0, shards=3, shard_workers=shard_workers
            ),
        )
        name = "build.doc_entries"
        a = reference.obs.registry.snapshot()["sketches"][name]
        b = other.obs.registry.snapshot()["sketches"][name]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_mutation_latency_sketches_populated(self):
        index = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        index.add_document(parse_xml(DOCS[0]))
        registry = index.obs.registry
        assert registry.sketch("mutation.stage_seconds").count == 1
        assert registry.sketch("mutation.apply_seconds").count == 1

    def test_query_sketches_populated(self):
        index = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        from repro.core.processor import FixQueryProcessor

        processor = FixQueryProcessor(index)
        processor.query("//article[title]")
        registry = index.obs.registry
        for name in (
            "query.seconds",
            "query.plan_seconds",
            "query.prune_seconds",
            "query.refine_seconds",
        ):
            assert registry.sketch(name).count == 1, name


class TestRollingWindow:
    def test_expiry_under_injected_clock(self):
        window = RollingWindow(width=60.0, buckets=12)
        window.observe("lat", 1.0, now=0.0)
        window.observe("lat", 3.0, now=10.0)
        # Both alive at t=30.
        assert window.count("lat", now=30.0) == 2
        assert window.quantile("lat", 1.0, now=30.0) == 3.0
        # t=62: the t=0 bucket fell out, the t=10 one survives.
        assert window.count("lat", now=62.0) == 1
        assert window.quantile("lat", 0.5, now=62.0) == 3.0
        # t=200: everything expired.
        assert window.count("lat", now=200.0) == 0
        assert math.isnan(window.quantile("lat", 0.5, now=200.0))

    def test_bucket_reuse_resets_stale_epoch(self):
        window = RollingWindow(width=10.0, buckets=2)
        window.observe("lat", 1.0, now=0.0)
        # Same ring slot, much later epoch: slot must reset, not mix.
        window.observe("lat", 9.0, now=100.0)
        assert window.count("lat", now=100.0) == 1
        assert window.quantile("lat", 0.5, now=100.0) == 9.0

    def test_counters_and_rates(self):
        window = RollingWindow(width=30.0, buckets=6)
        for t in (0.0, 1.0, 2.0, 29.0):
            window.inc("queries", now=t)
        assert window.count("queries", now=29.0) == 4
        assert window.rate("queries", now=29.0) == pytest.approx(4 / 30.0)

    def test_injected_clock_callable(self):
        now = {"t": 5.0}
        window = RollingWindow(width=10.0, buckets=5, clock=lambda: now["t"])
        window.observe("lat", 2.0)
        assert window.count("lat") == 1
        now["t"] = 100.0
        assert window.count("lat") == 0

    def test_snapshot_shape(self):
        window = RollingWindow(width=60.0, buckets=6)
        window.observe("lat", 0.25, now=1.0)
        window.inc("queries", now=1.0)
        snap = window.snapshot(now=2.0)
        assert snap["width_seconds"] == 60.0
        assert snap["series"]["lat"]["count"] == 1
        assert snap["series"]["lat"]["p99"] == 0.25
        assert snap["series"]["queries"]["count"] == 1

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=300, allow_nan=False),
                finite_floats,
            ),
            min_size=1,
            max_size=80,
        ),
        st.floats(min_value=0, max_value=400, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_matches_bucket_arithmetic(self, samples, now):
        """Windowed count equals a direct recomputation over bucket
        epochs — expiry is pure arithmetic, monotonic clock or not."""
        width, buckets = 60.0, 12
        span = width / buckets
        window = RollingWindow(width=width, buckets=buckets)
        # Each ring slot holds exactly one epoch — the one last written
        # (with a monotonic clock that is also the newest); replicate.
        slots: dict[int, dict[int, int]] = {}
        for t, v in samples:
            window.observe("s", v, now=t)
            epoch = int(t // span)
            slot = slots.setdefault(epoch % buckets, {})
            if epoch not in slot:
                slot.clear()
                slot[epoch] = 0
            slot[epoch] += 1
        newest = int(now // span)
        oldest = newest - buckets + 1
        expect = sum(
            count
            for slot in slots.values()
            for epoch, count in slot.items()
            if oldest <= epoch <= newest
        )
        assert window.count("s", now=now) == expect


class TestExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("query.count").inc(3)
        registry.gauge("process.rss_bytes").set(1024.0)
        registry.histogram("lat", bounds=(0.1, 1.0)).observe(0.05)
        sketch = registry.sketch("query.seconds")
        for v in (0.1, 0.2, 0.3, 0.4):
            sketch.observe(v)
        return registry

    def test_prometheus_text_shape(self):
        text = render_prometheus(self._registry().snapshot())
        assert "# TYPE repro_query_count_total counter" in text
        assert "repro_query_count_total 3" in text
        assert "# TYPE repro_process_rss_bytes gauge" in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "# TYPE repro_query_seconds summary" in text
        assert 'repro_query_seconds{quantile="0.5"} 0.2' in text
        assert "repro_query_seconds_count 4" in text
        assert text.endswith("\n")

    def test_prometheus_names_are_legal(self):
        text = render_prometheus(self._registry().snapshot())
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert "." not in name and name.startswith("repro_")

    def test_json_exposition_derives_sketches(self):
        payload = json.loads(render_json(self._registry().snapshot()))
        assert payload["counters"]["query.count"] == 3
        derived = payload["sketches"]["query.seconds"]
        assert derived["count"] == 4
        assert derived["rank_error_bound"] == 0.0
        assert derived["quantiles"]["0.5"] == 0.2
        assert derived["max"] == 0.4
        assert "levels" not in derived  # derived numbers, not raw state

    def test_empty_snapshot_renders(self):
        assert render_prometheus({}) == "\n"
        assert json.loads(render_json({})) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "sketches": {},
        }


class _FakeResult:
    plan_seconds = 0.001
    prune_seconds = 0.002
    refine_seconds = 0.017
    plan_cached = False
    candidate_count = 10
    result_count = 2
    documents_fetched = 3
    backend = "btree"
    workers = 1
    pushdown = False


class TestSlowQueryLog:
    def test_fixed_threshold(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold=0.01)
        assert not log.is_slow(0.005)
        assert log.is_slow(0.02)
        entry = log.record(_FakeResult(), "//a[b]", epoch={"epoch": 3})
        assert entry["type"] == "slow_query"
        assert entry["seconds"] == pytest.approx(0.02)
        assert entry["epoch"] == {"epoch": 3}
        on_disk = [json.loads(line) for line in open(path)]
        assert len(on_disk) == 1 and on_disk[0]["source"] == "//a[b]"
        assert log.considered == 2 and log.captured == 1

    def test_derived_threshold_activates_after_min_count(self):
        registry = MetricsRegistry()
        log = SlowQueryLog(registry=registry, min_count=10, quantile=0.9)
        sketch = registry.sketch("query.seconds")
        assert log.current_threshold() is None
        assert not log.is_slow(100.0)  # inactive: nothing is slow yet
        for i in range(10):
            sketch.observe(0.001 * (i + 1))
        assert log.current_threshold() == pytest.approx(0.009)
        assert log.is_slow(0.05)
        assert not log.is_slow(0.005)

    def test_ring_compaction_bounds_file(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold=0.0, capacity=5)
        for _ in range(23):
            log.record(_FakeResult(), "//a")
        lines = [line for line in open(path) if line.strip()]
        assert len(lines) <= 2 * 5
        reopened = SlowQueryLog(path=path, threshold=0.0, capacity=5)
        assert reopened._file_records == len(lines)

    def test_publish_counters(self):
        registry = MetricsRegistry()
        log = SlowQueryLog(threshold=0.01)
        log.is_slow(0.5)
        log.record(_FakeResult(), "//a")
        log.publish(registry)
        snap = registry.snapshot()
        assert snap["counters"]["slowlog.considered"] == 1
        assert snap["counters"]["slowlog.captured"] == 1
        assert snap["gauges"]["slowlog.threshold_seconds"] == 0.01

    def test_capture_end_to_end_via_processor(self):
        from repro.core.processor import FixQueryProcessor

        index = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        log = SlowQueryLog(threshold=0.0)  # everything is slow
        processor = FixQueryProcessor(index, slow_log=log)
        processor.query("//article[title]")
        assert log.captured == 1
        entry = log.entries[-1]
        assert entry["source"] == "//article[title]"
        assert entry["epoch"].get("epoch", -1) >= 0  # pinned snapshot


class TestResourceSampler:
    def test_sample_once_publishes_gauges(self):
        index = FixIndex.build(_store(), FixIndexConfig(depth_limit=4))
        sampler = ResourceSampler(index.obs.registry, index=index)
        sampler.sample_once()
        gauges = index.obs.registry.snapshot()["gauges"]
        assert gauges["process.rss_bytes"] > 0
        assert gauges["process.cpu_seconds"] >= 0
        assert gauges["epoch.readers_pinned"] == 0
        counters = index.obs.registry.snapshot()["counters"]
        assert counters["resources.samples"] == 1

    def test_primitives(self):
        assert rss_bytes() > 0
        assert cpu_seconds() >= 0

    def test_ticker_context_manager(self):
        registry = MetricsRegistry()
        with ResourceSampler(registry, interval=30.0) as sampler:
            pass  # stop() takes a final sample
        assert sampler.samples >= 1


class TestTopDashboard:
    def _write_events(self, path, events, mode="a"):
        with open(path, mode, encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_tail_only_consumes_whole_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type":"span","name":"query","start":1.0,"dur":0.1}\n')
            handle.write('{"type":"span","na')  # a writer mid-append
        tail = TraceTail(path)
        assert len(tail.poll()) == 1
        with open(path, "a") as handle:
            handle.write('me":"query","start":2.0,"dur":0.2}\n')
        assert len(tail.poll()) == 1
        assert tail.skipped == 0

    def test_tail_skips_malformed_and_resets_on_truncate(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._write_events(path, [{"type": "span"}], mode="w")
        with open(path, "a") as handle:
            handle.write("garbage\n")
        tail = TraceTail(path)
        assert len(tail.poll()) == 1
        assert tail.skipped == 1
        # Truncate/rotate to a smaller file: offset resets and the new
        # content is re-read from the start (size-based detection).
        self._write_events(path, [{"type": "x"}], mode="w")
        assert len(tail.poll()) == 1

    def test_dashboard_windows_and_slow_ring(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        events = [
            {"type": "span", "name": "query", "run": "r", "id": 1,
             "start": 100.0, "dur": 0.010},
            {"type": "span", "name": "query.refine", "run": "r", "id": 2,
             "parent": 1, "start": 100.0, "dur": 0.008},
            {"type": "span", "name": "query", "run": "r", "id": 3,
             "start": 130.0, "dur": 0.050, "error": "boom"},
            {"type": "slow_query", "ts": 130.1, "seconds": 0.050,
             "plan_s": 0.001, "prune_s": 0.002, "refine_s": 0.047,
             "source": "//a[b]"},
            {"type": "metrics", "run": "r", "snapshot": {
                "counters": {"query.plan_cache.hits": 3,
                             "query.plan_cache.misses": 1},
                "gauges": {"epoch.current": 2},
                "histograms": {},
                "sketches": {},
            }},
        ]
        self._write_events(path, events, mode="w")
        dash = TopDashboard(path, window_seconds=60.0)
        assert dash.poll() == 5
        assert dash.total_queries == 2
        frame = dash.render()
        assert "2 lifetime" in frame
        assert "1 errors" in frame
        assert "query.seconds" in frame
        assert "plan 75.0%" in frame
        assert "epoch 2" in frame
        assert "//a[b]" in frame
        # Window pinned past the first query: only the second remains.
        assert dash.window.count("queries", now=185.0) == 1

    def test_dashboard_merges_last_sketch_state_per_run(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        s1 = QuantileSketch("query.seconds")
        s1.observe(0.1)
        state1 = s1.as_dict()
        s1.observe(0.2)
        state2 = s1.as_dict()
        events = [
            {"type": "metrics", "run": "r", "snapshot": {
                "counters": {}, "gauges": {}, "histograms": {},
                "sketches": {"query.seconds": state1}}},
            {"type": "metrics", "run": "r", "snapshot": {
                "counters": {}, "gauges": {}, "histograms": {},
                "sketches": {"query.seconds": state2}}},
        ]
        self._write_events(path, events, mode="w")
        dash = TopDashboard(path)
        dash.poll()
        merged = dash.lifetime_sketches()
        # Second flush supersedes the first — 2 observations, not 3.
        assert merged.sketch("query.seconds").count == 2

    def test_run_top_once_renders_real_trace(self, tmp_path):
        index_obs = FixIndex.build(
            _store(), FixIndexConfig(depth_limit=4)
        ).obs
        from repro.core.processor import FixQueryProcessor

        index_obs.tracer.enabled = True
        path = str(tmp_path / "trace.jsonl")
        index_obs.flush(path)
        out = io.StringIO()
        assert run_top(path, once=True, out=out) == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "\x1b" not in frame  # --once is escape-free (CI mode)

    def test_run_top_bounded_iterations(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._write_events(
            path,
            [{"type": "span", "name": "query", "run": "r", "id": 1,
              "start": 1.0, "dur": 0.01}],
            mode="w",
        )
        out = io.StringIO()
        assert run_top(path, once=False, interval=0.0, out=out,
                       iterations=2) == 0
        assert out.getvalue().count("repro top") == 2

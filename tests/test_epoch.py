"""Tests for the epoch layer (snapshot isolation + scoped invalidation).

Covers the epoch manager's snapshot/latching semantics, label-scoped
plan retention across mutations, incremental histogram and spatial-view
maintenance (sound *and* tight after removals), the separation of
``build.incremental.*`` from the batch-build metrics, and — the
integration property everything else exists for — that a query racing a
mutation returns either the pre- or post-mutation answer, never a mix.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    EpochManager,
    FeatureHistogram,
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    ShardedFixIndex,
)
from repro.core.epoch import EpochSnapshot
from repro.obs import ObsConfig
from repro.query import twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml, serialize_fragment

BIB_DOCS = [
    "<bib><article><author/><title/></article></bib>",
    "<bib><book><author/><title/></book></bib>",
]
SITE_DOCS = [
    "<site><people><person/></people></site>",
]


def build_index(depth_limit: int = 3, **config_kwargs) -> FixIndex:
    store = PrimaryXMLStore()
    for source in BIB_DOCS + SITE_DOCS:
        store.add_document(parse_xml(source))
    return FixIndex.build(
        store, FixIndexConfig(depth_limit=depth_limit, **config_kwargs)
    )


def build_sharded(depth_limit: int = 3, **config_kwargs) -> ShardedFixIndex:
    store = PrimaryXMLStore()
    for source in BIB_DOCS + SITE_DOCS:
        store.add_document(parse_xml(source))
    config = FixIndexConfig(
        depth_limit=depth_limit, shards=2, **config_kwargs
    )
    return ShardedFixIndex.build(store, config)


# --------------------------------------------------------------------- #
# Snapshot semantics
# --------------------------------------------------------------------- #


class TestEpochSnapshot:
    def test_initial_snapshot_is_epoch_zero(self):
        snapshot = EpochSnapshot()
        assert snapshot.epoch == 0
        assert snapshot.label_epoch("anything") == 0
        assert snapshot.changed_labels_since(0) == []

    def test_scoped_advance_touches_only_its_labels(self):
        manager = EpochManager()
        with manager.mutation({"bib"}):
            pass
        snapshot = manager.current
        assert snapshot.epoch == 1
        assert snapshot.label_epoch("bib") == 1
        assert snapshot.label_epoch("site") == 0
        assert snapshot.changed_labels_since(0) == ["bib"]

    def test_max_epoch_over_is_per_label(self):
        manager = EpochManager()
        with manager.mutation({"bib"}):
            pass
        with manager.mutation({"site"}):
            pass
        snapshot = manager.current
        assert snapshot.max_epoch_over({"bib"}) == 1
        assert snapshot.max_epoch_over({"site"}) == 2
        assert snapshot.max_epoch_over({"bib", "site"}) == 2
        # Nothing can be proven untouched for an empty label set.
        assert snapshot.max_epoch_over(()) == snapshot.epoch

    def test_full_invalidation_moves_the_floor(self):
        manager = EpochManager()
        with manager.mutation({"bib"}):
            pass
        manager.rebuild()
        snapshot = manager.current
        assert snapshot.floor == snapshot.epoch == 2
        # A consumer cached before the floor must rebuild wholesale.
        assert snapshot.changed_labels_since(1) is None
        assert snapshot.label_epoch("never_touched") == snapshot.floor

    def test_mutation_publishes_even_when_the_body_raises(self):
        manager = EpochManager()
        with pytest.raises(RuntimeError):
            with manager.mutation({"bib"}):
                raise RuntimeError("half-applied")
        # The partial apply still invalidated downstream caches.
        assert manager.current.label_epoch("bib") == 1


class TestEpochLatching:
    def test_pinned_reader_blocks_apply_until_released(self):
        manager = EpochManager()
        applied = threading.Event()
        entered = threading.Event()

        def writer():
            entered.set()
            with manager.mutation({"bib"}):
                applied.set()

        with manager.pin() as snapshot:
            thread = threading.Thread(target=writer)
            thread.start()
            entered.wait(timeout=5)
            # The writer is waiting on our pin; give it a beat to
            # (incorrectly) apply if the latch were broken.
            assert not applied.wait(timeout=0.1)
            assert snapshot.epoch == 0
        thread.join(timeout=5)
        assert applied.is_set()
        assert manager.epoch == 1

    def test_readers_share_the_latch(self):
        manager = EpochManager()
        with manager.pin(), manager.pin():
            pass  # no deadlock, two concurrent pins
        assert manager.pins == 2

    def test_writer_not_starved_by_saturated_read_loop(self):
        # Regression: with reader preference, the unpin->re-pin gap of
        # a hot read loop is a few bytecodes and a waiting writer loses
        # the wakeup race indefinitely (observed as 1 mutation against
        # tens of thousands of queries).  Writer preference gates new
        # pins behind the waiting writer, so mutations make progress.
        manager = EpochManager()
        stop = threading.Event()
        finished = threading.Event()

        def reader():
            while not stop.is_set():
                with manager.pin():
                    time.sleep(0.001)

        def writer():
            for _ in range(5):
                with manager.mutation({"bib"}):
                    pass
            finished.set()

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            assert finished.wait(timeout=10), "mutations starved by readers"
        finally:
            stop.set()
            writer_thread.join(timeout=5)
            for thread in readers:
                thread.join(timeout=5)
        assert manager.epoch == 5


# --------------------------------------------------------------------- #
# Label-scoped plan retention
# --------------------------------------------------------------------- #


class TestScopedPlanRetention:
    def test_plans_over_untouched_labels_survive_mutations(self):
        index = build_index()
        processor = FixQueryProcessor(index)
        processor.query("//book/title")  # plan over {bib}
        index.add_document(parse_xml("<site><people><robot/></people></site>"))
        result = processor.query("//book/title")
        assert result.plan_cached  # untouched label: no re-plan
        assert processor.plan_cache.scoped_retained >= 1

    def test_plans_over_touched_labels_are_invalidated(self):
        index = build_index()
        processor = FixQueryProcessor(index)
        processor.query("//book/title")
        index.add_document(parse_xml("<bib><book><isbn/></book></bib>"))
        result = processor.query("//book/title")
        assert not result.plan_cached  # bib was touched: re-planned
        # ... and the fresh plan reflects the new entries.
        assert result.candidate_count >= 2

    def test_rebuild_invalidates_everything(self):
        index = build_index()
        processor = FixQueryProcessor(index)
        processor.query("//book/title")
        index.rebuild()
        assert not processor.query("//book/title").plan_cached


# --------------------------------------------------------------------- #
# Histogram maintenance (sound and tight)
# --------------------------------------------------------------------- #


class TestHistogramRefresh:
    def test_refresh_matches_a_from_scratch_rebuild(self):
        index = build_index()
        histogram = FeatureHistogram(index)
        pinned = index.epochs.current
        index.remove_document(1)  # a bib document
        stale = index.epochs.current.changed_labels_since(pinned.epoch)
        histogram.refresh(index, stale)
        fresh = FeatureHistogram(index)
        assert histogram._histograms.keys() == fresh._histograms.keys()
        for label in fresh._histograms:
            got, want = histogram._histograms[label], fresh._histograms[label]
            assert (got.lo, got.hi, got.counts, got.unbounded) == (
                want.lo,
                want.hi,
                want.counts,
                want.unbounded,
            ), label

    def test_removal_tightens_the_label_endpoints(self):
        # Removing entries can only shrink the recorded λ_max range, so
        # the may_contain skip test stays sound *and* gets tighter.
        index = build_index()
        histogram = FeatureHistogram(index)
        before = histogram._histograms["bib"]
        index.remove_document(1)
        histogram.refresh(index, ["bib"])
        after = histogram._histograms["bib"]
        assert after.hi <= before.hi
        assert after.lo >= before.lo
        assert sum(after.counts) + after.unbounded < sum(
            before.counts
        ) + before.unbounded

    def test_emptied_label_loses_its_slice(self):
        index = build_index()
        histogram = FeatureHistogram(index)
        assert "site" in histogram._histograms
        index.remove_document(2)  # the only site document
        histogram.refresh(index, ["site"])
        assert "site" not in histogram._histograms

    def test_processor_histogram_refreshes_per_label(self):
        # Collection-mode intersections consult the histogram; churn on
        # one label must not leave estimates stale for it.
        store = PrimaryXMLStore()
        for source in BIB_DOCS + SITE_DOCS:
            store.add_document(parse_xml(source))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        processor = FixQueryProcessor(index)
        key = index.query_features(twig_of("/site"))
        assert processor._estimate_candidates(key, True) == pytest.approx(1.0)
        index.remove_document(2)
        assert processor._estimate_candidates(key, True) == pytest.approx(0.0)


# --------------------------------------------------------------------- #
# Spatial view maintenance
# --------------------------------------------------------------------- #


class TestSpatialRefresh:
    def test_untouched_partitions_keep_pointer_identity(self):
        index = build_index(prune_backend="rtree")
        view = index.spatial_view()
        site_tree = view._trees["site"]
        index.add_document(parse_xml("<bib><book><isbn/></book></bib>"))
        refreshed = view_after = index.spatial_view()
        assert view_after is view  # the view object is maintained
        assert refreshed._trees["site"] is site_tree  # untouched label
        assert refreshed._trees["bib"] is not None

    def test_rtree_answers_track_mutations(self):
        index = build_index(prune_backend="rtree")
        processor = FixQueryProcessor(index, prune_backend="rtree")
        doc_id = index.add_document(
            parse_xml("<bib><thesis><title/></thesis></bib>")
        )
        result = processor.query("//thesis/title")
        assert {p.doc_id for p in result.results} == {doc_id}
        index.remove_document(doc_id)
        assert processor.query("//thesis/title").results == []

    def test_emptied_label_drops_its_tree(self):
        index = build_index(prune_backend="rtree")
        view = index.spatial_view()
        assert "site" in view._trees
        index.remove_document(2)
        assert "site" not in index.spatial_view()._trees

    def test_work_counters_stay_monotone_across_refresh(self):
        index = build_index(prune_backend="rtree")
        processor = FixQueryProcessor(index, prune_backend="rtree")
        processor.query("//book/title")
        before = index.spatial_view().entries_inspected()
        index.add_document(parse_xml("<bib><book><isbn/></book></bib>"))
        processor.query("//book/title")
        assert index.spatial_view().entries_inspected() >= before


# --------------------------------------------------------------------- #
# Metrics separation and the remove span
# --------------------------------------------------------------------- #


class TestIncrementalMetrics:
    def test_batch_build_counters_are_frozen_after_mutations(self):
        index = build_index()
        counters = index.obs.registry.snapshot()["counters"]
        batch_docs = counters["build.documents"]
        batch_entries = counters["build.entries"]
        index.add_document(parse_xml("<bib><misc/></bib>"))
        index.remove_document(0)
        counters = index.obs.registry.snapshot()["counters"]
        assert counters["build.documents"] == batch_docs
        assert counters["build.entries"] == batch_entries
        # Staging work: one add plus the removal's shadow re-staging.
        assert counters["build.incremental.documents"] == 2
        assert counters["build.incremental.documents_removed"] == 1
        assert counters["build.incremental.entries_removed"] > 0

    def test_epoch_counters_publish(self):
        index = build_index()
        index.add_document(parse_xml("<bib><misc/></bib>"))
        processor = FixQueryProcessor(index)
        processor.query("//misc")
        counters = index.obs.registry.snapshot()["counters"]
        assert counters["epoch.mutations"] >= 1
        assert counters["epoch.pins"] >= 1

    def test_remove_span_reports_feature_cache_hits(self):
        # Satellite: the shadow generator routes through the content-
        # addressed cache, so re-staging a document for removal is all
        # cache hits — and the span proves it.
        index = build_index(obs=ObsConfig(trace=True))
        index.remove_document(0)
        spans = [
            e
            for e in index.obs.tracer.events
            if e["type"] == "span" and e["name"] == "index.remove_document"
        ]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert "cache_hits" in attrs
        assert attrs["cache_hits"] > 0  # staged shapes were already cached


# --------------------------------------------------------------------- #
# Sharded coordinator epochs
# --------------------------------------------------------------------- #


class TestShardedEpochs:
    def test_mutation_bumps_only_the_owning_shards_epoch(self):
        index = build_sharded()
        before = index.epoch_vector()
        generation_before = index.generation
        doc_id = index.add_document(parse_xml("<bib><misc/></bib>"))
        after = index.epoch_vector()
        owner = index.shard_of(doc_id)
        changed = [
            shard_id
            for shard_id in range(index.shard_count)
            if after[shard_id].epoch != before[shard_id].epoch
        ]
        assert changed == [owner]
        # The coordinator epoch advanced by exactly one.
        assert index.generation == generation_before + 1

    def test_scatter_gather_answers_track_mutations(self):
        index = build_sharded()
        processor = FixQueryProcessor(index)
        doc_id = index.add_document(
            parse_xml("<bib><thesis><title/></thesis></bib>")
        )
        assert {
            p.doc_id for p in processor.query("//thesis/title").results
        } == {doc_id}
        index.remove_document(doc_id)
        assert processor.query("//thesis/title").results == []

    def test_histogram_cache_survives_mutations_to_other_shards(self):
        index = build_sharded()
        key = index.query_features(twig_of("//book"))
        index.candidates_for_key(key)  # populate per-shard histograms
        cached = [
            index._histograms[shard_id]
            for shard_id in range(index.shard_count)
        ]
        doc_id = index.add_document(parse_xml("<bib><misc/></bib>"))
        owner = index.shard_of(doc_id)
        list(index.candidates_for_key(key))
        for shard_id in range(index.shard_count):
            entry = index._histograms[shard_id]
            if shard_id != owner and cached[shard_id] is not None:
                # Untouched shard: the histogram object is reused.
                assert entry is not None
                assert entry[1] is cached[shard_id][1]


# --------------------------------------------------------------------- #
# Concurrent mutation vs. query (the integration property)
# --------------------------------------------------------------------- #

CHURN_SOURCE = "<churn><part/><part/><part/></churn>"


def _churn_and_query(index, backend: str, pushdown: bool = False):
    """Race a mutator (add+remove of a 4-entry document) against a
    querying thread; every observed answer must equal a quiesced state's
    answer — 0 or 3 parts — never a torn in-between."""
    processor = FixQueryProcessor(
        index, prune_backend=backend, pushdown=pushdown
    )
    errors: list[BaseException] = []
    done = threading.Event()

    def mutate():
        try:
            for _ in range(12):
                doc_id = index.add_document(parse_xml(CHURN_SOURCE))
                index.remove_document(doc_id)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    observed: set[int] = set()
    thread = threading.Thread(target=mutate)
    thread.start()
    while not done.is_set():
        observed.add(len(processor.query("//part").results))
    thread.join(timeout=30)
    assert not errors, errors
    # Either snapshot's answer, never a mix of applied/unapplied entries.
    assert observed <= {0, 3}, observed
    # Quiesced rerun: all churn documents were removed again.
    assert processor.query("//part").results == []


class TestConcurrentMutation:
    @pytest.mark.parametrize("backend", ["btree", "rtree"])
    def test_single_index_queries_see_whole_snapshots(self, backend):
        _churn_and_query(build_index(), backend)

    @pytest.mark.parametrize("backend", ["btree", "rtree"])
    def test_sharded_queries_see_whole_snapshots(self, backend):
        _churn_and_query(build_sharded(), backend)

    def test_sharded_pushdown_queries_see_whole_snapshots(self):
        _churn_and_query(build_sharded(), "btree", pushdown=True)

    def test_concurrent_answers_match_quiesced_rerun(self):
        # Adds only (no removals), so the final state is deterministic:
        # every concurrent answer must be a prefix-consistent subset of
        # the quiesced answer, and the quiesced rerun must equal a
        # freshly built index over the same documents.
        index = build_index()
        processor = FixQueryProcessor(index)
        snapshots: list[frozenset[tuple[int, int]]] = []
        done = threading.Event()

        def mutate():
            try:
                for i in range(8):
                    index.add_document(parse_xml(CHURN_SOURCE))
            finally:
                done.set()

        thread = threading.Thread(target=mutate)
        thread.start()
        while not done.is_set():
            result = processor.query("//part")
            snapshots.append(
                frozenset((p.doc_id, p.node_id) for p in result.results)
            )
        thread.join(timeout=30)
        final = frozenset(
            (p.doc_id, p.node_id)
            for p in processor.query("//part").results
        )
        assert len(final) == 8 * 3
        for answer in snapshots:
            # Whole documents only: each answer is all-or-nothing per
            # churn document (3 parts each), and a subset of the final.
            assert answer <= final
            assert len(answer) % 3 == 0

    def test_quiesced_equivalence_to_rebuild(self):
        # After churn settles, the mutated index answers exactly like an
        # index built from scratch over the surviving documents.
        index = build_index()
        added = [
            index.add_document(parse_xml(CHURN_SOURCE)) for _ in range(3)
        ]
        index.remove_document(added[1])
        index.remove_document(0)

        store = PrimaryXMLStore()
        for doc_id in index.store.doc_ids():
            store.add_document(
                parse_xml(
                    serialize_fragment(
                        index.store.get_document(doc_id).root
                    )
                )
            )
        rebuilt = FixIndex.build(store, index.config)
        mutated_processor = FixQueryProcessor(index)
        for query in ("//part", "//book/title", "//person"):
            got = sorted(
                (p.doc_id, p.node_id)
                for p in mutated_processor.query(query).results
            )
            # Doc ids shift in the rebuilt store; compare by multiset of
            # node ids per matching document count instead.
            want = sorted(
                p.node_id
                for p in FixQueryProcessor(rebuilt).query(query).results
            )
            assert sorted(node_id for _, node_id in got) == want, query

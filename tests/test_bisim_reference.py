"""Cross-validation of the single-pass bisimulation builder against an
independent reference implementation (naive fixpoint partition
refinement), plus equivalence properties that tie the two notions used
in the paper together."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bisim import bisim_graph_of_document
from repro.fb import fb_partition
from repro.xmltree import Document, Element


def reference_downward_bisim(document: Document) -> dict[int, int]:
    """Coarsest downward bisimulation by naive fixpoint refinement:
    start from the by-label partition and refine each node's block by
    the *set* of its children's blocks until stable.  O(n^2)-ish and
    obviously correct — the oracle for the streaming builder."""
    elements = list(document.elements())
    block: dict[int, int] = {}
    interning: dict[object, int] = {}
    for element in elements:
        block[element.node_id] = interning.setdefault(element.tag, len(interning))
    while True:
        interning = {}
        refined: dict[int, int] = {}
        for element in elements:
            signature = (
                element.tag,
                frozenset(block[c.node_id] for c in element.child_elements()),
            )
            refined[element.node_id] = interning.setdefault(
                signature, len(interning)
            )
        if len(set(refined.values())) == len(set(block.values())):
            return refined
        block = refined


def random_document(rng: random.Random, labels: list[str], size: int) -> Document:
    root = Element(rng.choice(labels))
    nodes = [root]
    for _ in range(size):
        parent = rng.choice(nodes)
        child = parent.add_element(rng.choice(labels))
        nodes.append(child)
    return Document(root)


def builder_partition(document: Document) -> dict[int, int]:
    graph = bisim_graph_of_document(document, record_extents=True)
    partition: dict[int, int] = {}
    for vertex in graph.vertices:
        for node_id in vertex.extent or []:
            partition[node_id] = vertex.vid
    return partition


def partitions_equal(left: dict[int, int], right: dict[int, int]) -> bool:
    """Same partition up to block renaming."""
    if left.keys() != right.keys():
        return False
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for key in left:
        a, b = left[key], right[key]
        if mapping.setdefault(a, b) != b:
            return False
        if reverse.setdefault(b, a) != a:
            return False
    return True


class TestBuilderAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=9999))
    def test_streaming_builder_equals_fixpoint_oracle(self, size, seed):
        rng = random.Random(seed)
        document = random_document(rng, ["a", "b", "c"], size)
        assert partitions_equal(
            builder_partition(document), reference_downward_bisim(document)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=9999))
    def test_recursive_labels(self, size, seed):
        # Single-label documents are the hardest case: blocks are
        # distinguished purely by structure (and its depth strata).
        rng = random.Random(seed)
        document = random_document(rng, ["n"], size)
        assert partitions_equal(
            builder_partition(document), reference_downward_bisim(document)
        )


class TestFBRefinesDownwardBisim:
    """F&B equivalence adds the backward condition, so the F&B partition
    must always *refine* the downward bisimulation partition."""

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=9999))
    def test_refinement_property(self, size, seed):
        rng = random.Random(seed)
        document = random_document(rng, ["a", "b"], size)
        downward = builder_partition(document)
        fandb = fb_partition(document)
        # Two F&B-equivalent nodes must be downward-bisimilar.
        blocks: dict[int, int] = {}
        for node_id, fb_block in fandb.items():
            if fb_block in blocks:
                assert downward[node_id] == blocks[fb_block]
            else:
                blocks[fb_block] = downward[node_id]

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=9999))
    def test_fb_never_coarser(self, size, seed):
        rng = random.Random(seed)
        document = random_document(rng, ["a", "b", "c"], size)
        downward_blocks = len(set(builder_partition(document).values()))
        fb_blocks = len(set(fb_partition(document).values()))
        assert fb_blocks >= downward_blocks

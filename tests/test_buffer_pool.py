"""Buffer-pool tests: the bounded page cache behind every file-backed
pager — LRU eviction, pinning, dirty write-back, mmap-backed reopen —
plus the bounded B+tree node table that sits on top of it."""

from __future__ import annotations

import os

import pytest

from repro.btree import BPlusTree
from repro.errors import BTreeError, PageError
from repro.obs import MetricsRegistry
from repro.storage import PAGE_SIZE, Pager
from repro.storage.pager import PagerStats


def _fill(pager: Pager, pages: int) -> None:
    for i in range(pages):
        page_id = pager.allocate()
        pager.write(page_id, bytes([i % 251]) * pager.page_size)


class TestBufferPoolBound:
    def test_resident_pages_never_exceed_cache(self, tmp_path):
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=8)
        _fill(pager, 64)
        assert pager.resident_pages <= 8
        for i in range(64):
            pager.read(i)
            assert pager.resident_pages <= 8
        assert pager.stats.evictions > 0
        pager.close()

    def test_in_memory_pager_never_evicts(self):
        pager = Pager(cache_pages=2)
        _fill(pager, 32)
        assert pager.resident_pages == 32
        assert pager.stats.evictions == 0

    def test_lru_order(self, tmp_path):
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=2)
        _fill(pager, 2)
        pager.flush()
        pager.read(0)  # page 1 is now least-recently-used
        before = pager.stats.physical_reads
        pager.read(2 - 2)  # page 0 still hot: no physical read
        assert pager.stats.physical_reads == before
        pager.allocate()  # evicts page 1
        pager.read(1)  # ... which must come back from disk
        assert pager.stats.physical_reads == before + 1
        pager.close()

    def test_eviction_writes_back_dirty_pages(self, tmp_path):
        path = os.fspath(tmp_path / "p.pages")
        pager = Pager(path, cache_pages=2)
        first = pager.allocate()
        pager.write(first, b"\xab" * PAGE_SIZE)
        _fill(pager, 8)  # pushes the dirty first page out
        assert pager.read(first) == b"\xab" * PAGE_SIZE
        pager.close()

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(PageError):
            Pager(cache_pages=0)
        with pytest.raises(PageError):
            Pager(page_size=32)


class TestPinning:
    def test_pinned_page_survives_pressure(self, tmp_path):
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=2)
        target = pager.allocate()
        pager.write(target, b"\x77" * PAGE_SIZE)
        with pager.pin(target):
            before = pager.stats.physical_reads
            _fill(pager, 8)
            # The pinned frame was never evicted, so this is a cache hit.
            assert pager.read(target) == b"\x77" * PAGE_SIZE
            assert pager.stats.physical_reads == before
        pager.close()

    def test_pin_requires_resident_frame(self, tmp_path):
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=2)
        victim = pager.allocate()
        _fill(pager, 8)  # evicts it
        with pytest.raises(PageError):
            pager.pin(victim)
        with pytest.raises(PageError):
            pager.pin(victim + 999)
        pager.close()

    def test_mark_dirty_requires_resident_frame(self, tmp_path):
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=2)
        victim = pager.allocate()
        _fill(pager, 8)
        with pytest.raises(PageError):
            pager.mark_dirty(victim)
        pager.close()


class TestMmapBacking:
    def test_reopen_reads_through_mmap(self, tmp_path):
        path = os.fspath(tmp_path / "p.pages")
        with Pager(path, cache_pages=4) as pager:
            _fill(pager, 16)
        reopened = Pager(path, cache_pages=4)
        assert reopened.page_count == 16
        for i in range(16):
            assert reopened.read(i)[0] == i % 251
        assert reopened.stats.physical_reads == 16
        reopened.close()

    def test_reads_coherent_after_interleaved_writes(self, tmp_path):
        # mmap is established early; pwrite-backed growth and eviction
        # write-back must stay visible to later mapped reads.
        path = os.fspath(tmp_path / "p.pages")
        pager = Pager(path, cache_pages=2)
        ids = [pager.allocate() for _ in range(12)]
        for i, page_id in enumerate(ids):
            pager.write(page_id, bytes([0xF0 ^ i]) * PAGE_SIZE)
        for i, page_id in enumerate(ids):
            assert pager.read(page_id)[0] == 0xF0 ^ i
        pager.close()

    def test_copy_to_same_file_is_flush(self, tmp_path):
        path = os.fspath(tmp_path / "p.pages")
        pager = Pager(path, cache_pages=4)
        _fill(pager, 4)
        pager.copy_to(path)  # must not truncate the backing file
        assert pager.read(3)[0] == 3
        pager.close()


class TestStatsPublish:
    def test_counters_reach_registry(self, tmp_path):
        registry = MetricsRegistry()
        pager = Pager(os.fspath(tmp_path / "p.pages"), cache_pages=4)
        _fill(pager, 16)
        for i in range(16):
            pager.read(i)
        pager.stats.publish(registry)
        counters = registry.snapshot()["counters"]
        assert counters["pager.logical_reads"] == pager.stats.logical_reads
        assert counters["pager.evictions"] == pager.stats.evictions
        assert counters["pager.cache_hits"] == pager.stats.cache_hits
        gauges = registry.snapshot()["gauges"]
        assert gauges["pager.hit_rate"] == pytest.approx(pager.stats.hit_rate)
        # Publishing again is idempotent (delta-sync, not re-add).
        pager.stats.publish(registry)
        assert registry.snapshot()["counters"]["pager.logical_reads"] == (
            pager.stats.logical_reads
        )
        pager.close()

    def test_combine_sums(self):
        a, b = PagerStats(), PagerStats()
        a.logical_reads, a.physical_reads, a.evictions = 10, 4, 2
        b.logical_reads, b.physical_reads, b.evictions = 5, 1, 1
        total = PagerStats.combine([a, b])
        assert total.logical_reads == 15
        assert total.cache_hits == 10
        assert total.evictions == 3


class TestBoundedNodeTable:
    def _pairs(self, count: int):
        return [
            (i.to_bytes(4, "big"), i.to_bytes(8, "big")) for i in range(count)
        ]

    def test_bounded_bulk_load_matches_unbounded(self, tmp_path):
        pairs = self._pairs(2000)
        free = BPlusTree.bulk_load(pairs)
        bounded = BPlusTree.bulk_load(
            pairs,
            pager=Pager(os.fspath(tmp_path / "b.pages"), cache_pages=4),
            node_cache=4,
        )
        assert bounded.stats.node_evictions > 0
        assert list(bounded.items()) == list(free.items())
        bounded.check_invariants()
        bounded.flush()
        bounded.pager.close()

    def test_bounded_inserts_and_deletes(self, tmp_path):
        free = BPlusTree()
        bounded = BPlusTree(
            Pager(os.fspath(tmp_path / "b.pages"), cache_pages=8),
            node_cache=8,
        )
        for key, value in self._pairs(1200):
            free.insert(key, value)
            bounded.insert(key, value)
        for key, value in self._pairs(600):
            free.delete(key, value)
            bounded.delete(key, value)
        assert list(bounded.items()) == list(free.items())
        bounded.check_invariants()
        assert bounded.stats.node_evictions > 0
        bounded.flush()
        bounded.pager.close()

    def test_node_cache_validation(self):
        with pytest.raises(BTreeError):
            BPlusTree(node_cache=0)

"""Tests for access-path selection (the Section 5 optimizer)."""

from __future__ import annotations

import pytest

from repro.core import FixIndex, FixIndexConfig
from repro.core.optimizer import AccessPath, CostModel, QueryOptimizer
from repro.query import matching_elements, twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml


def regular_store() -> PrimaryXMLStore:
    """A store where one label is everywhere (weak pruning) and another
    is rare (strong pruning)."""
    store = PrimaryXMLStore()
    parts = ["<db>"]
    for i in range(80):
        parts.append("<row><common/><common/></row>")
    parts.append("<row><rare><gem/></rare></row>")
    parts.append("</db>")
    store.add_document(parse_xml("".join(parts)))
    return store


@pytest.fixture()
def optimizer() -> QueryOptimizer:
    store = regular_store()
    index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
    return QueryOptimizer(index)


class TestPlanning:
    def test_selective_query_uses_index(self, optimizer):
        plan = optimizer.plan("//rare[gem]")
        assert plan.path is AccessPath.INDEX_SCAN
        assert plan.covered
        assert plan.estimated_candidates < plan.total_units / 10

    def test_unselective_query_scans(self, optimizer):
        # `common` is ~2/3 of all entries; with a candidate 6x costlier
        # than a scan step, the index loses.
        plan = optimizer.plan("//common")
        assert plan.path is AccessPath.FULL_SCAN
        assert plan.covered
        assert "pruning too weak" in plan.reason

    def test_uncovered_query_scans(self, optimizer):
        plan = optimizer.plan("//db/row/rare/gem")  # depth 4 > limit 3
        assert plan.path is AccessPath.FULL_SCAN
        assert not plan.covered
        assert "not covered" in plan.reason

    def test_describe_mentions_decision(self, optimizer):
        text = optimizer.plan("//rare[gem]").describe()
        assert "plan: index-scan" in text
        assert "estimated candidates" in text

    def test_cost_model_can_flip_decision(self):
        store = regular_store()
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        # Free candidates: the index always wins.
        greedy = QueryOptimizer(
            index, cost_model=CostModel(descent_cost=0.0, candidate_cost=0.0)
        )
        assert greedy.plan("//common").path is AccessPath.INDEX_SCAN
        # Outrageously expensive candidates: the index always loses.
        frugal = QueryOptimizer(
            index, cost_model=CostModel(candidate_cost=10_000.0)
        )
        assert frugal.plan("//rare[gem]").path is AccessPath.FULL_SCAN


class TestExecution:
    @pytest.mark.parametrize(
        "query",
        ["//rare[gem]", "//common", "//db/row/rare/gem", "//row[rare]"],
    )
    def test_both_paths_return_ground_truth(self, optimizer, query):
        plan, result = optimizer.execute(query)
        document = optimizer.index.store.get_document(0)
        twig = twig_of(query)
        expected = {e.node_id for e in matching_elements(twig, document)}
        got = {p.node_id for p in result.results}
        assert got == expected, plan.describe()

    def test_collection_mode_scan_returns_document_units(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b/><b/></a>"))
        store.add_document(parse_xml("<a><c/></a>"))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
        # Force the full-scan path.
        optimizer = QueryOptimizer(
            index, cost_model=CostModel(candidate_cost=10_000.0)
        )
        plan, result = optimizer.execute("//b")
        assert plan.path is AccessPath.FULL_SCAN
        # One unit pointer per matching *document*, at its root.
        assert [(p.doc_id, p.node_id) for p in result.results] == [(0, 0)]

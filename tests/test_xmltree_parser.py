"""Unit tests for the XML parser, event streams, and serializer."""

from __future__ import annotations

import pytest

from repro.errors import BisimulationError, XMLSyntaxError
from repro.xmltree import (
    CloseEvent,
    Document,
    Element,
    OpenEvent,
    TextEvent,
    parse_xml,
    parse_xml_events,
    serialize,
    serialize_fragment,
    tree_events,
    tree_from_events,
)
from repro.xmltree.events import validate_events


class TestParserBasics:
    def test_single_element(self):
        doc = parse_xml("<a/>")
        assert doc.root.tag == "a"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert [e.tag for e in doc.root.iter()] == ["a", "b", "c", "d"]

    def test_text_content(self):
        doc = parse_xml("<a>hello</a>")
        assert doc.root.text() == "hello"

    def test_mixed_content(self):
        doc = parse_xml("<a>x<b>y</b>z</a>")
        assert doc.root.text() == "xz"
        b = next(doc.root.find_all("b"))
        assert b.text() == "y"

    def test_whitespace_only_text_dropped(self):
        doc = parse_xml("<a>\n  <b/>\n</a>")
        assert doc.root.text() == ""
        assert doc.root.size() == 2

    def test_attributes(self):
        doc = parse_xml('<a id="1" name=\'x y\'/>')
        assert doc.root.attributes == {"id": "1", "name": "x y"}

    def test_xml_declaration_and_comment_skipped(self):
        doc = parse_xml('<?xml version="1.0"?><!-- hi --><a/><!-- bye -->')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_xml('<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>t</a>')
        assert doc.root.text() == "t"

    def test_processing_instruction_skipped(self):
        doc = parse_xml("<a><?target data?><b/></a>")
        assert doc.root.size() == 2

    def test_cdata(self):
        doc = parse_xml("<a><![CDATA[<raw> & data]]></a>")
        assert doc.root.text() == "<raw> & data"

    def test_entities_in_text(self):
        doc = parse_xml("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert doc.root.text() == "<x> & \"y\" 'z'"

    def test_numeric_character_references(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.root.text() == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a t="&amp;&lt;"/>')
        assert doc.root.attributes["t"] == "&<"

    def test_namespace_prefixes_kept_verbatim(self):
        doc = parse_xml("<ns:a><ns:b/></ns:a>")
        assert doc.root.tag == "ns:a"


class TestParserErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "</a>",
            "<a/><b/>",
            "<a><b></a></b>",
            "<a>&unknown;</a>",
            "<a",
            "<a b=c/>",
            "<!-- unterminated <a/>",
            "<![CDATA[ unterminated <a/>",
            "<a/>trailing",
            "text<a/>",
        ],
    )
    def test_malformed_input_raises(self, source):
        with pytest.raises(XMLSyntaxError):
            parse_xml(source)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_xml("<a>&nope;</a>")
        assert excinfo.value.position is not None


class TestEventStream:
    def test_parse_events_sequence(self):
        events = list(parse_xml_events("<a><b>t</b></a>"))
        kinds = [type(e).__name__.replace("OpenEventWithAttributes", "OpenEvent")
                 for e in events]
        assert kinds == [
            "OpenEvent",
            "OpenEvent",
            "TextEvent",
            "CloseEvent",
            "CloseEvent",
        ]
        assert events[0].label == "a"
        assert events[1].label == "b"
        assert events[2].value == "t"

    def test_event_pointers_match_document_ids(self):
        source = "<a><b>t</b><c/></a>"
        doc = parse_xml(source)
        opens = [e for e in parse_xml_events(source) if isinstance(e, OpenEvent)]
        ids = [e.node_id for e in doc.elements()]
        assert [e.start_ptr for e in opens] == ids

    def test_tree_events_roundtrip(self):
        doc = parse_xml("<a><b>t</b><c><d/></c></a>")
        rebuilt = tree_from_events(tree_events(doc.root))
        assert serialize(rebuilt) == serialize(doc)

    def test_tree_events_without_text(self):
        doc = parse_xml("<a>t<b/></a>")
        events = list(tree_events(doc.root, include_text=False))
        assert not any(isinstance(e, TextEvent) for e in events)

    def test_validate_events_accepts_well_formed(self):
        doc = parse_xml("<a><b/></a>")
        assert len(list(validate_events(tree_events(doc.root)))) == 4

    def test_validate_events_rejects_mismatch(self):
        bad = [OpenEvent("a", 0), CloseEvent("b")]
        with pytest.raises(BisimulationError):
            list(validate_events(iter(bad)))

    def test_validate_events_rejects_unclosed(self):
        bad = [OpenEvent("a", 0)]
        with pytest.raises(BisimulationError):
            list(validate_events(iter(bad)))

    def test_validate_events_rejects_orphan_text(self):
        bad = [TextEvent("x", 0)]
        with pytest.raises(BisimulationError):
            list(validate_events(iter(bad)))


class TestSerializer:
    def test_compact_roundtrip(self):
        source = '<a x="1"><b>hello &amp; goodbye</b><c/></a>'
        doc = parse_xml(source)
        again = parse_xml(serialize(doc))
        assert serialize(again) == serialize(doc)

    def test_pretty_print_roundtrips_structurally(self):
        doc = parse_xml("<a><b>t</b><c/></a>")
        pretty = serialize(doc, indent=2)
        assert "\n" in pretty
        again = parse_xml(pretty)
        assert [e.tag for e in again.root.iter()] == [e.tag for e in doc.root.iter()]
        assert next(again.root.find_all("b")).text() == "t"

    def test_fragment_has_no_declaration(self):
        doc = parse_xml("<a><b/></a>")
        fragment = serialize_fragment(doc.root)
        assert not fragment.startswith("<?xml")
        assert fragment == "<a><b/></a>"

    def test_escaping(self):
        root = Element("a", {"k": 'v"<'})
        root.add_text("<&>")
        text = serialize_fragment(root)
        assert "&lt;&amp;&gt;" in text
        assert "&quot;" in text
        reparsed = parse_xml(text)
        assert reparsed.root.text() == "<&>"
        assert reparsed.root.attributes["k"] == 'v"<'


class TestBuilderErrors:
    def test_multiple_roots_rejected(self):
        events = [OpenEvent("a", 0), CloseEvent("a"), OpenEvent("b", 1), CloseEvent("b")]
        with pytest.raises(XMLSyntaxError):
            tree_from_events(iter(events))

    def test_empty_stream_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tree_from_events(iter([]))

    def test_unclosed_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tree_from_events(iter([OpenEvent("a", 0)]))

    def test_builder_produces_document(self):
        events = [OpenEvent("a", 0), TextEvent("t", 1), CloseEvent("a")]
        doc = tree_from_events(iter(events))
        assert isinstance(doc, Document)
        assert doc.root.text() == "t"
